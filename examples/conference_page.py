#!/usr/bin/env python3
"""The paper's Section 4 example: a conference home page under PRAM +
Read-Your-Writes, with the Table 2 replication strategy.

The web master (client M) updates the page incrementally at the Web server
and verifies each update through its own cache; an interested participant
(client U) polls through another cache that only receives the periodic
pushes.

Run:  python examples/conference_page.py
"""

from repro.coherence import checkers
from repro.experiments.tables import run_table2
from repro.sim.process import Delay, Process, WaitFor
from repro.workload.scenarios import conference_deployment


def main() -> None:
    print(run_table2().render())
    print()

    deployment = conference_deployment(seed=7, lazy_interval=5.0)
    sim = deployment.sim
    master = deployment.browsers["master"]
    user = deployment.browsers["user"]

    def master_script():
        for index in range(6):
            yield Delay(1.0)
            yield WaitFor(master.append_to_page(
                "program.html", f"<li>accepted paper #{index}</li>"))
            # The RYW check the paper motivates: the master verifies the
            # write through cache M, which demand-updates when behind.
            page = yield WaitFor(master.read_page("program.html"))
            print(f"[t={sim.now:6.2f}] master sees v{page['version']} "
                  f"({len(page['content'])} bytes) via cache M")

    def user_script():
        for _ in range(8):
            yield Delay(1.4)
            page = yield WaitFor(user.read_page("program.html"))
            print(f"[t={sim.now:6.2f}] user   sees v{page['version']} "
                  "via cache U (periodic push only)")

    Process(sim, master_script(), "master")
    Process(sim, user_script(), "user")
    sim.run_until_idle()
    sim.run(until=sim.now + 10.0)

    trace = deployment.site.trace
    print()
    print("PRAM violations:", len(checkers.check_pram(trace)))
    print("RYW violations (master):",
          len(checkers.check_read_your_writes(trace, clients=["master"])))
    cache_m = deployment.store("cache-0").engine
    print("demand-updates issued by cache M:", cache_m.counters["tx:demand"])
    states = deployment.site.store_states()
    versions = {addr: s["program.html"]["version"]
                for addr, s in states.items() if "program.html" in s}
    print("final program.html version per store:", versions)


if __name__ == "__main__":
    main()
