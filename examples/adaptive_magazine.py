#!/usr/bin/env python3
"""Self-adaptive replication for a magazine-like Web object.

The paper leaves self-adaptive policies as future work (§5); this example
runs the implementation: during the editing burst the controller switches
the object to lazy, invalidation-based propagation; when the readership
arrives it switches back to immediate updates.

Run:  python examples/adaptive_magazine.py
"""

from repro.experiments.adaptive import run_adaptive


def main() -> None:
    result = run_adaptive(seed=3, edits=20, reads=10, n_caches=4)
    print(result.render())


if __name__ == "__main__":
    main()
