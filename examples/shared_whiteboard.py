#!/usr/bin/env python3
"""A shared whiteboard: the concurrent-update application class the paper
says future Web infrastructure must support (Section 3.2.1).

Several clients draw strokes concurrently; the object uses **sequential**
coherence ("a groupware editor requires strong coherence at every store
layer"), so every replica applies the strokes in one agreed global order.

Run:  python examples/shared_whiteboard.py
"""

from repro import (
    CoherenceModel,
    ConstantLatency,
    Network,
    ReplicationPolicy,
    Simulator,
    StoreScope,
    WebObject,
    WriteSet,
)
from repro.coherence import checkers
from repro.sim.process import Delay, Process, WaitFor


def main() -> None:
    sim = Simulator(seed=11)
    net = Network(sim, latency=ConstantLatency(0.04))
    policy = ReplicationPolicy(
        model=CoherenceModel.SEQUENTIAL,
        write_set=WriteSet.MULTIPLE,
        store_scope=StoreScope.ALL,
    )
    board = WebObject(sim, net, policy=policy,
                      pages={"board.html": ""}, designated_writer=None)
    board.create_server("server")
    caches = [board.create_cache(f"cache-{i}") for i in range(3)]

    artists = []
    for index, cache in enumerate(caches):
        artists.append(board.bind_browser(
            f"space-artist-{index}", f"artist-{index}",
            read_store=cache.address, write_store=cache.address,
        ))

    def artist_script(index):
        browser = artists[index]
        rng = sim.rng.fork(f"artist-{index}")
        for stroke in range(5):
            yield Delay(rng.uniform(0.1, 0.6))
            yield WaitFor(browser.append_to_page(
                "board.html", f"<stroke by='{index}' n='{stroke}'/>"))

    for index in range(len(artists)):
        Process(sim, artist_script(index), f"artist-{index}")
    sim.run_until_idle()
    sim.run(until=sim.now + 5.0)

    trace = board.trace
    seq_violations = checkers.check_sequential(trace)
    print("sequential-consistency violations:", len(seq_violations))

    states = board.store_states()
    contents = {addr: s["board.html"]["content"] for addr, s in states.items()
                if "board.html" in s}
    reference = contents["server"]
    agree = all(content == reference for content in contents.values())
    print("all replicas agree on the stroke order:", agree)
    print(f"strokes on the board: {reference.count('<stroke')}")
    first_three = reference.split("/>")[:3]
    print("first three strokes (global order):",
          [s + '/>' for s in first_three])


if __name__ == "__main__":
    main()
