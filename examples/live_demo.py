#!/usr/bin/env python3
"""One deployment, two substrates: the backend parameter in action.

Builds the same Fig. 2 deployment twice -- once on the deterministic
simulator, once on the wall-clock runtime -- drives the identical
synchronous script on both through the backend-agnostic Deployment
helpers, and shows that the coherence behaviour (version vectors and the
time-free trace signature) is the same while only the notion of time
differs.

Run:  PYTHONPATH=src python examples/live_demo.py
"""

import time

from repro.coherence.trace import coherence_signature
from repro.replication.policy import ReplicationPolicy
from repro.workload.scenarios import build_tree


def drive(backend: str) -> dict:
    deployment = build_tree(
        policy=ReplicationPolicy(),
        n_caches=2,
        n_readers_per_cache=1,
        pages={"index.html": "<h1>demo</h1>"},
        seed=42,
        backend=backend,
    )
    started = time.monotonic()
    try:
        master = deployment.browsers["master"]
        for revision in (1, 2, 3):
            future = deployment.call(
                master.write_page, "index.html", f"<h1>rev {revision}</h1>"
            )
            wid = deployment.wait(future, timeout=10.0)
            deployment.wait_until(
                lambda: all(
                    engine.version().get("master", 0) == revision
                    for engine in deployment.engines
                ),
                timeout=10.0,
            )
            print(f"  [{backend}] wrote {wid}; all stores converged")
        future = deployment.call(
            deployment.browsers["reader-1-0"].read_page, "index.html"
        )
        page = deployment.wait(future, timeout=10.0)
        print(f"  [{backend}] reader sees: {page['content']}")
        return {
            "versions": {
                address: store.version()
                for address, store in deployment.site.dso.stores.items()
            },
            "signature": coherence_signature(deployment.site.trace),
            "wall_seconds": time.monotonic() - started,
            "protocol_seconds": deployment.sim.now,
        }
    finally:
        deployment.shutdown()


def main() -> None:
    outcomes = {}
    for backend in ("sim", "live"):
        print(f"driving the deployment on the {backend!r} backend:")
        outcomes[backend] = drive(backend)
    sim, live = outcomes["sim"], outcomes["live"]
    print()
    print(f"final versions equal:      {sim['versions'] == live['versions']}")
    print(f"coherence traces equal:    {sim['signature'] == live['signature']}")
    print(f"sim:  {sim['protocol_seconds']:.3f}s of virtual time "
          f"in {sim['wall_seconds']:.3f}s of wall time")
    print(f"live: {live['protocol_seconds']:.3f}s of wall-clock protocol "
          f"time in {live['wall_seconds']:.3f}s of wall time")
    if sim["signature"] != live["signature"]:
        raise SystemExit("backends diverged -- this is a bug")
    print("the replication strategy is a property of the object, "
          "not of the runtime it executes on")


if __name__ == "__main__":
    main()
