#!/usr/bin/env python3
"""A Web forum under causal coherence.

The paper's example for the causal model: "a participant's reaction makes
sense only if the audience has received the message that triggered the
reaction" (Section 3.2.1).  Alice posts a question; Bob reads it and posts
an answer; every replica must apply question-before-answer even though
Alice and Bob write through different stores.

Run:  python examples/news_forum.py
"""

from repro import (
    CoherenceModel,
    ConstantLatency,
    Network,
    ReplicationPolicy,
    Simulator,
    WriteSet,
    WebObject,
)
from repro.coherence import checkers
from repro.sim.process import Delay, Process, WaitFor


def main() -> None:
    sim = Simulator(seed=3)
    net = Network(sim, latency=ConstantLatency(0.06))
    policy = ReplicationPolicy(
        model=CoherenceModel.CAUSAL,
        write_set=WriteSet.MULTIPLE,
    )
    forum = WebObject(sim, net, policy=policy,
                      pages={"thread.html": "<h1>comp.web.globe</h1>"},
                      designated_writer=None)
    forum.create_server("server")
    forum.create_cache("cache-eu")
    forum.create_cache("cache-us")

    alice = forum.bind_browser("space-alice", "alice",
                               read_store="cache-eu", write_store="server")
    bob = forum.bind_browser("space-bob", "bob",
                             read_store="cache-us", write_store="server")

    def alice_script():
        yield Delay(0.5)
        yield WaitFor(alice.append_to_page(
            "thread.html", "<post by='alice'>How does Globe scale?</post>"))
        print(f"[t={sim.now:.2f}] alice posted the question")

    def bob_script():
        # Bob polls until he sees the question, then reacts.  His reply's
        # dependency vector (from his read) forces question-before-answer
        # at every store.
        while True:
            yield Delay(0.4)
            page = yield WaitFor(bob.read_page("thread.html"))
            if "alice" in page["content"]:
                break
        yield WaitFor(bob.append_to_page(
            "thread.html", "<post by='bob'>Per-object replication!</post>"))
        print(f"[t={sim.now:.2f}] bob posted the reaction")

    Process(sim, alice_script(), "alice")
    Process(sim, bob_script(), "bob")
    sim.run_until_idle()
    sim.run(until=sim.now + 5.0)

    trace = forum.trace
    print("causal violations:", len(checkers.check_causal(trace)))
    print("writes-follow-reads violations:",
          len(checkers.check_writes_follow_reads(trace)))
    for addr, state in sorted(forum.store_states().items()):
        content = state.get("thread.html", {}).get("content", "")
        q = content.find("alice")
        a = content.find("bob")
        ordered = (q == -1 and a == -1) or (a == -1) or (-1 < q < a)
        print(f"{addr:10s}: question-before-answer = {ordered}")


if __name__ == "__main__":
    main()
