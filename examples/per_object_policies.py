#!/usr/bin/env python3
"""The paper's headline claim, demonstrated: different Web documents want
different replication strategies, and the framework lets each document
carry its own.

Three documents with different characteristics run side by side, each with
the policy that suits it, and the run is compared against the classical
one-size-fits-all proxy strategies (validation / TTL / none).

Run:  python examples/per_object_policies.py
"""

from repro.experiments.per_object import SPECS, per_object_policy, run_per_object


def main() -> None:
    print("Per-object policies chosen by the framework:")
    for spec in SPECS:
        policy = per_object_policy(spec)
        print(f"\n  {spec.name}:")
        print(f"    readers={spec.n_readers}, writers={spec.n_writers}, "
              f"incremental={spec.incremental}")
        print(f"    model={policy.model.value}, "
              f"propagation={policy.propagation.value}, "
              f"initiative={policy.transfer_initiative.value}, "
              f"instant={policy.transfer_instant.value}, "
              f"coherence transfer={policy.coherence_transfer.value}")
    print()
    result = run_per_object(seed=5)
    print(result.render())


if __name__ == "__main__":
    main()
