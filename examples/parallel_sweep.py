#!/usr/bin/env python3
"""Parallel sweep execution with ``repro.exec``: declare points, fan out.

A sweep is a list of independent, seeded simulation runs -- one per
parameter setting -- which makes it embarrassingly parallel.  This
example declares a small custom sweep (how does the lazy aggregation
window trade coherence traffic for staleness as the cache tree grows?),
then runs it three ways:

1. serially in-process (``parallel=1``);
2. fanned out over a ``multiprocessing`` worker pool (``parallel=0``,
   one worker per CPU);
3. fanned out with results staged in shared-memory segments
   (``executor="shared-memory"``) instead of the pool's pickle pipe;
4. again with the on-disk result cache, so the re-run is near-instant.

Every point's simulation seed derives from a stable hash of its config
(`repro.exec.derive_seed`), so all four give bit-identical results.

Run:  python examples/parallel_sweep.py

The stock paper experiments expose the same knobs on the command line::

    python -m repro.experiments x1 x2 --parallel 0 --cache-dir .sweep-cache
    python -m repro.experiments x10 --parallel 0 --executor shared-memory
"""

import tempfile
import time

from repro.exec import SweepSpec, run_sweep
from repro.experiments.harness import measure
from repro.metrics.tables import render_table
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    ReplicationPolicy,
    TransferInstant,
)
from repro.sim.process import Process
from repro.workload.generator import ReaderWorkload, WriterWorkload
from repro.workload.scenarios import build_tree

PAGES = {f"page-{i}.html": "x" * 512 for i in range(4)}


def lazy_window_point(config, seed):
    """One sweep point: must be module-level (workers import it) and pure
    (everything it needs arrives via ``config`` and ``seed``)."""
    policy = ReplicationPolicy(
        transfer_instant=TransferInstant.LAZY,
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
    )
    policy.lazy_interval = config["window"]
    deployment = build_tree(
        policy=policy, n_caches=config["n_caches"],
        n_readers_per_cache=1, pages=dict(PAGES), seed=seed,
    )
    sim = deployment.sim
    rng = sim.rng.fork("workload")
    writer = WriterWorkload(
        deployment.browsers["master"], pages=list(PAGES),
        rng=rng.fork("writer"), interval=0.5, operations=20,
        payload_bytes=512,
    )
    readers = [
        ReaderWorkload(browser, pages=list(PAGES), rng=rng.fork(name),
                       mean_think=0.5, operations=8)
        for name, browser in deployment.browsers.items()
        if name != "master"
    ]
    for index, workload in enumerate([writer] + readers):
        Process(sim, workload.run(), name=f"wl-{index}")
    sim.run_until_idle()
    sim.run(until=sim.now + 2 * policy.lazy_interval)
    metrics = measure(deployment)
    return {
        "coherence_msgs": metrics.traffic.coherence_messages,
        "stale_fraction": metrics.stale_fraction,
    }


def build_spec() -> SweepSpec:
    spec = SweepSpec(name="lazy-window-by-tree-size",
                     run_point=lazy_window_point)
    for window in (1.0, 4.0, 16.0):
        for n_caches in (2, 8):
            spec.add((window, n_caches), window=window, n_caches=n_caches)
    return spec


def main() -> None:
    started = time.perf_counter()
    serial = run_sweep(build_spec(), parallel=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(build_spec(), parallel=0)
    parallel_s = time.perf_counter() - started
    assert parallel == serial, "parallel execution must be bit-identical"

    started = time.perf_counter()
    shm = run_sweep(build_spec(), parallel=0, executor="shared-memory")
    shm_s = time.perf_counter() - started
    assert shm == serial, "shared-memory transport must be bit-identical"

    with tempfile.TemporaryDirectory() as cache_dir:
        run_sweep(build_spec(), parallel=0, cache_dir=cache_dir)
        started = time.perf_counter()
        cached = run_sweep(build_spec(), parallel=1, cache_dir=cache_dir)
        cached_s = time.perf_counter() - started
    assert cached == serial, "cached results must be bit-identical"

    rows = [
        [f"{window:g}", n_caches, point["coherence_msgs"],
         f"{point['stale_fraction']:.3f}"]
        for (window, n_caches), point in serial.items()
    ]
    print(render_table(
        ["lazy window (s)", "caches", "coherence msgs", "stale fraction"],
        rows, title="Lazy aggregation window x cache-tree size",
    ))
    print()
    print(f"serial       {serial_s * 1000:7.1f} ms")
    print(f"parallel     {parallel_s * 1000:7.1f} ms  (identical results)")
    print(f"shared-mem   {shm_s * 1000:7.1f} ms  (identical results)")
    print(f"cached       {cached_s * 1000:7.1f} ms  (identical results)")


if __name__ == "__main__":
    main()
