#!/usr/bin/env python3
"""Run a replicated Web object on the wall-clock (threaded) runtime.

The same replication engine that runs on the deterministic simulator here
runs on real threads and real time: a writer updates a page twice a second
while a reader polls a cache, live.

Run:  python examples/live_runtime.py
"""

import time

from repro.coherence.models import SessionGuarantee
from repro.coherence.trace import TraceRecorder
from repro.core.interfaces import Role
from repro.core.local_object import LocalObject
from repro.replication.client import ClientReplicationObject
from repro.replication.engine import StoreReplicationObject
from repro.replication.policy import ReplicationPolicy
from repro.runtime.live import LiveLoop, LiveNetwork
from repro.web.document import WebDocument


def main() -> None:
    loop = LiveLoop(seed=1)
    net = LiveNetwork(loop, latency=0.01)
    trace = TraceRecorder()
    policy = ReplicationPolicy()
    loop.start()

    server_doc = WebDocument(pages={"live.html": "<h1>live</h1>"},
                             clock=lambda: loop.now)
    server = LocalObject(loop, net, "server", Role.PERMANENT,
                         StoreReplicationObject(policy, Role.PERMANENT,
                                                trace=trace),
                         semantics=server_doc)
    cache = LocalObject(loop, net, "cache", Role.CLIENT_INITIATED,
                        StoreReplicationObject(policy, Role.CLIENT_INITIATED,
                                               parent="server", trace=trace),
                        semantics=server_doc.fresh())
    server.replication.subscribe_child("cache")
    server.start()
    cache.start()

    writer = LocalObject(loop, net, "writer-space", Role.CLIENT,
                         ClientReplicationObject(
                             "writer", read_store="cache",
                             write_store="server", policy=policy,
                             guarantees=(SessionGuarantee.READ_YOUR_WRITES,),
                             trace=trace))
    reader = LocalObject(loop, net, "reader-space", Role.CLIENT,
                         ClientReplicationObject("reader", read_store="cache",
                                                 policy=policy, trace=trace))

    def wait(future, timeout=2.0):
        deadline = time.monotonic() + timeout
        while not future.done and time.monotonic() < deadline:
            time.sleep(0.005)
        return future.result()

    from repro.comm.invocation import MarshalledInvocation

    for round_number in range(4):
        inv = MarshalledInvocation(
            "append_to_page", ("live.html", f"<p>tick {round_number}</p>"),
            read_only=False)
        holder = {}
        loop.submit(lambda i=inv: holder.update(
            f=writer.control.invoke(i)))
        while "f" not in holder:
            time.sleep(0.005)
        wid = wait(holder["f"])
        read_inv = MarshalledInvocation("read_page", ("live.html",))
        holder2 = {}
        loop.submit(lambda: holder2.update(f=reader.control.invoke(read_inv)))
        while "f" not in holder2:
            time.sleep(0.005)
        page = wait(holder2["f"])
        print(f"wrote {wid}; reader sees v{page['version']} "
              f"({len(page['content'])} bytes) at wall t={loop.now:.2f}s")
        time.sleep(0.2)

    loop.stop()
    print("live run complete; writes recorded in trace:",
          sum(1 for e in trace.events if type(e).__name__ == "ApplyEvent"))


if __name__ == "__main__":
    main()
