#!/usr/bin/env python3
"""Quickstart: one replicated Web object, one cache, one writer, one reader.

Run:  python examples/quickstart.py
"""

from repro import (
    CoherenceModel,
    ConstantLatency,
    Network,
    ReplicationPolicy,
    SessionGuarantee,
    Simulator,
    WebObject,
)


def main() -> None:
    # A deterministic world: virtual clock + simulated WAN (50 ms one-way).
    sim = Simulator(seed=42)
    net = Network(sim, latency=ConstantLatency(0.05))

    # One Web document with its own replication strategy: PRAM ordering,
    # updates pushed to caches as they happen.
    site = WebObject(
        sim,
        net,
        policy=ReplicationPolicy(model=CoherenceModel.PRAM),
        pages={"index.html": "<h1>My Site</h1>"},
    )
    site.create_server("server")          # permanent store (the origin)
    site.create_cache("proxy-cache")      # client-initiated store

    # The site owner writes at the origin and reads through the cache,
    # with read-your-writes so edits are immediately visible to them.
    owner = site.bind_browser(
        "owner-space", "owner",
        read_store="proxy-cache", write_store="server",
        guarantees=[SessionGuarantee.READ_YOUR_WRITES],
    )
    # A visitor reads through the same cache.
    visitor = site.bind_browser("visitor-space", "visitor",
                                read_store="proxy-cache")

    write = owner.write_page("index.html", "<h1>My Site</h1><p>news!</p>")
    sim.run_until_idle()
    print(f"owner wrote index.html -> WiD {write.result()}")

    read = visitor.read_page("index.html")
    sim.run_until_idle()
    page = read.result()
    print(f"visitor read index.html v{page['version']}: {page['content']}")

    owner_read = owner.read_page("index.html")
    sim.run_until_idle()
    assert "news!" in owner_read.result()["content"], "read-your-writes broke"
    print("read-your-writes verified for the owner")
    print(f"virtual time elapsed: {sim.now:.3f}s, "
          f"messages on the wire: {net.stats.datagrams_sent}")


if __name__ == "__main__":
    main()
