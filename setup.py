"""Legacy setup shim for offline editable installs (no wheel available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "A framework for consistent, replicated web objects "
        "(ICDCS 1998 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
