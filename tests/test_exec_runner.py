"""Tests for the parallel sweep-execution subsystem (``repro.exec``).

The point functions live at module level because worker processes import
them by reference -- the same constraint real experiment point functions
are under.
"""

import pytest

from repro.exec import (
    ResultCache,
    SweepPoint,
    SweepPointError,
    SweepSpec,
    run_sweep,
)


def square_point(config, seed):
    return {"value": config["x"] * config["x"], "seed": seed}


def logging_point(config, seed):
    """Appends one line per execution, so recomputation is observable."""
    with open(config["log"], "a") as handle:
        handle.write(f"{config['x']}\n")
    return config["x"] * 2


def failing_point(config, seed):
    if config["x"] == 3:
        raise ValueError("boom on three")
    return config["x"]


def logging_point_v2(config, seed):
    """Same shape as logging_point but different source: a 'code edit'."""
    with open(config["log"], "a") as handle:
        handle.write(f"{config['x']}\n")
    return config["x"] * 200


def _square_spec(n=5, base_seed=0):
    spec = SweepSpec(name="squares", run_point=square_point,
                     base_seed=base_seed)
    for x in range(n):
        spec.add(f"x={x}", x=x)
    return spec


def _executions(log_path):
    try:
        return sorted(log_path.read_text().splitlines())
    except FileNotFoundError:
        return []


class TestExecution:
    def test_serial_results_in_declaration_order(self):
        spec = _square_spec()
        results = run_sweep(spec, parallel=1)
        assert list(results) == spec.labels()
        assert results["x=3"]["value"] == 9

    def test_parallel_matches_serial_exactly(self):
        serial = run_sweep(_square_spec(), parallel=1)
        parallel = run_sweep(_square_spec(), parallel=4)
        assert parallel == serial
        assert list(parallel) == list(serial)

    def test_points_get_distinct_deterministic_seeds(self):
        spec = _square_spec()
        results = run_sweep(spec, parallel=2)
        seeds = [result["seed"] for result in results.values()]
        assert len(set(seeds)) == len(seeds)
        expected = [spec.seed_for(point) for point in spec.points]
        assert seeds == expected

    def test_base_seed_changes_every_point_seed(self):
        a = run_sweep(_square_spec(base_seed=0), parallel=1)
        b = run_sweep(_square_spec(base_seed=1), parallel=1)
        assert all(a[k]["seed"] != b[k]["seed"] for k in a)

    def test_parallel_zero_means_cpu_count(self):
        results = run_sweep(_square_spec(n=3), parallel=0)
        assert results["x=2"]["value"] == 4

    def test_negative_parallel_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_square_spec(n=1), parallel=-1)

    def test_unserializable_config_rejected_at_declaration(self):
        with pytest.raises(TypeError):
            SweepPoint("bad", {"fn": object()})

    def test_paired_spec_gives_every_point_the_same_seed(self):
        spec = SweepSpec(name="paired", run_point=square_point, paired=True)
        for x in range(4):
            spec.add(f"x={x}", x=x)
        results = run_sweep(spec, parallel=2)
        seeds = {result["seed"] for result in results.values()}
        assert len(seeds) == 1

    def test_duplicate_label_rejected_at_declaration(self):
        spec = SweepSpec(name="dup", run_point=square_point)
        spec.add("same", x=1)
        with pytest.raises(ValueError):
            spec.add("same", x=2)

    def test_duplicate_label_rejected_by_runner(self):
        spec = SweepSpec(name="dup", run_point=square_point)
        spec.points = [SweepPoint("same", {"x": 1}),
                       SweepPoint("same", {"x": 2})]
        with pytest.raises(ValueError):
            run_sweep(spec, parallel=1)


class TestFailures:
    @pytest.mark.parametrize("parallel", [1, 2])
    def test_worker_exception_surfaces_failing_point(self, parallel):
        spec = SweepSpec(name="fragile", run_point=failing_point)
        for x in (1, 2, 3, 4):
            spec.add(f"x={x}", x=x)
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(spec, parallel=parallel)
        error = excinfo.value
        assert error.spec_name == "fragile"
        assert error.label == "x=3"
        assert error.config == {"x": 3}
        assert "boom on three" in str(error)
        assert "ValueError" in error.detail

    @pytest.mark.parametrize(
        "executor", ["serial", "process-pool", "shared-memory"]
    )
    def test_failure_message_names_executor_and_label(self, executor):
        spec = SweepSpec(name="fragile", run_point=failing_point)
        for x in (1, 2, 3):
            spec.add(f"x={x}", x=x)
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(spec, parallel=2, executor=executor)
        error = excinfo.value
        assert error.executor == executor
        assert repr(executor) in str(error)
        assert repr("x=3") in str(error)


class TestCache:
    def _logging_spec(self, log_path, xs=(1, 2, 3)):
        spec = SweepSpec(name="logged", run_point=logging_point)
        for x in xs:
            spec.add(f"x={x}", x=x, log=str(log_path))
        return spec

    def test_cache_hit_skips_recomputation(self, tmp_path):
        log = tmp_path / "runs.log"
        cache_dir = tmp_path / "cache"
        first = run_sweep(self._logging_spec(log), parallel=1,
                          cache_dir=cache_dir)
        assert _executions(log) == ["1", "2", "3"]
        second = run_sweep(self._logging_spec(log), parallel=1,
                           cache_dir=cache_dir)
        assert _executions(log) == ["1", "2", "3"], "cache hits recomputed"
        assert second == first

    def test_new_points_compute_cached_points_do_not(self, tmp_path):
        log = tmp_path / "runs.log"
        cache_dir = tmp_path / "cache"
        run_sweep(self._logging_spec(log, xs=(1, 2)), parallel=1,
                  cache_dir=cache_dir)
        run_sweep(self._logging_spec(log, xs=(1, 2, 9)), parallel=1,
                  cache_dir=cache_dir)
        assert _executions(log) == ["1", "2", "9"]

    def test_cache_counts_hits_and_misses(self, tmp_path):
        log = tmp_path / "runs.log"
        cache = ResultCache(tmp_path / "cache")
        run_sweep(self._logging_spec(log), parallel=1, cache=cache)
        assert (cache.hits, cache.misses, cache.writes) == (0, 3, 3)
        run_sweep(self._logging_spec(log), parallel=1, cache=cache)
        assert (cache.hits, cache.misses, cache.writes) == (3, 3, 3)

    def test_different_base_seed_is_a_different_cache_entry(self, tmp_path):
        log = tmp_path / "runs.log"
        cache_dir = tmp_path / "cache"
        spec = self._logging_spec(log, xs=(1,))
        run_sweep(spec, parallel=1, cache_dir=cache_dir)
        reseeded = self._logging_spec(log, xs=(1,))
        reseeded.base_seed = 7
        run_sweep(reseeded, parallel=1, cache_dir=cache_dir)
        assert _executions(log) == ["1", "1"]

    def test_code_fingerprint_partitions_the_cache(self, tmp_path):
        log = tmp_path / "runs.log"
        old_code = ResultCache(tmp_path / "cache", fingerprint="aaaa")
        new_code = ResultCache(tmp_path / "cache", fingerprint="bbbb")
        run_sweep(self._logging_spec(log), parallel=1, cache=old_code)
        run_sweep(self._logging_spec(log), parallel=1, cache=new_code)
        assert _executions(log) == ["1", "1", "2", "2", "3", "3"]

    def test_toggling_paired_mode_is_a_different_cache_entry(self, tmp_path):
        log = tmp_path / "runs.log"
        cache_dir = tmp_path / "cache"
        run_sweep(self._logging_spec(log, xs=(1,)), parallel=1,
                  cache_dir=cache_dir)
        paired = self._logging_spec(log, xs=(1,))
        paired.paired = True
        run_sweep(paired, parallel=1, cache_dir=cache_dir)
        assert _executions(log) == ["1", "1"], (
            "a result computed under per-point seeding was served for "
            "the paired seed"
        )

    def test_changing_the_point_function_invalidates_entries(self, tmp_path):
        log = tmp_path / "runs.log"
        cache_dir = tmp_path / "cache"
        run_sweep(self._logging_spec(log, xs=(1,)), parallel=1,
                  cache_dir=cache_dir)
        edited = SweepSpec(name="logged", run_point=logging_point_v2)
        edited.add("x=1", x=1, log=str(log))
        result = run_sweep(edited, parallel=1, cache_dir=cache_dir)
        assert result == {"x=1": 200}, "stale result served after code edit"
        assert _executions(log) == ["1", "1"]

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        log = tmp_path / "runs.log"
        cache = ResultCache(tmp_path / "cache")
        spec = self._logging_spec(log, xs=(1,))
        run_sweep(spec, parallel=1, cache=cache)
        entries = list((tmp_path / "cache").rglob("*.res"))
        assert entries, "no codec entries written"
        for entry in entries:
            entry.write_bytes(b"not a codec payload")
        result = run_sweep(self._logging_spec(log, xs=(1,)), parallel=1,
                           cache=cache)
        assert result == {"x=1": 2}
        assert _executions(log) == ["1", "1"]


class TestParallelWithCache:
    def test_parallel_populates_cache_serial_reads_it(self, tmp_path):
        log = tmp_path / "runs.log"
        cache_dir = tmp_path / "cache"
        spec = SweepSpec(name="logged", run_point=logging_point)
        for x in (1, 2, 3, 4):
            spec.add(f"x={x}", x=x, log=str(log))
        parallel = run_sweep(spec, parallel=4, cache_dir=cache_dir)
        again = SweepSpec(name="logged", run_point=logging_point)
        for x in (1, 2, 3, 4):
            again.add(f"x={x}", x=x, log=str(log))
        serial = run_sweep(again, parallel=1, cache_dir=cache_dir)
        assert serial == parallel
        assert _executions(log) == ["1", "2", "3", "4"]
