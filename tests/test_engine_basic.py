"""Integration tests for the store replication engine: write/read paths,
single-writer enforcement, forwarding, duplicates."""

import pytest

from repro.coherence.models import SessionGuarantee
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication.client import ReplicaError
from repro.replication.policy import ReplicationPolicy, WriteSet
from repro.sim.kernel import Simulator
from repro.web.webobject import WebObject

from tests.conftest import resolve


def build(policy=None, seed=1, pages=None, writer="master", **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.02))
    site = WebObject(sim, net, policy=policy,
                     pages=pages or {"index.html": "seed"},
                     designated_writer=writer, **kwargs)
    return sim, net, site


def test_write_then_read_at_server():
    sim, _, site = build()
    site.create_server("server")
    client = site.bind_browser("c-space", "master", read_store="server")
    wid = resolve(sim, client.write_page("index.html", "new"))
    assert wid.seqno == 1
    page = resolve(sim, client.read_page("index.html"))
    assert page["content"] == "new"


def test_read_missing_page_is_replica_error():
    sim, _, site = build()
    site.create_server("server")
    client = site.bind_browser("c-space", "u", read_store="server")
    future = client.read_page("ghost.html")
    sim.run_until_idle()
    with pytest.raises(ReplicaError):
        future.result()


def test_cache_miss_fetches_from_parent():
    sim, _, site = build()
    site.create_server("server")
    cache = site.create_cache("cache")
    client = site.bind_browser("c-space", "u", read_store="cache")
    page = resolve(sim, client.read_page("index.html"))
    assert page["content"] == "seed"
    assert cache.engine.counters["tx:demand"] == 1
    # Second read is a cache hit: no further demand.
    resolve(sim, client.read_page("index.html"))
    assert cache.engine.counters["tx:demand"] == 1


def test_missing_page_via_cache_reports_not_found():
    sim, _, site = build()
    site.create_server("server")
    site.create_cache("cache")
    client = site.bind_browser("c-space", "u", read_store="cache")
    future = client.read_page("ghost.html")
    sim.run_until_idle()
    with pytest.raises(ReplicaError):
        future.result()


def test_single_writer_enforced():
    sim, _, site = build(writer="master")
    site.create_server("server")
    master = site.bind_browser("m-space", "master", read_store="server")
    intruder = site.bind_browser("i-space", "intruder", read_store="server")
    resolve(sim, master.write_page("index.html", "ok"))
    future = intruder.write_page("index.html", "hijack")
    sim.run_until_idle()
    with pytest.raises(ReplicaError, match="designated"):
        future.result()


def test_multiple_write_set_allows_all():
    sim, _, site = build(
        policy=ReplicationPolicy(write_set=WriteSet.MULTIPLE), writer=None)
    site.create_server("server")
    for index in range(3):
        browser = site.bind_browser(f"s{index}", f"w{index}",
                                    read_store="server")
        resolve(sim, browser.write_page("index.html", f"rev {index}"))
    assert site.dso.stores["server"].version() == {
        "w0": 1, "w1": 1, "w2": 1}


def test_first_writer_locks_single_write_set():
    sim, _, site = build(writer=None)  # single write set, no designation
    site.create_server("server")
    first = site.bind_browser("a", "first", read_store="server")
    second = site.bind_browser("b", "second", read_store="server")
    resolve(sim, first.write_page("index.html", "mine"))
    future = second.write_page("index.html", "theirs")
    sim.run_until_idle()
    with pytest.raises(ReplicaError):
        future.result()


def test_write_via_cache_forwards_to_primary():
    sim, _, site = build()
    site.create_server("server")
    cache = site.create_cache("cache")
    master = site.bind_browser("m-space", "master",
                               read_store="cache", write_store="cache")
    wid = resolve(sim, master.write_page("index.html", "through-cache"))
    assert wid.seqno == 1
    # The write landed at the primary, not just the cache.
    assert site.dso.stores["server"].version() == {"master": 1}
    assert site.dso.stores["server"].state()["index.html"]["content"] == \
        "through-cache"


def test_duplicate_write_request_acked_idempotently():
    sim, _, site = build()
    site.create_server("server")
    server = site.dso.stores["server"].engine
    master = site.bind_browser("m-space", "master", read_store="server")
    resolve(sim, master.write_page("index.html", "v1"))
    version_before = site.dso.stores["server"].state()["index.html"]["version"]
    # Replay the same WiD, as a retrying client would.
    from repro.coherence.records import WriteRecord
    from repro.comm.invocation import MarshalledInvocation
    from repro.comm.message import Message
    from repro.core.ids import WriteId
    record = WriteRecord(
        wid=WriteId("master", 1),
        invocation=MarshalledInvocation("write_page", ("index.html", "v1"),
                                        read_only=False),
    )
    replies = []
    master_comm = site.dso.clients[0].local.comm
    future = master_comm.request(
        "server", Message("write", {"record": record.to_wire(), "session": {}}))
    sim.run_until_idle()
    assert future.result().kind == "write_ack"
    version_after = site.dso.stores["server"].state()["index.html"]["version"]
    assert version_after == version_before, "duplicate must not re-apply"


def test_session_vector_advances_on_ack():
    sim, _, site = build()
    site.create_server("server")
    master = site.bind_browser(
        "m-space", "master", read_store="server",
        guarantees=[SessionGuarantee.READ_YOUR_WRITES])
    resolve(sim, master.write_page("index.html", "x"))
    resolve(sim, master.append_to_page("index.html", "y"))
    assert master.session.write_vc.get("master") == 2
    assert master.session.last_write_store == "server"


def test_store_layers_view():
    sim, _, site = build()
    site.create_server("server")
    site.create_mirror("mirror")
    site.create_cache("cache", parent="mirror")
    sim.run_until_idle()
    from repro.core.interfaces import Role
    layers = site.dso.layers()
    assert layers[Role.PERMANENT] == ["server"]
    assert layers[Role.OBJECT_INITIATED] == ["mirror"]
    assert layers[Role.CLIENT_INITIATED] == ["cache"]


def test_bind_to_unknown_store_rejected():
    from repro.core.dso import BindError
    sim, _, site = build()
    site.create_server("server")
    with pytest.raises(BindError):
        site.bind_browser("x", "u", read_store="nonexistent")


def test_bind_before_permanent_store_rejected():
    from repro.core.dso import BindError
    sim, _, site = build()
    with pytest.raises(BindError):
        site.bind_browser("x", "u")


def test_duplicate_store_address_rejected():
    from repro.core.dso import BindError
    sim, _, site = build()
    site.create_server("server")
    with pytest.raises(BindError):
        site.create_cache("server")
