"""Unit tests for the trace checkers: each must accept compliant histories
and flag the canonical violation for its model."""

from repro.coherence import checkers
from repro.coherence.trace import TraceRecorder
from repro.core.ids import WriteId


def apply(trace, store, client, seqno, vc=None, **kw):
    trace.record_apply(
        time=float(len(trace.events)),
        store=store,
        wid=WriteId(client, seqno),
        applied_vc=vc or {client: seqno},
        **kw,
    )


class TestPramChecker:
    def test_clean_history_passes(self):
        trace = TraceRecorder()
        for seqno in (1, 2, 3):
            apply(trace, "s1", "m", seqno)
        assert checkers.check_pram(trace) == []

    def test_inversion_flagged(self):
        trace = TraceRecorder()
        apply(trace, "s1", "m", 2)
        apply(trace, "s1", "m", 1)
        violations = checkers.check_pram(trace)
        assert any("inversion" in v for v in violations)

    def test_gap_flagged_when_gapless_required(self):
        trace = TraceRecorder()
        apply(trace, "s1", "m", 1)
        apply(trace, "s1", "m", 3)
        assert any("gap" in v for v in checkers.check_pram(trace))
        assert checkers.check_fifo(trace) == []

    def test_install_resets_expectations(self):
        trace = TraceRecorder()
        trace.record_install(0.0, "s1", {"m": 5})
        apply(trace, "s1", "m", 6)
        assert checkers.check_pram(trace) == []

    def test_interleaved_clients_checked_independently(self):
        trace = TraceRecorder()
        apply(trace, "s1", "a", 1)
        apply(trace, "s1", "b", 1)
        apply(trace, "s1", "a", 2)
        apply(trace, "s1", "b", 2)
        assert checkers.check_pram(trace) == []


class TestCausalChecker:
    def test_satisfied_deps_pass(self):
        trace = TraceRecorder()
        apply(trace, "s1", "a", 1, deps={})
        apply(trace, "s1", "b", 1, deps={"a": 1})
        assert checkers.check_causal(trace) == []

    def test_unsatisfied_deps_flagged(self):
        trace = TraceRecorder()
        apply(trace, "s1", "b", 1, deps={"a": 1})
        apply(trace, "s1", "a", 1, deps={})
        assert any("causal" in v for v in checkers.check_causal(trace))


class TestSequentialChecker:
    def test_agreeing_stores_pass(self):
        trace = TraceRecorder()
        for store in ("s1", "s2"):
            apply(trace, store, "a", 1, global_seq=1)
            apply(trace, store, "b", 1, global_seq=2)
        assert checkers.check_sequential(trace) == []

    def test_missing_global_seq_flagged(self):
        trace = TraceRecorder()
        apply(trace, "s1", "a", 1)
        assert checkers.check_sequential(trace)

    def test_conflicting_positions_flagged(self):
        trace = TraceRecorder()
        apply(trace, "s1", "a", 1, global_seq=1)
        apply(trace, "s2", "a", 1, global_seq=2)
        assert any("positions" in v for v in checkers.check_sequential(trace))

    def test_out_of_order_application_flagged(self):
        trace = TraceRecorder()
        apply(trace, "s1", "b", 1, global_seq=2)
        apply(trace, "s1", "a", 1, global_seq=1)
        assert checkers.check_sequential(trace)


class TestEventualChecker:
    def test_all_delivered_passes(self):
        trace = TraceRecorder()
        trace.record_write_issue(0.0, "a", WriteId("a", 1), "s1")
        apply(trace, "s1", "a", 1)
        apply(trace, "s2", "a", 1)
        assert checkers.check_eventual_delivery(trace) == []

    def test_missing_delivery_flagged(self):
        trace = TraceRecorder()
        trace.record_write_issue(0.0, "a", WriteId("a", 1), "s1")
        apply(trace, "s1", "a", 1)
        apply(trace, "s2", "b", 1)  # s2 never saw a:1
        violations = checkers.check_eventual_delivery(trace)
        assert any("s2" in v for v in violations)

    def test_superseded_covered_by_version_ok(self):
        trace = TraceRecorder()
        trace.record_write_issue(0.0, "a", WriteId("a", 1), "s1")
        trace.record_write_issue(0.1, "a", WriteId("a", 2), "s1")
        apply(trace, "s1", "a", 1)
        apply(trace, "s1", "a", 2)
        # s2 skipped a:1 (FIFO) but its version covers it.
        apply(trace, "s2", "a", 2, vc={"a": 2})
        assert checkers.check_eventual_delivery(trace) == []

    def test_convergence_checker(self):
        assert checkers.check_convergence({"a": {"x": 1}, "b": {"x": 1}}) == []
        assert checkers.check_convergence({"a": {"x": 1}, "b": {"x": 2}})


class TestSessionCheckers:
    def test_ryw_clean(self):
        trace = TraceRecorder()
        trace.record_write_ack(1.0, "m", WriteId("m", 1), "server")
        trace.record_read(2.0, "cache", "m", served_vc={"m": 1})
        assert checkers.check_read_your_writes(trace) == []

    def test_ryw_violation(self):
        trace = TraceRecorder()
        trace.record_write_ack(1.0, "m", WriteId("m", 1), "server")
        trace.record_read(2.0, "cache", "m", served_vc={})
        assert checkers.check_read_your_writes(trace)

    def test_ryw_only_counts_prior_writes(self):
        trace = TraceRecorder()
        trace.record_read(0.5, "cache", "m", served_vc={})
        trace.record_write_ack(1.0, "m", WriteId("m", 1), "server")
        assert checkers.check_read_your_writes(trace) == []

    def test_monotonic_reads_clean(self):
        trace = TraceRecorder()
        trace.record_read(1.0, "s1", "u", served_vc={"m": 1})
        trace.record_read(2.0, "s2", "u", served_vc={"m": 2})
        assert checkers.check_monotonic_reads(trace) == []

    def test_monotonic_reads_regression_flagged(self):
        trace = TraceRecorder()
        trace.record_read(1.0, "s1", "u", served_vc={"m": 2})
        trace.record_read(2.0, "s2", "u", served_vc={"m": 1})
        assert checkers.check_monotonic_reads(trace)

    def test_monotonic_writes_inversion_flagged(self):
        trace = TraceRecorder()
        apply(trace, "s1", "m", 2)
        apply(trace, "s1", "m", 1)
        assert checkers.check_monotonic_writes(trace, clients=["m"])

    def test_wfr_clean_and_violated(self):
        clean = TraceRecorder()
        clean.record_write_issue(0.0, "b", WriteId("b", 1), "s1",
                                 deps={"a": 1})
        apply(clean, "s1", "a", 1)
        apply(clean, "s1", "b", 1)
        assert checkers.check_writes_follow_reads(clean) == []

        bad = TraceRecorder()
        bad.record_write_issue(0.0, "b", WriteId("b", 1), "s1", deps={"a": 1})
        apply(bad, "s1", "b", 1)
        apply(bad, "s1", "a", 1)
        assert checkers.check_writes_follow_reads(bad)

    def test_client_filter(self):
        trace = TraceRecorder()
        trace.record_write_ack(1.0, "m", WriteId("m", 1), "server")
        trace.record_read(2.0, "cache", "m", served_vc={})
        assert checkers.check_read_your_writes(trace, clients=["other"]) == []
