"""Unit and property tests for the seeded RNG."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import SeededRng


def test_same_seed_same_stream():
    a = SeededRng(7)
    b = SeededRng(7)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seeds_differ():
    a = [SeededRng(1).random() for _ in range(5)]
    b = [SeededRng(2).random() for _ in range(5)]
    assert a != b


def test_fork_is_deterministic():
    parent_a = SeededRng(3)
    parent_b = SeededRng(3)
    assert parent_a.fork("x").random() == parent_b.fork("x").random()


def test_forks_are_independent_streams():
    parent = SeededRng(3)
    child = parent.fork("child")
    before = child.random()
    # Draw more from the parent; the child's next value is unaffected by
    # re-deriving an identical child from an identical parent.
    parent2 = SeededRng(3)
    child2 = parent2.fork("child")
    assert child2.random() == before


def test_fork_labels_distinguish_children():
    parent = SeededRng(3)
    a = parent.fork("a")
    parent2 = SeededRng(3)
    b = parent2.fork("b")
    assert a.random() != b.random()


def test_exponential_requires_positive_mean():
    with pytest.raises(ValueError):
        SeededRng(0).exponential(0)


def test_exponential_mean_roughly_right():
    rng = SeededRng(42)
    samples = [rng.exponential(2.0) for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert 1.8 < mean < 2.2


def test_bernoulli_bounds():
    rng = SeededRng(0)
    with pytest.raises(ValueError):
        rng.bernoulli(1.5)
    assert rng.bernoulli(1.0) is True
    assert rng.bernoulli(0.0) is False


def test_zipf_weights_normalized_and_decreasing():
    weights = SeededRng.zipf_weights(10, 1.0)
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(weights[i] > weights[i + 1] for i in range(9))


def test_zipf_rank_zero_most_popular():
    rng = SeededRng(5)
    counts = [0] * 5
    for _ in range(3000):
        counts[rng.zipf(5, 1.0)] += 1
    assert counts[0] == max(counts)


def test_weighted_index_empty_rejected():
    with pytest.raises(ValueError):
        SeededRng(0).weighted_index([])


@given(st.integers(min_value=1, max_value=50), st.floats(0.1, 3.0))
def test_zipf_weights_properties(n, s):
    weights = SeededRng.zipf_weights(n, s)
    assert len(weights) == n
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(w > 0 for w in weights)


@given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                max_size=20), st.integers(0, 2**31 - 1))
def test_weighted_index_in_range(weights, seed):
    index = SeededRng(seed).weighted_index(weights)
    assert 0 <= index < len(weights)


@given(st.integers(0, 2**31 - 1))
def test_pareto_at_least_minimum(seed):
    assert SeededRng(seed).pareto(1.5, minimum=2.0) >= 2.0


def test_sample_and_shuffle_deterministic():
    a, b = SeededRng(9), SeededRng(9)
    items = list(range(20))
    assert a.sample(items, 5) == b.sample(items, 5)
    la, lb = list(items), list(items)
    a.shuffle(la)
    b.shuffle(lb)
    assert la == lb


def test_lazy_materialization_matches_eager_random():
    # The MT state is built on first draw, not at construction; the
    # stream must equal a random.Random seeded identically.
    rng = SeededRng(1234)
    assert rng._random is None  # nothing materialized yet
    reference = random.Random(1234)
    assert rng.random() == reference.random()
    assert rng.uniform(0, 10) == reference.uniform(0, 10)
    assert rng.randint(0, 99) == reference.randint(0, 99)


def test_fork_does_not_materialize_parent():
    parent = SeededRng(7)
    children = [parent.fork(f"c{i}") for i in range(5)]
    assert parent._random is None
    assert all(child._random is None for child in children)
    # Forking never consumed parent draws: the stream starts fresh.
    assert parent.random() == random.Random(7).random()
