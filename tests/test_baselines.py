"""Tests for the classical Web-caching baseline stack."""

from repro.baselines.browser import HttpBrowser
from repro.baselines.origin import HttpOrigin
from repro.baselines.proxy import CacheMode, HttpProxy
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator

from tests.conftest import resolve


def build(mode=CacheMode.VALIDATE, ttl=10.0, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.05))
    origin = HttpOrigin(sim, net, "origin", pages={"p.html": "v1"})
    proxy = HttpProxy(sim, net, "proxy", upstream="origin", mode=mode, ttl=ttl)
    browser = HttpBrowser(sim, net, "browser", server="proxy")
    return sim, origin, proxy, browser


def test_get_through_proxy():
    sim, origin, proxy, browser = build()
    result = resolve(sim, browser.get("p.html"))
    assert result.found and result.content == "v1"
    assert proxy.counters["miss"] == 1


def test_validation_mode_revalidates_every_hit():
    sim, origin, proxy, browser = build(CacheMode.VALIDATE)
    resolve(sim, browser.get("p.html"))
    resolve(sim, browser.get("p.html"))
    resolve(sim, browser.get("p.html"))
    assert proxy.counters["validate"] == 2
    # Unmodified page: the origin answered 304, not a full 200.
    assert origin.counters["304"] == 2
    assert origin.counters["200"] == 1


def test_validation_mode_never_serves_stale():
    sim, origin, proxy, browser = build(CacheMode.VALIDATE)
    resolve(sim, browser.get("p.html"))
    # Update at the origin directly.
    origin.document.write_page("p.html", "v2")
    result = resolve(sim, browser.get("p.html"))
    assert result.content == "v2"
    assert result.version == origin.current_version("p.html")


def test_ttl_mode_serves_stale_within_ttl():
    sim, origin, proxy, browser = build(CacheMode.TTL, ttl=30.0)
    resolve(sim, browser.get("p.html"))
    origin.document.write_page("p.html", "v2")
    result = resolve(sim, browser.get("p.html"))
    assert result.content == "v1", "TTL serves the cached copy while fresh"
    assert proxy.counters["hit"] == 1


def test_ttl_mode_refreshes_after_expiry():
    sim, origin, proxy, browser = build(CacheMode.TTL, ttl=5.0)
    resolve(sim, browser.get("p.html"))
    origin.document.write_page("p.html", "v2")
    sim.run(until=sim.now + 6.0)
    result = resolve(sim, browser.get("p.html"))
    assert result.content == "v2"
    assert proxy.counters["expired"] == 1


def test_none_mode_always_goes_upstream():
    sim, origin, proxy, browser = build(CacheMode.NONE)
    resolve(sim, browser.get("p.html"))
    resolve(sim, browser.get("p.html"))
    assert origin.counters["get"] == 2
    assert proxy.hit_ratio() == 0.0


def test_missing_page_404():
    sim, origin, proxy, browser = build()
    result = resolve(sim, browser.get("ghost.html"))
    assert not result.found
    assert origin.counters["404"] == 1


def test_put_passes_through_proxy():
    sim, origin, proxy, browser = build()
    version = resolve(sim, browser.put("p.html", "v2"))
    assert version == 2
    assert origin.document.pages["p.html"].content == "v2"
    assert proxy.counters["put_forward"] == 1


def test_put_append_mode():
    sim, origin, proxy, browser = build()
    resolve(sim, browser.put("p.html", "+more", append=True))
    assert origin.document.pages["p.html"].content == "v1+more"


def test_ims_304_cheaper_than_200():
    """The validation scheme's saving: 304s carry no page body."""
    sim, origin, proxy, browser = build(CacheMode.VALIDATE)
    origin.document.write_page("big.html", "x" * 4096)
    resolve(sim, browser.get("big.html"))
    origin_bytes_after_miss = origin.comm.bytes_sent
    resolve(sim, browser.get("big.html"))
    revalidation_bytes = origin.comm.bytes_sent - origin_bytes_after_miss
    # The proxy still serves the body to the browser, but the
    # origin-to-proxy leg carries only the 304.
    assert revalidation_bytes < 4096, "revalidation must not re-ship the body"
    assert origin.counters["304"] == 1


def test_browser_latency_samples():
    sim, origin, proxy, browser = build()
    resolve(sim, browser.get("p.html"))
    assert len(browser.op_latencies) == 1
    kind, value = browser.op_latencies[0]
    assert kind == "read" and value > 0
