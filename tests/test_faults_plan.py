"""Tests for fault plans: validation, ordering, generators."""

import pytest

from repro.faults.plan import (
    CrashNode,
    FaultPlan,
    FaultPlanError,
    Heal,
    LossBurst,
    Partition,
    RestartNode,
    periodic_flap,
    random_churn,
)
from repro.sim.rng import SeededRng


def test_partition_sides_canonicalized_and_disjoint():
    cut = Partition(at=1.0, side_a=("b", "a", "a"), side_b=("c",))
    assert cut.side_a == ("a", "b")
    with pytest.raises(FaultPlanError, match="overlap"):
        Partition(at=0.0, side_a=("a",), side_b=("a", "b"))
    with pytest.raises(FaultPlanError, match="at least one"):
        Partition(at=0.0, side_a=(), side_b=("b",))


def test_event_times_must_be_non_negative():
    with pytest.raises(FaultPlanError, match=">= 0"):
        CrashNode(at=-1.0, node="a")


def test_heal_requires_both_sides_or_neither():
    assert not Heal(at=1.0).partial
    assert Heal(at=1.0, side_a=("a",), side_b=("b",)).partial
    with pytest.raises(FaultPlanError, match="both sides"):
        Heal(at=1.0, side_a=("a",))


def test_loss_burst_validation():
    LossBurst(at=0.0, duration=1.0, loss_rate=0.5)
    with pytest.raises(FaultPlanError, match="duration"):
        LossBurst(at=0.0, duration=0.0, loss_rate=0.5)
    with pytest.raises(FaultPlanError, match="loss rate"):
        LossBurst(at=0.0, duration=1.0, loss_rate=1.0)


def test_plan_orders_events_by_time_then_declaration():
    plan = FaultPlan(events=(
        Heal(at=2.0),
        Partition(at=1.0, side_a=("a",), side_b=("b",)),
        CrashNode(at=1.0, node="c"),
        RestartNode(at=3.0, node="c"),
    ))
    ordered = plan.sorted_events()
    assert [type(e).__name__ for e in ordered] == [
        "Partition", "CrashNode", "Heal", "RestartNode",
    ]
    assert plan.duration() == 3.0


def test_plan_rejects_partial_heal_of_unopened_partition():
    # A mismatched heal would only fail mid-run (and, on the live
    # dispatcher, be printed rather than raised); it must fail at
    # declaration instead.
    with pytest.raises(FaultPlanError, match="matches no open"):
        FaultPlan(events=(
            Partition(at=1.0, side_a=("a",), side_b=("b",)),
            Heal(at=2.0, side_a=("a",), side_b=("c",)),
        ))
    # Reversed sides and full heals are fine.
    FaultPlan(events=(
        Partition(at=1.0, side_a=("a",), side_b=("b",)),
        Heal(at=2.0, side_a=("b",), side_b=("a",)),
        Partition(at=3.0, side_a=("a",), side_b=("c",)),
        Heal(at=4.0),
    ))


def test_plan_rejects_unbalanced_crash_restart():
    with pytest.raises(FaultPlanError, match="without a restart"):
        FaultPlan(events=(
            CrashNode(at=1.0, node="a"), CrashNode(at=2.0, node="a"),
        ))
    with pytest.raises(FaultPlanError, match="without a prior crash"):
        FaultPlan(events=(RestartNode(at=1.0, node="a"),))


def test_empty_plan_is_the_baseline():
    plan = FaultPlan()
    assert plan.empty
    assert plan.duration() == 0.0
    assert plan.describe() == "(no faults)"


def test_periodic_flap_generates_bounded_pairs():
    plan = periodic_flap(("a",), ("b",), period=1.0, down_for=0.25,
                         until=3.0, start=0.5)
    events = plan.sorted_events()
    partitions = [e for e in events if isinstance(e, Partition)]
    heals = [e for e in events if isinstance(e, Heal)]
    assert [e.at for e in partitions] == [0.5, 1.5, 2.5]
    assert [e.at for e in heals] == [0.75, 1.75, 2.75]
    assert all(h.partial for h in heals)
    with pytest.raises(FaultPlanError, match="down_for"):
        periodic_flap(("a",), ("b",), period=1.0, down_for=1.5, until=3.0)


def test_random_churn_is_deterministic_per_seed_and_non_overlapping():
    nodes = ["n0", "n1", "n2"]
    first = random_churn(nodes, SeededRng(42), until=20.0)
    second = random_churn(nodes, SeededRng(42), until=20.0)
    assert first == second
    other = random_churn(nodes, SeededRng(43), until=20.0)
    assert first != other
    # A node never crashes while already down (the plan validates this,
    # but assert the window bookkeeping explicitly).
    down = {}
    for event in first.sorted_events():
        if isinstance(event, CrashNode):
            assert down.get(event.node, 0.0) <= event.at
        else:
            down[event.node] = event.at
    assert first.events, "twenty seconds of churn should produce events"
