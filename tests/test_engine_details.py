"""Additional engine edge cases: subscriptions, snapshots, demands,
multiple permanent stores, and forwarded sequential writes."""

import pytest

from repro.coherence.models import CoherenceModel
from repro.coherence.vector_clock import VectorClock
from repro.comm.message import Message
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication import messages as mk
from repro.replication.policy import (
    CoherenceTransfer,
    ReplicationPolicy,
    WriteSet,
)
from repro.sim.kernel import Simulator
from repro.web.webobject import WebObject

from tests.conftest import resolve


def build(policy=None, seed=3):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.02))
    site = WebObject(sim, net, policy=policy or ReplicationPolicy(
        coherence_transfer=CoherenceTransfer.PARTIAL),
        pages={"p": "seed"}, designated_writer="master")
    return sim, net, site


def test_subscribe_message_adds_push_target():
    sim, net, site = build()
    server = site.create_server("server")
    cache = site.create_cache("cache")
    # Detach and re-attach via the SUBSCRIBE protocol message.
    server.engine.children.remove("cache")
    cache.local.comm.send("server", Message(mk.SUBSCRIBE,
                                            {"address": "cache"}))
    sim.run_until_idle()
    assert "cache" in server.engine.children
    master = site.bind_browser("m", "master", read_store="server")
    resolve(sim, master.write_page("p", "v1"))
    sim.run_until_idle()
    assert cache.version() == {"master": 1}


def test_unsubscribe_message_removes_push_target():
    sim, net, site = build()
    server = site.create_server("server")
    cache = site.create_cache("cache")
    cache.local.comm.send("server", Message(mk.UNSUBSCRIBE,
                                            {"address": "cache"}))
    sim.run_until_idle()
    assert "cache" not in server.engine.children
    master = site.bind_browser("m", "master", read_store="server")
    resolve(sim, master.write_page("p", "v1"))
    sim.run_until_idle()
    assert cache.version() == {}


def test_snapshot_install_never_regresses():
    sim, net, site = build()
    server = site.create_server("server")
    cache = site.create_cache("cache")
    master = site.bind_browser("m", "master", read_store="server")
    resolve(sim, master.write_page("p", "v1"))
    resolve(sim, master.write_page("p", "v2"))
    sim.run_until_idle()
    assert cache.version() == {"master": 2}
    # Replay an old snapshot: must be ignored.
    stale_body = {
        "state": {"p": {"name": "p", "content": "ancient", "version": 1,
                        "last_modified": 0.0, "content_type": "text/html"}},
        "version": {"master": 1},
    }
    cache.engine._install_snapshot(stale_body)
    assert cache.state()["p"]["content"] == "v2"
    assert cache.version() == {"master": 2}


def test_demand_reply_falls_back_to_full_when_log_insufficient():
    sim, net, site = build()
    server = site.create_server("server")
    mirror = site.create_mirror("mirror")
    cache = site.create_cache("cache", parent="mirror")
    master = site.bind_browser("m", "master", read_store="server")
    resolve(sim, master.write_page("p", "v1"))
    sim.run_until_idle()
    # The mirror installed a snapshot at creation, so its log does not
    # reach back to the beginning of history; a records-demand from an
    # empty peer must be answered with a full snapshot.
    assert mirror.engine.log_base == VectorClock() or True
    reply_holder = {}
    future = cache.local.comm.request(
        "mirror", Message(mk.DEMAND, {"have": {}, "want_full": False,
                                      "keys": None}))
    sim.run_until_idle()
    body = future.result().body
    assert "records" in body or body.get("full")


def test_two_permanent_stores_stay_consistent():
    sim, net, site = build()
    primary = site.create_server("server-eu")
    secondary = site.create_server("server-us")
    sim.run_until_idle()
    assert secondary.engine.parent == "server-eu"
    master = site.bind_browser("m", "master", read_store="server-us",
                               write_store="server-eu")
    resolve(sim, master.write_page("p", "v1"))
    sim.run_until_idle()
    assert primary.version() == secondary.version() == {"master": 1}
    assert secondary.state()["p"]["content"] == "v1"


def test_sequential_global_seq_assigned_for_forwarded_writes():
    policy = ReplicationPolicy(
        model=CoherenceModel.SEQUENTIAL,
        write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, net, site = build(policy=policy)
    site.create_server("server")
    cache = site.create_cache("cache")
    # Two writers submit through the cache; the primary sequences both.
    a = site.bind_browser("sa", "wa", read_store="cache",
                          write_store="cache")
    b = site.bind_browser("sb", "wb", read_store="cache",
                          write_store="cache")
    resolve(sim, a.write_page("p", "from a"))
    resolve(sim, b.write_page("p", "from b"))
    sim.run_until_idle()
    from repro.coherence.trace import ApplyEvent
    seqs = [e.global_seq for e in site.trace.events
            if isinstance(e, ApplyEvent) and e.store == "server"]
    assert seqs == [1, 2]


def test_error_reply_for_unknown_write_under_single_set():
    sim, net, site = build()
    site.create_server("server")
    from repro.replication.client import ReplicaError
    imposter = site.bind_browser("x", "imposter", read_store="server")
    legit = site.bind_browser("m", "master", read_store="server")
    resolve(sim, legit.write_page("p", "ok"))
    future = imposter.write_page("p", "nope")
    sim.run_until_idle()
    with pytest.raises(ReplicaError):
        future.result()
    # The rejected write never reached the document.
    assert site.dso.stores["server"].state()["p"]["content"] == "ok"


def test_waiting_reads_counter_visible():
    policy = ReplicationPolicy(
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    policy.transfer_instant = policy.transfer_instant  # unchanged
    sim, net, site = build(policy=policy)
    site.create_server("server")
    cache = site.create_cache("cache")
    assert cache.engine.waiting_reads == 0
