"""Scheduler equivalence: heap and calendar fire the identical order.

Two layers of evidence:

- a hypothesis property over randomized seeded schedules -- including
  cancellations, daemon events, ``run(until=...)`` segments and re-entrant
  scheduling from inside callbacks -- asserting both kernels produce the
  same firing log, clock and counters;
- a golden coherence-signature parity test: the X9 backend-smoke scenario
  run under ``scheduler="heap"`` and ``scheduler="calendar"`` yields
  byte-identical signatures, pinned in
  ``tests/golden/scheduler_parity_signature.json``.

Regenerate the golden file after an *intended* protocol change with::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.exec.live import live_smoke_point
    out = live_smoke_point(
        {"backend": "sim", "seed": 7, "scheduler": "heap"}, seed=0)
    sig = json.loads(json.dumps(out["signature"], sort_keys=True))
    with open("tests/golden/scheduler_parity_signature.json", "w") as fh:
        json.dump(sig, fh, indent=1, sort_keys=True)
        fh.write("\n")
    PY
"""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec.live import live_smoke_point
from repro.sim.kernel import Simulator

GOLDEN = Path(__file__).parent / "golden" / "scheduler_parity_signature.json"

#: One scripted action: (delay, daemon, cancel_index, nested_delay).
#: ``cancel_index`` points at an earlier action's event to cancel (or is
#: out of range and ignored); ``nested_delay`` schedules a follow-up from
#: inside the callback, exercising push-while-popping paths.
actions = st.lists(
    st.tuples(
        st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False),
        st.booleans(),
        st.integers(0, 40),
        st.one_of(st.none(), st.floats(0.0, 2.0, allow_nan=False)),
    ),
    min_size=1,
    max_size=40,
)


def drive(scheduler, script, until):
    """Run one script on one scheduler; return its observable outcome."""
    sim = Simulator(seed=0, scheduler=scheduler)
    log = []
    events = []

    def fire(label, nested_delay):
        log.append((round(sim.now, 9), label))
        if nested_delay is not None:
            events.append(
                sim.schedule(nested_delay, fire, f"{label}+n", None)
            )

    for index, (delay, daemon, cancel_index, nested) in enumerate(script):
        events.append(
            sim.schedule(delay, fire, f"e{index}", nested, daemon=daemon)
        )
        if cancel_index < len(events):
            events[cancel_index].cancel()
    if until is not None:
        sim.run(until=until)
    sim.run_until_idle()
    return {
        "log": log,
        "now": round(sim.now, 9),
        "fired": sim.events_fired,
        "live": sim.live_pending,
        "pending": sim.pending,
    }


class TestSchedulerEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(script=actions, until=st.one_of(st.none(), st.floats(0.0, 6.0)))
    def test_heap_and_calendar_fire_identically(self, script, until):
        assert drive("heap", script, until) == drive(
            "calendar", script, until
        )

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert Simulator().scheduler == "calendar"
        monkeypatch.delenv("REPRO_SCHEDULER")
        assert Simulator().scheduler == "heap"

    def test_explicit_choice_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert Simulator(scheduler="heap").scheduler == "heap"


def canonical(signature):
    """JSON round-trip: tuples become lists, keys sort stably."""
    return json.loads(json.dumps(signature, sort_keys=True))


class TestGoldenSchedulerParity:
    @pytest.fixture(scope="class")
    def signatures(self):
        return {
            scheduler: canonical(
                live_smoke_point(
                    {"backend": "sim", "seed": 7, "scheduler": scheduler},
                    seed=0,
                )["signature"]
            )
            for scheduler in ("heap", "calendar")
        }

    def test_signatures_match_across_schedulers(self, signatures):
        assert signatures["heap"] == signatures["calendar"]

    def test_signature_matches_golden(self, signatures):
        golden = json.loads(GOLDEN.read_text())
        for scheduler, signature in signatures.items():
            assert signature == golden, (
                f"scheduler={scheduler} diverged from the pinned X9 "
                f"signature; if the protocol change is intended, "
                f"regenerate tests/golden/scheduler_parity_signature.json "
                f"(see module docstring)"
            )
