"""Fault-injection tests: message loss, partitions, retries, recovery."""

import pytest

from repro.coherence import checkers
from repro.coherence.models import CoherenceModel
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication.policy import (
    CoherenceTransfer,
    OutdateReaction,
    ReplicationPolicy,
)
from repro.sim.kernel import Simulator
from repro.web.webobject import WebObject


def build(loss_rate=0.0, reliable=True, reaction=OutdateReaction.DEMAND,
          seed=11):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.02), loss_rate=loss_rate)
    policy = ReplicationPolicy(
        coherence_transfer=CoherenceTransfer.PARTIAL,
        object_outdate_reaction=reaction,
    )
    site = WebObject(sim, net, policy=policy, pages={"p": "seed"},
                     designated_writer="master",
                     reliable_transport=reliable)
    site.create_server("server")
    cache = site.create_cache("cache")
    master = site.bind_browser("m", "master", read_store="server",
                               write_store="server",
                               request_timeout=0.5, request_retries=20)
    return sim, net, site, cache, master


def test_lossy_pushes_recovered_by_demand_reaction():
    sim, net, site, cache, master = build(loss_rate=0.3, reliable=False)
    futures = []
    for index in range(10):
        futures.append(master.write_page("p", f"rev {index}"))
        sim.run(until=sim.now + 3.0)
    sim.run(until=sim.now + 30.0)
    assert all(f.done for f in futures)
    # A trailing run of lost pushes is undetectable until a later write
    # arrives (WiD gaps only show against a successor), so drive heartbeat
    # writes until one gets through and triggers the demand recovery.
    heartbeats = 0
    while cache.version().get("master", 0) < 10 and heartbeats < 20:
        master.append_to_page("p", "+hb")
        sim.run(until=sim.now + 3.0)
        heartbeats += 1
    assert cache.version().get("master", 0) >= 10, (
        "gap detection + demand must recover every lost push"
    )
    assert net.stats.datagrams_dropped_loss > 0, "the test must actually lose"
    assert checkers.check_pram(site.trace) == []


def test_lossy_pushes_stall_under_wait_reaction():
    sim, net, site, cache, master = build(
        loss_rate=0.3, reliable=False, reaction=OutdateReaction.WAIT)
    futures = []
    for index in range(10):
        futures.append(master.write_page("p", f"rev {index}"))
        sim.run(until=sim.now + 3.0)
    sim.run(until=sim.now + 30.0)
    assert all(f.done for f in futures)
    assert cache.version().get("master", 0) < 10, (
        "with reaction=wait, lost pushes leave the replica behind"
    )


def test_client_write_retries_survive_loss():
    sim, net, site, cache, master = build(loss_rate=0.4, reliable=False)
    future = master.write_page("p", "persistent")
    sim.run(until=sim.now + 30.0)
    assert future.done
    assert site.dso.stores["server"].state()["p"]["content"] == "persistent"
    # The write applied exactly once despite request retries.
    applies = [e for e in site.trace.events
               if type(e).__name__ == "ApplyEvent" and e.store == "server"]
    assert len(applies) == 1


def test_partition_heals_and_replica_catches_up():
    sim, net, site, cache, master = build()
    future = master.write_page("p", "v1")
    sim.run_until_idle()
    assert cache.version() == {"master": 1}
    net.partition(["server"], ["cache"])
    future = master.write_page("p", "v2")
    sim.run(until=sim.now + 2.0)
    assert future.done, "the master is on the server side of the partition"
    assert cache.version() == {"master": 1}
    net.heal()
    sim.run(until=sim.now + 10.0)
    assert cache.version() == {"master": 2}
    assert cache.state()["p"]["content"] == "v2"


def test_reads_during_partition_serve_local_replica():
    sim, net, site, cache, master = build()
    user = site.dso
    browser = site.bind_browser("u", "user", read_store="cache")
    first = browser.read_page("p")
    sim.run_until_idle()
    assert first.result()["content"] == "seed"
    net.partition(["server"], ["cache", "u"])
    second = browser.read_page("p")
    sim.run(until=sim.now + 2.0)
    # No session requirement: the cache's (stale but valid) copy serves.
    assert second.done
    assert second.result()["content"] == "seed"
