"""Unit tests for the ordering disciplines (one per coherence model)."""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.models import CoherenceModel
from repro.coherence.ordering import (
    CausalOrdering,
    EventualOrdering,
    FifoOrdering,
    PramOrdering,
    SequentialOrdering,
    make_ordering,
)
from repro.coherence.records import WriteRecord
from repro.coherence.vector_clock import VectorClock
from repro.comm.invocation import MarshalledInvocation
from repro.core.ids import WriteId


def rec(client, seqno, deps=None, global_seq=None, touched=("p",), ts=0.0):
    return WriteRecord(
        wid=WriteId(client, seqno),
        invocation=MarshalledInvocation("write_page", (f"{client}-{seqno}",),
                                        read_only=False),
        touched=tuple(touched),
        deps=VectorClock(deps) if deps is not None else None,
        global_seq=global_seq,
        timestamp=ts,
    )


def wids(records):
    return [r.wid for r in records]


class TestPramOrdering:
    def test_in_order_applies_immediately(self):
        ordering = PramOrdering()
        assert wids(ordering.offer(rec("m", 1))) == [WriteId("m", 1)]
        assert wids(ordering.offer(rec("m", 2))) == [WriteId("m", 2)]

    def test_out_of_order_buffers_until_gap_fills(self):
        ordering = PramOrdering()
        assert ordering.offer(rec("m", 2)) == []
        assert ordering.has_gaps()
        released = ordering.offer(rec("m", 1))
        assert wids(released) == [WriteId("m", 1), WriteId("m", 2)]
        assert not ordering.has_gaps()

    def test_independent_clients_do_not_block_each_other(self):
        ordering = PramOrdering()
        ordering.offer(rec("m", 2))  # buffered
        assert wids(ordering.offer(rec("u", 1))) == [WriteId("u", 1)]

    def test_duplicates_ignored(self):
        ordering = PramOrdering()
        ordering.offer(rec("m", 1))
        assert ordering.offer(rec("m", 1)) == []

    def test_buffered_duplicate_ignored(self):
        ordering = PramOrdering()
        ordering.offer(rec("m", 3))
        assert ordering.offer(rec("m", 3)) == []
        assert len(ordering.buffer) == 1

    def test_install_clears_covered_buffer(self):
        ordering = PramOrdering()
        ordering.offer(rec("m", 2))
        ordering.install(VectorClock({"m": 2}))
        assert not ordering.has_gaps()
        assert wids(ordering.offer(rec("m", 3))) == [WriteId("m", 3)]

    def test_deps_gate_release(self):
        ordering = PramOrdering()
        # m's first write depends on u:1 (writes-follow-reads).
        assert ordering.offer(rec("m", 1, deps={"u": 1})) == []
        released = ordering.offer(rec("u", 1))
        assert wids(released) == [WriteId("u", 1), WriteId("m", 1)]


class TestFifoOrdering:
    def test_gaps_are_skipped(self):
        ordering = FifoOrdering()
        assert wids(ordering.offer(rec("m", 3))) == [WriteId("m", 3)]
        assert not ordering.has_gaps()

    def test_stale_write_dropped(self):
        ordering = FifoOrdering()
        ordering.offer(rec("m", 3))
        assert ordering.offer(rec("m", 1)) == []
        assert ordering.dropped == 1

    def test_newer_write_still_applies(self):
        ordering = FifoOrdering()
        ordering.offer(rec("m", 3))
        assert wids(ordering.offer(rec("m", 7))) == [WriteId("m", 7)]


class TestCausalOrdering:
    def test_dependency_chain_across_clients(self):
        ordering = CausalOrdering()
        # Reply (b:1) depends on post (a:1); reply arrives first.
        assert ordering.offer(rec("b", 1, deps={"a": 1})) == []
        released = ordering.offer(rec("a", 1, deps={}))
        assert wids(released) == [WriteId("a", 1), WriteId("b", 1)]

    def test_own_writes_sequenced(self):
        ordering = CausalOrdering()
        assert ordering.offer(rec("a", 2, deps={"a": 1})) == []
        released = ordering.offer(rec("a", 1, deps={}))
        assert wids(released) == [WriteId("a", 1), WriteId("a", 2)]


class TestSequentialOrdering:
    def test_global_order_enforced(self):
        ordering = SequentialOrdering()
        assert ordering.offer(rec("b", 1, global_seq=2)) == []
        released = ordering.offer(rec("a", 1, global_seq=1))
        assert [r.global_seq for r in released] == [1, 2]

    def test_install_resets_next_global(self):
        ordering = SequentialOrdering()
        ordering.install(VectorClock({"a": 5}), next_global=6)
        assert wids(ordering.offer(rec("b", 1, global_seq=6))) == [WriteId("b", 1)]


class TestEventualOrdering:
    def test_applies_anything_new(self):
        ordering = EventualOrdering()
        assert wids(ordering.offer(rec("m", 5))) == [WriteId("m", 5)]
        assert wids(ordering.offer(rec("m", 1, touched=("q",)))) == [WriteId("m", 1)]

    def test_lww_drops_older_write_to_same_key(self):
        ordering = EventualOrdering(lww=True)
        ordering.offer(rec("a", 1, ts=5.0))
        assert ordering.offer(rec("b", 1, ts=2.0)) == []
        assert ordering.dropped == 1

    def test_lww_tiebreak_on_wid(self):
        ordering = EventualOrdering(lww=True)
        ordering.offer(rec("b", 1, ts=5.0))
        # Same timestamp, smaller client id: loses the tiebreak.
        assert ordering.offer(rec("a", 1, ts=5.0)) == []

    def test_without_lww_everything_applies(self):
        ordering = EventualOrdering(lww=False)
        ordering.offer(rec("a", 1, ts=5.0))
        assert wids(ordering.offer(rec("b", 1, ts=2.0))) == [WriteId("b", 1)]

    def test_different_keys_unaffected_by_lww(self):
        ordering = EventualOrdering(lww=True)
        ordering.offer(rec("a", 1, ts=5.0, touched=("p",)))
        assert wids(ordering.offer(rec("b", 1, ts=2.0, touched=("q",)))) == \
            [WriteId("b", 1)]


class TestFactory:
    @pytest.mark.parametrize("model,cls", [
        (CoherenceModel.PRAM, PramOrdering),
        (CoherenceModel.FIFO, FifoOrdering),
        (CoherenceModel.CAUSAL, CausalOrdering),
        (CoherenceModel.SEQUENTIAL, SequentialOrdering),
        (CoherenceModel.EVENTUAL, EventualOrdering),
    ])
    def test_factory_maps_models(self, model, cls):
        assert isinstance(make_ordering(model), cls)


@given(st.permutations(list(range(1, 9))))
def test_pram_applies_any_permutation_in_order(permutation):
    """Property: whatever the arrival order, PRAM applies 1..n in order."""
    ordering = PramOrdering()
    applied = []
    for seqno in permutation:
        applied.extend(wids(ordering.offer(rec("m", seqno))))
    assert applied == [WriteId("m", n) for n in range(1, 9)]
    assert not ordering.has_gaps()


@given(st.permutations(list(range(1, 8))), st.permutations(list(range(1, 8))))
def test_pram_two_clients_interleaved(perm_a, perm_b):
    """Property: per-client order holds under any interleaving."""
    ordering = PramOrdering()
    applied = []
    for sa, sb in zip(perm_a, perm_b):
        applied.extend(wids(ordering.offer(rec("a", sa))))
        applied.extend(wids(ordering.offer(rec("b", sb))))
    for client in ("a", "b"):
        seqs = [w.seqno for w in applied if w.client_id == client]
        assert seqs == sorted(seqs)
        assert seqs == list(range(1, len(seqs) + 1))


@given(st.permutations(list(range(1, 10))))
def test_sequential_applies_global_order(permutation):
    """Property: sequential releases exactly ascending global sequence."""
    ordering = SequentialOrdering()
    applied = []
    for n in permutation:
        applied.extend(
            r.global_seq for r in ordering.offer(rec("c", n, global_seq=n))
        )
    assert applied == list(range(1, 10))


@given(st.lists(st.tuples(st.sampled_from("ab"), st.integers(1, 6),
                          st.floats(0, 10)), max_size=24))
def test_eventual_lww_never_regresses(entries):
    """Property: under LWW the applied stamp for a key never decreases."""
    ordering = EventualOrdering(lww=True)
    best = None
    for client, seqno, ts in entries:
        for record in ordering.offer(rec(client, seqno, ts=ts)):
            stamp = (record.timestamp, record.wid)
            if best is not None:
                assert stamp > best
            best = stamp
