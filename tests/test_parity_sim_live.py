"""Golden sim/live parity: one scenario, two substrates, one behaviour.

The acceptance claim of the transport refactor: the same ``Deployment``
scenario, driven by the same synchronous script under a fixed seed,
produces the identical coherence trace (time-free signature) and final
``version()`` on the deterministic simulator and on the wall-clock
runtime.  The canonical script lives in
:func:`repro.exec.live.live_smoke_point` -- the X9 experiment and the
live-sweep adapter run the very same code, so this test pins exactly the
claim they report.
"""

import pytest

from repro.exec.live import live_smoke_point
from repro.replication.policy import ReplicationPolicy
from repro.workload.scenarios import build_tree

SEED = 7


class TestGoldenParity:
    @pytest.fixture(scope="class")
    def outcomes(self):
        config = {"writes": 3, "n_caches": 2, "seed": SEED}
        return {
            backend: live_smoke_point(dict(config, backend=backend), seed=0)
            for backend in ("sim", "live")
        }

    def test_both_backends_converge_and_serve(self, outcomes):
        for backend, outcome in outcomes.items():
            assert outcome["converged"], f"{backend}: convergence gate failed"
            assert outcome["reads_ok"] == 2, f"{backend}: stale reads"

    def test_final_versions_identical(self, outcomes):
        assert outcomes["sim"]["versions"] == outcomes["live"]["versions"]
        assert all(
            version == {"master": 3}
            for version in outcomes["sim"]["versions"].values()
        )

    def test_coherence_signatures_identical(self, outcomes):
        sim_signature = outcomes["sim"]["signature"]
        live_signature = outcomes["live"]["signature"]
        assert sorted(sim_signature) == sorted(live_signature)
        for lane in sim_signature:
            assert sim_signature[lane] == live_signature[lane], (
                f"coherence trace diverged between backends in lane {lane}"
            )


class TestDeploymentDriving:
    """The backend-agnostic Deployment helpers themselves, on both
    substrates (the smoke point exercises them only indirectly)."""

    @pytest.mark.parametrize("backend", ["sim", "live"])
    def test_call_wait_and_wait_until(self, backend):
        deployment = build_tree(
            policy=ReplicationPolicy(),
            n_caches=1,
            n_readers_per_cache=1,
            pages={"index.html": "<h1>drive</h1>"},
            seed=SEED,
            backend=backend,
        )
        try:
            master = deployment.browsers["master"]
            future = deployment.call(
                master.write_page, "index.html", "<h1>driven</h1>"
            )
            wid = deployment.wait(future, timeout=10.0)
            assert (wid.client_id, wid.seqno) == ("master", 1)
            assert deployment.wait_until(
                lambda: all(
                    engine.version().get("master", 0) == 1
                    for engine in deployment.engines
                ),
                timeout=10.0,
            )
            read = deployment.call(
                deployment.browsers["reader-0-0"].read_page, "index.html"
            )
            assert deployment.wait(read, timeout=10.0)["content"] == (
                "<h1>driven</h1>"
            )
        finally:
            deployment.shutdown()
