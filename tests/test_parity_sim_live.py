"""Golden backend parity: one scenario, three substrates, one behaviour.

The acceptance claim of the transport stack: the same ``Deployment``
scenario, driven by the same synchronous script under a fixed seed,
produces the identical coherence trace (time-free signature) and final
``version()`` on the deterministic simulator, on the wall-clock thread
runtime, and on the multi-process socket runtime.  The canonical script
lives in :func:`repro.exec.live.live_smoke_point` -- the X9 experiment
and the live-sweep adapter run the very same code, so this test pins
exactly the claim they report.

The sim signature is additionally pinned byte-for-byte in
``tests/golden/backend_smoke_signature.json``; because every backend
must equal sim, the golden transitively pins all three (a protocol
change cannot slip through as "all backends drifted the same way").

Regenerate the golden file after an *intended* protocol change with::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.exec.live import live_smoke_point
    out = live_smoke_point(
        {"backend": "sim", "writes": 3, "n_caches": 2, "seed": 7}, seed=0
    )
    sig = json.loads(json.dumps(out["signature"], sort_keys=True))
    with open("tests/golden/backend_smoke_signature.json", "w") as fh:
        json.dump(sig, fh, indent=1, sort_keys=True)
        fh.write("\\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.exec.live import live_smoke_point
from repro.replication.policy import ReplicationPolicy
from repro.workload.scenarios import build_tree

SEED = 7

#: Every driving substrate; parity is asserted pairwise against "sim".
BACKENDS = ("sim", "live", "live-socket")

GOLDEN = Path(__file__).parent / "golden" / "backend_smoke_signature.json"


def canonical(signature):
    """JSON round-trip: tuples become lists, keys sort stably."""
    return json.loads(json.dumps(signature, sort_keys=True))


class TestGoldenParity:
    @pytest.fixture(scope="class")
    def outcomes(self):
        config = {"writes": 3, "n_caches": 2, "seed": SEED}
        return {
            backend: live_smoke_point(dict(config, backend=backend), seed=0)
            for backend in BACKENDS
        }

    def test_all_backends_converge_and_serve(self, outcomes):
        for backend, outcome in outcomes.items():
            assert outcome["converged"], f"{backend}: convergence gate failed"
            assert outcome["reads_ok"] == 2, f"{backend}: stale reads"

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "sim"])
    def test_final_versions_identical(self, outcomes, backend):
        assert outcomes["sim"]["versions"] == outcomes[backend]["versions"]
        assert all(
            version == {"master": 3}
            for version in outcomes["sim"]["versions"].values()
        )

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "sim"])
    def test_coherence_signatures_identical(self, outcomes, backend):
        sim_signature = outcomes["sim"]["signature"]
        other_signature = outcomes[backend]["signature"]
        assert sorted(sim_signature) == sorted(other_signature)
        for lane in sim_signature:
            assert sim_signature[lane] == other_signature[lane], (
                f"coherence trace diverged between sim and {backend} "
                f"in lane {lane}"
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_signature_matches_golden_file(self, outcomes, backend):
        golden = json.loads(GOLDEN.read_text())
        assert canonical(outcomes[backend]["signature"]) == golden, (
            f"{backend}: the smoke scenario's coherence history changed; "
            "if this is an intended protocol change, regenerate the "
            "golden file (see module docstring)"
        )


class TestDeploymentDriving:
    """The backend-agnostic Deployment helpers themselves, on every
    substrate (the smoke point exercises them only indirectly)."""

    @pytest.mark.parametrize("backend", list(BACKENDS))
    def test_call_wait_and_wait_until(self, backend):
        deployment = build_tree(
            policy=ReplicationPolicy(),
            n_caches=1,
            n_readers_per_cache=1,
            pages={"index.html": "<h1>drive</h1>"},
            seed=SEED,
            backend=backend,
        )
        try:
            master = deployment.browsers["master"]
            future = deployment.call(
                master.write_page, "index.html", "<h1>driven</h1>"
            )
            wid = deployment.wait(future, timeout=10.0)
            assert (wid.client_id, wid.seqno) == ("master", 1)
            assert deployment.wait_until(
                lambda: all(
                    engine.version().get("master", 0) == 1
                    for engine in deployment.engines
                ),
                timeout=10.0,
            )
            read = deployment.call(
                deployment.browsers["reader-0-0"].read_page, "index.html"
            )
            assert deployment.wait(read, timeout=10.0)["content"] == (
                "<h1>driven</h1>"
            )
        finally:
            deployment.shutdown()
