"""Tests for the local-object composition, stub marshalling and records."""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.records import WriteRecord
from repro.coherence.vector_clock import VectorClock
from repro.comm.invocation import MarshalledInvocation
from repro.core.ids import WriteId, fresh_object_id
from repro.core.interfaces import Role, STORE_LAYERS
from repro.core.local_object import LocalObject
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication.engine import StoreReplicationObject
from repro.replication.policy import ReplicationPolicy
from repro.sim.kernel import Simulator
from repro.web.document import WebDocument


class TestRoles:
    def test_store_layers_order(self):
        assert STORE_LAYERS == (
            Role.PERMANENT, Role.OBJECT_INITIATED, Role.CLIENT_INITIATED)

    def test_client_is_not_a_store(self):
        assert not Role.CLIENT.is_store
        assert Role.PERMANENT.is_store


class TestObjectIds:
    def test_fresh_ids_unique(self):
        assert fresh_object_id() != fresh_object_id()

    def test_prefix_respected(self):
        assert fresh_object_id("web").startswith("web-")


class TestLocalObject:
    def test_store_requires_semantics(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            LocalObject(
                sim, net, "s", Role.PERMANENT,
                StoreReplicationObject(ReplicationPolicy(), Role.PERMANENT),
                semantics=None,
            )

    def test_composition_wires_control(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        engine = StoreReplicationObject(ReplicationPolicy(), Role.PERMANENT)
        local = LocalObject(sim, net, "server", Role.PERMANENT, engine,
                            semantics=WebDocument(pages={"p": "x"}))
        assert engine.control is local.control
        assert local.control.address == "server"
        assert local.control.role is Role.PERMANENT
        assert net.is_registered("server")

    def test_destroy_unregisters(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        engine = StoreReplicationObject(ReplicationPolicy(), Role.PERMANENT)
        local = LocalObject(sim, net, "server", Role.PERMANENT, engine,
                            semantics=WebDocument())
        local.destroy()
        assert not net.is_registered("server")

    def test_local_invocation_served_in_place(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        engine = StoreReplicationObject(ReplicationPolicy(), Role.PERMANENT)
        local = LocalObject(sim, net, "server", Role.PERMANENT, engine,
                            semantics=WebDocument(pages={"p": "x"}))
        future = local.control.invoke(
            MarshalledInvocation("read_page", ("p",)))
        sim.run_until_idle()
        assert future.result()["content"] == "x"

    def test_local_write_applies_and_versions(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        engine = StoreReplicationObject(ReplicationPolicy(), Role.PERMANENT)
        local = LocalObject(sim, net, "server", Role.PERMANENT, engine,
                            semantics=WebDocument())
        future = local.control.invoke(
            MarshalledInvocation("write_page", ("p", "body"),
                                 read_only=False),
            session={"client_id": "admin"},
        )
        sim.run_until_idle()
        assert engine.version() == {"admin": 1}


class TestWriteRecordWire:
    def test_roundtrip(self):
        record = WriteRecord(
            wid=WriteId("m", 3),
            invocation=MarshalledInvocation("write_page", ("p", "c"),
                                            (("content_type", "t"),), False),
            touched=("p",),
            deps=VectorClock({"u": 2}),
            global_seq=9,
            timestamp=1.5,
            origin="server",
        )
        restored = WriteRecord.from_wire(record.to_wire())
        assert restored.wid == record.wid
        assert restored.invocation == record.invocation
        assert restored.touched == record.touched
        assert restored.deps == record.deps
        assert restored.global_seq == 9
        assert restored.timestamp == 1.5
        assert restored.origin == "server"

    def test_none_deps_roundtrip(self):
        record = WriteRecord(
            wid=WriteId("m", 1),
            invocation=MarshalledInvocation("delete_page", ("p",),
                                            read_only=False),
        )
        assert WriteRecord.from_wire(record.to_wire()).deps is None

    def test_newer_than_lww_order(self):
        older = WriteRecord(wid=WriteId("a", 1), timestamp=1.0,
                            invocation=MarshalledInvocation("m"))
        newer = WriteRecord(wid=WriteId("b", 1), timestamp=2.0,
                            invocation=MarshalledInvocation("m"))
        assert newer.newer_than(older)
        assert not older.newer_than(newer)

    @given(st.text(min_size=1, max_size=10), st.integers(1, 1000),
           st.floats(0, 1e6),
           st.dictionaries(st.text(min_size=1, max_size=5),
                           st.integers(1, 50), max_size=3))
    def test_roundtrip_property(self, client, seqno, ts, deps):
        record = WriteRecord(
            wid=WriteId(client, seqno),
            invocation=MarshalledInvocation("append_to_page", ("p", "x"),
                                            read_only=False),
            deps=VectorClock(deps),
            timestamp=ts,
        )
        restored = WriteRecord.from_wire(record.to_wire())
        assert restored.wid == record.wid
        assert restored.deps == record.deps
        assert restored.timestamp == ts
