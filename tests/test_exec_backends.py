"""Tests for the pluggable executor stack (``repro.exec.backends``).

Point functions live at module level because worker processes import
them by reference.  The parity tests are the tentpole guarantee: the
executor axis is pure mechanism, so results and cache entries are
bit-identical whichever executor produced them.
"""

import hashlib
import json
import multiprocessing
from pathlib import Path

import pytest

from repro.exec import (
    EXECUTOR_ENV,
    EXECUTORS,
    PicklePipeExecutor,
    ResultCache,
    SerialExecutor,
    SharedMemoryExecutor,
    SweepSpec,
    default_parallelism,
    encode_result,
    resolve_executor,
    run_sweep,
)
from repro.exec.backends import PointTask, _pool_context

GOLDEN = Path(__file__).parent / "golden" / "exec_executor_signature.json"

ALL_EXECUTORS = sorted(EXECUTORS)


def trace_point(config, seed):
    """A deterministic pseudo-trace: the large-artifact payload shape.

    Built from exact binary fractions of the derived seed, so the bytes
    are identical on every platform and under every executor.
    """
    count = config["count"]
    base = seed % (1 << 20)
    return {
        "label": config["tag"],
        "samples": [(base + i) / 16.0 for i in range(count)],
        "versions": [(base + i) % 97 for i in range(count)],
        "records": [
            {"node": f"cache-{i % 5}", "version": i, "applied": True}
            for i in range(count // 8)
        ],
        "summary": {"count": count, "seed": seed, "mean": base / 16.0},
    }


def failing_point(config, seed):
    raise RuntimeError(f"point {config['tag']} exploded")


def unencodable_point(config, seed):
    # A payload even the codec's pickle fallback cannot serialize.
    return {"handle": open("/dev/null")}


def _trace_spec():
    spec = SweepSpec(name="executor-parity", run_point=trace_point)
    for tag in ("alpha", "beta", "gamma", "delta"):
        spec.add(tag, tag=tag, count=64)
    return spec


def _signature(results):
    blob = encode_result([[label, results[label]] for label in results])
    return hashlib.sha256(blob).hexdigest()


class TestResolution:
    def test_default_is_serial_for_one_worker(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert isinstance(resolve_executor(None, parallel=1), SerialExecutor)

    def test_default_is_process_pool_for_many_workers(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert isinstance(resolve_executor(None, parallel=4),
                          PicklePipeExecutor)

    def test_env_variable_overrides_the_default(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "shared-memory")
        assert isinstance(resolve_executor(None, parallel=1),
                          SharedMemoryExecutor)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "shared-memory")
        assert isinstance(resolve_executor("serial", parallel=4),
                          SerialExecutor)

    def test_explicit_instance_passes_through(self):
        executor = SharedMemoryExecutor(collect_stats=True)
        assert resolve_executor(executor, parallel=1) is executor

    def test_unknown_name_rejected_with_catalog(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_executor("teleport", parallel=1)
        message = str(excinfo.value)
        assert "teleport" in message
        for name in EXECUTORS:
            assert name in message


class TestParallelismDefaults:
    def test_default_parallelism_clamps_to_task_count(self):
        assert default_parallelism(task_count=1) == 1
        assert default_parallelism(task_count=0) == 1
        cpus = default_parallelism()
        assert default_parallelism(task_count=10_000) == cpus
        assert cpus >= 1

    def test_pool_context_prefers_fork_then_falls_back(self, monkeypatch):
        monkeypatch.setattr(multiprocessing, "get_all_start_methods",
                            lambda: ["spawn", "fork"])
        assert _pool_context().get_start_method() == "fork"
        monkeypatch.setattr(multiprocessing, "get_all_start_methods",
                            lambda: ["spawn"])
        assert _pool_context().get_start_method() == "spawn"


class TestExecutorParity:
    def test_results_and_cache_entries_bit_identical(self, tmp_path):
        results = {}
        trees = {}
        for name in ALL_EXECUTORS:
            cache = ResultCache(tmp_path / name, fingerprint="pinned")
            results[name] = run_sweep(_trace_spec(), parallel=2,
                                      cache=cache, executor=name)
            trees[name] = {
                str(path.relative_to(tmp_path / name)): path.read_bytes()
                for path in (tmp_path / name).rglob("*.res")
            }
        reference = ALL_EXECUTORS[0]
        for name in ALL_EXECUTORS[1:]:
            assert results[name] == results[reference]
            assert list(results[name]) == list(results[reference])
            # Same cache keys (paths) and the same bytes under them.
            assert trees[name] == trees[reference]
        assert len(trees[reference]) == len(_trace_spec().points)

    def test_golden_signature_pinned(self):
        golden = json.loads(GOLDEN.read_text())
        for name in ALL_EXECUTORS:
            measured = run_sweep(_trace_spec(), parallel=2, executor=name)
            assert _signature(measured) == golden["signature"], (
                f"executor {name!r} diverged from the golden sweep "
                "signature"
            )

    def test_streamed_blobs_do_not_accumulate(self, tmp_path):
        # Cache writes pop each encoded blob as its result streams in,
        # so a cached sweep never holds the whole payload volume.
        executor = SharedMemoryExecutor()
        cache = ResultCache(tmp_path, fingerprint="pinned")
        run_sweep(_trace_spec(), parallel=2, cache=cache,
                  executor=executor)
        assert executor.encoded_payloads == {}
        assert cache.writes == len(_trace_spec().points)

    def test_single_point_sweep_still_uses_the_selected_transport(self):
        spec = SweepSpec(name="one", run_point=trace_point)
        spec.add("only", tag="only", count=16)
        executor = SharedMemoryExecutor(collect_stats=True)
        measured = run_sweep(spec, parallel=1, executor=executor)
        assert measured["only"]["summary"]["count"] == 16
        assert executor.stats.payload_bytes > 0


class TestSharedMemoryTransport:
    def test_descriptors_cross_the_pipe_not_payloads(self):
        executor = SharedMemoryExecutor(collect_stats=True)
        run_sweep(_trace_spec(), parallel=2, executor=executor)
        stats = executor.stats
        assert stats.points == 4
        assert stats.failures == 0
        assert stats.payload_bytes > 0
        assert stats.pipe_bytes > 0
        # The descriptors are tiny next to the payloads they replace.
        assert stats.pipe_bytes < stats.payload_bytes

    def test_worker_side_segment_fallback_inlines_the_blob(self):
        # Simulate segment allocation failing inside the worker: the
        # blob rides the pipe inline, still framed and digest-checked.
        from repro.exec.backends import SegmentRef, _evaluate_to_segment

        task = PointTask(run_point=trace_point, index=0, label="x",
                         config={"tag": "x", "count": 8}, seed=1)
        index, ok, ref = _evaluate_to_segment(task)
        assert ok and isinstance(ref, SegmentRef)
        inline = SegmentRef(ref.label, None, ref.length, ref.digest,
                            blob=encode_result(
                                trace_point(task.config, task.seed)))
        executor = SharedMemoryExecutor()
        result = executor._collect_one((index, True, inline))
        assert result[1] is True
        assert result[2]["summary"]["count"] == 8
        # Clean up the real segment created above.
        from repro.exec.backends import _read_segment
        _read_segment(ref)

    def test_digest_mismatch_is_detected(self):
        from repro.exec.backends import SegmentRef
        from repro.exec.codec import CodecError

        blob = encode_result({"x": 1})
        bad = SegmentRef("pt", None, len(blob), "0" * 16, blob=blob)
        with pytest.raises(CodecError):
            SharedMemoryExecutor()._collect_one((0, True, bad))


class TestFailurePaths:
    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_failures_travel_the_pipe_as_data(self, name):
        from repro.exec import SweepPointError

        spec = SweepSpec(name="fragile", run_point=failing_point)
        spec.add("boom", tag="boom")
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(spec, parallel=2, executor=name)
        assert excinfo.value.executor == name
        assert "exploded" in excinfo.value.detail

    def test_unencodable_payload_is_an_attributable_failure(self):
        # Encoding happens in the worker; an unserializable payload must
        # come back as a SweepPointError naming the point, not as a bare
        # pickling error that aborts the pool.
        from repro.exec import SweepPointError

        spec = SweepSpec(name="unencodable", run_point=unencodable_point)
        spec.add("bad", tag="bad")
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(spec, parallel=2, executor="shared-memory")
        assert excinfo.value.label == "bad"
        assert excinfo.value.executor == "shared-memory"
        assert "pickle" in excinfo.value.detail.lower()
