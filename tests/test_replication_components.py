"""Unit tests for the four extracted replication protocol components.

The engine façade is integration-tested by ``test_engine_*``; these tests
pin each component's own contract -- write path, read/demand path,
propagation strategy and coherence emitter -- against a real composition
on the simulator.
"""

from repro.coherence.models import CoherenceModel
from repro.coherence.records import WriteRecord
from repro.comm.invocation import MarshalledInvocation
from repro.core.ids import WriteId
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication.emission import CoherenceEmitter
from repro.replication.policy import (
    CoherenceTransfer,
    Propagation,
    ReplicationPolicy,
    TransferInitiative,
    TransferInstant,
    WriteSet,
)
from repro.replication.propagation import PropagationStrategy
from repro.replication.read_path import ReadDemandPath
from repro.replication.write_path import WritePath
from repro.sim.kernel import Simulator
from repro.web.webobject import WebObject


def build(policy=None, seed=1, pages=None, writer=None, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.02))
    site = WebObject(sim, net, policy=policy,
                     pages=pages or {"index.html": "seed"},
                     designated_writer=writer, **kwargs)
    return sim, net, site


def write_record(client="w", seqno=1, page="index.html", content="x"):
    return WriteRecord(
        wid=WriteId(client, seqno),
        invocation=MarshalledInvocation(
            "write_page", (page, content), read_only=False
        ),
    )


class TestComposition:
    def test_engine_exposes_all_four_components(self):
        _, _, site = build()
        engine = site.create_server("server").engine
        assert isinstance(engine.writes, WritePath)
        assert isinstance(engine.reads, ReadDemandPath)
        assert isinstance(engine.propagation, PropagationStrategy)
        assert isinstance(engine.emission, CoherenceEmitter)
        # Every component shares the façade's replica state.
        for component in (engine.writes, engine.reads,
                          engine.propagation, engine.emission):
            assert component.engine is engine


class TestWritePath:
    def test_writer_check_locks_to_first_writer(self):
        _, _, site = build()  # single write set, no designated writer
        engine = site.create_server("server").engine
        assert engine.writes.writer_check("alice") is None
        assert engine.allowed_writer == "alice"
        error = engine.writes.writer_check("bob")
        assert error is not None and "alice" in error

    def test_writer_check_multiple_writers_always_pass(self):
        policy = ReplicationPolicy(model=CoherenceModel.EVENTUAL,
                                   write_set=WriteSet.MULTIPLE)
        _, _, site = build(policy=policy)
        engine = site.create_server("server").engine
        assert engine.writes.writer_check("alice") is None
        assert engine.writes.writer_check("bob") is None

    def test_stamp_fills_metadata(self):
        sim, _, site = build()
        engine = site.create_server("server").engine
        record = write_record()
        engine.writes.stamp(record)
        assert record.touched == ("index.html",)
        assert record.origin == "server"
        assert record.timestamp == sim.now
        assert record.global_seq is None  # PRAM: no sequencer

    def test_stamp_sequences_at_sequential_primary(self):
        policy = ReplicationPolicy(model=CoherenceModel.SEQUENTIAL)
        _, _, site = build(policy=policy)
        engine = site.create_server("server").engine
        first, second = write_record(seqno=1), write_record(seqno=2)
        engine.writes.stamp(first)
        engine.writes.stamp(second)
        assert (first.global_seq, second.global_seq) == (1, 2)
        assert engine.writes.next_global == 3

    def test_fresh_record_mints_per_client_seqnos(self):
        _, _, site = build()
        engine = site.create_server("server").engine
        invocation = MarshalledInvocation("write_page", ("p", "v"),
                                          read_only=False)
        first = engine.writes.fresh_record(invocation, {"client_id": "a"})
        second = engine.writes.fresh_record(invocation, {"client_id": "a"})
        other = engine.writes.fresh_record(invocation, {"client_id": "b"})
        assert (first.wid.seqno, second.wid.seqno, other.wid.seqno) == (1, 2, 1)


class TestReadDemandPath:
    def test_primary_never_needs_fetch(self):
        _, _, site = build()
        engine = site.create_server("server").engine
        entry = engine.reads.make_waiting(
            "space", None,
            MarshalledInvocation("read_page", ("ghost.html",)), {},
        )
        assert engine.reads.keys_needing_fetch(entry) == []

    def test_cache_reports_missing_and_invalid_keys(self):
        sim, _, site = build()
        site.create_server("server")
        cache_engine = site.create_cache("cache").engine
        entry = cache_engine.reads.make_waiting(
            "space", None,
            MarshalledInvocation("read_page", ("index.html",)), {},
        )
        assert cache_engine.reads.keys_needing_fetch(entry) == ["index.html"]
        # Absent-marked keys are excluded: the semantics error is final.
        entry.absent.add("index.html")
        assert cache_engine.reads.keys_needing_fetch(entry) == []

    def test_served_version_merges_per_key_freshness(self):
        sim, _, site = build()
        engine = site.create_server("server").engine
        client = site.bind_browser("c-space", "m", read_store="server")
        from tests.conftest import resolve

        resolve(sim, client.write_page("index.html", "v1"))
        served = engine.reads.served_version(("index.html",))
        assert served.as_dict() == {"m": 1}

    def test_demand_at_primary_is_a_no_op(self):
        _, _, site = build()
        engine = site.create_server("server").engine
        engine.reads.demand()
        assert engine.counters["tx:demand"] == 0

    def test_demand_coalesces_while_inflight(self):
        sim, _, site = build()
        site.create_server("server")
        cache_engine = site.create_cache("cache").engine
        cache_engine.reads.demand()
        cache_engine.reads.demand()  # inflight: queued, not sent
        assert cache_engine.counters["tx:demand"] == 1
        sim.run_until_idle()
        # The queued round fires after the first reply lands.
        assert cache_engine.counters["tx:demand"] == 2


class TestPropagationStrategy:
    def test_aggregate_keeps_only_last_write_per_key_under_fifo(self):
        policy = ReplicationPolicy(model=CoherenceModel.FIFO)
        _, _, site = build(policy=policy)
        engine = site.create_server("server").engine
        records = [write_record(seqno=1), write_record(seqno=2),
                   write_record(seqno=3, page="other.html")]
        for record in records:
            engine.writes.stamp(record)
        aggregated = engine.propagation.aggregate(records)
        assert [r.wid.seqno for r in aggregated] == [2, 3]

    def test_aggregate_preserves_order_sensitive_models(self):
        _, _, site = build()  # PRAM: every write matters
        engine = site.create_server("server").engine
        records = [write_record(seqno=1), write_record(seqno=2)]
        for record in records:
            engine.writes.stamp(record)
        assert engine.propagation.aggregate(records) == records

    def test_lazy_instant_buffers_until_flush(self):
        policy = ReplicationPolicy(transfer_instant=TransferInstant.LAZY,
                                   lazy_interval=2.0)
        sim, _, site = build(policy=policy, writer="m")
        server = site.create_server("server")
        site.create_cache("cache")
        client = site.bind_browser("c-space", "m", read_store="server")
        from tests.conftest import settle

        settle(sim, client.write_page("index.html", "v1"))
        assert len(server.engine.propagation.pending_lazy) == 1
        assert server.engine.counters["tx:update"] == 0
        sim.run(until=sim.now + 2.5)
        assert server.engine.propagation.pending_lazy == []
        assert server.engine.counters["tx:update_full"] == 1

    def test_pull_initiative_never_pushes(self):
        policy = ReplicationPolicy(
            transfer_initiative=TransferInitiative.PULL,
            transfer_instant=TransferInstant.LAZY,
            lazy_interval=60.0,
        )
        sim, _, site = build(policy=policy, writer="m")
        server = site.create_server("server")
        site.create_cache("cache")
        client = site.bind_browser("c-space", "m", read_store="server")
        from tests.conftest import resolve

        resolve(sim, client.write_page("index.html", "v1"))
        assert server.engine.counters["tx:update"] == 0
        assert server.engine.counters["tx:update_full"] == 0


class TestCoherenceEmitter:
    def emit(self, policy, n_children=2):
        sim, _, site = build(policy=policy, writer="m")
        server = site.create_server("server")
        for index in range(n_children):
            site.create_cache(f"cache-{index}")
        client = site.bind_browser("c-space", "m", read_store="server")
        from tests.conftest import resolve

        resolve(sim, client.write_page("index.html", "v1"))
        return server.engine

    def test_notification_transfer_sends_notify(self):
        engine = self.emit(ReplicationPolicy(
            coherence_transfer=CoherenceTransfer.NOTIFICATION))
        assert engine.counters["tx:notify"] == 2
        assert engine.counters["tx:update"] == 0

    def test_invalidate_partial_names_touched_keys(self):
        engine = self.emit(ReplicationPolicy(
            propagation=Propagation.INVALIDATE,
            coherence_transfer=CoherenceTransfer.PARTIAL))
        assert engine.counters["tx:invalidate"] == 2

    def test_full_transfer_ships_snapshots(self):
        engine = self.emit(ReplicationPolicy(
            coherence_transfer=CoherenceTransfer.FULL))
        assert engine.counters["tx:update_full"] == 2
        body = engine.emission.snapshot_body()
        assert set(body) == {"state", "version"}
        assert "index.html" in body["state"]

    def test_partial_update_ships_record_batches(self):
        engine = self.emit(ReplicationPolicy(
            coherence_transfer=CoherenceTransfer.PARTIAL))
        assert engine.counters["tx:update"] == 2

    def test_sequential_snapshot_carries_sequencer_state(self):
        engine = self.emit(ReplicationPolicy(
            model=CoherenceModel.SEQUENTIAL,
            coherence_transfer=CoherenceTransfer.FULL))
        assert "next_global" in engine.emission.snapshot_body()


class TestFacadeSurface:
    def test_compat_delegators_still_work(self):
        sim, _, site = build()
        site.create_server("server")
        cache = site.create_cache("cache")
        cache.sync_full()  # engine.reads.demand under the hood
        sim.run_until_idle()
        assert cache.engine.counters["tx:demand"] == 1
        assert cache.state()["index.html"]["content"] == "seed"


class _RecordingControl:
    """Minimal control stub: captures requests, never replies."""

    def __init__(self):
        self.requests = []

    def now(self):
        return 0.0

    def request(self, dst, message, timeout=None, retries=0):
        from repro.sim.future import Future

        self.requests.append((dst, message))
        return Future()


class TestReadRequestSizing:
    """The client assembles read-request sizes from cached parts; the
    arithmetic must equal a fresh ``estimate_size`` walk over the body."""

    def _client(self, **kwargs):
        from repro.coherence.models import SessionGuarantee
        from repro.replication.client import ClientReplicationObject

        client = ClientReplicationObject(
            "c1", read_store="cache",
            guarantees={SessionGuarantee.READ_YOUR_WRITES,
                        SessionGuarantee.MONOTONIC_READS},
            **kwargs,
        )
        client.attach(_RecordingControl())
        return client

    def _sent_message(self, client):
        return client.control.requests[-1][1]

    def assert_size_pinned(self, message):
        from repro.comm.message import envelope_cost, estimate_size

        walked = envelope_cost(message.kind) + estimate_size(message.body)
        assert message.payload_size() == walked

    def test_plain_read_size_matches_walk(self):
        client = self._client()
        invocation = MarshalledInvocation("read_page", ("index.html",))
        client.handle_invocation(invocation)
        self.assert_size_pinned(self._sent_message(client))

    def test_weighted_read_size_matches_walk(self):
        client = self._client()
        invocation = MarshalledInvocation("read_page", ("index.html",))
        client.handle_invocation(invocation, weight=25)
        message = self._sent_message(client)
        assert message.body["weight"] == 25
        self.assert_size_pinned(message)

    def test_size_tracks_session_growth(self):
        # After observing reads/writes the session wire dict grows; the
        # cached-parts arithmetic must track it exactly.
        from repro.coherence.vector_clock import VectorClock

        client = self._client()
        client.session.observe_write(client.session.mint_wid(), "cache")
        client.session.observe_read(VectorClock({"w": 3, "c1": 1}))
        invocation = MarshalledInvocation("read_page", ("a.html",))
        client.handle_invocation(invocation)
        self.assert_size_pinned(self._sent_message(client))

    def test_repeat_reads_share_cached_encoding(self):
        client = self._client()
        invocation = MarshalledInvocation("read_page", ("index.html",))
        client.handle_invocation(invocation)
        first = self._sent_message(client).body["invocation"]
        client.handle_invocation(
            MarshalledInvocation("read_page", ("index.html",)))
        second = self._sent_message(client).body["invocation"]
        assert second is first  # shared by reference, equal by value
        self.assert_size_pinned(self._sent_message(client))

    def test_unhashable_args_fall_back_to_uncached(self):
        client = self._client()
        invocation = MarshalledInvocation("read_page", (["list-arg"],))
        client.handle_invocation(invocation)
        self.assert_size_pinned(self._sent_message(client))
        assert not client._read_encodings
