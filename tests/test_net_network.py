"""Unit tests for the datagram network: delivery, FIFO, loss, partitions."""

import pytest

from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network, NodeNotRegistered
from repro.sim.kernel import Simulator


def make_net(sim, latency=None, loss_rate=0.0):
    return Network(sim, latency=latency or ConstantLatency(0.05),
                   loss_rate=loss_rate)


def collector(received):
    def handler(src, payload, size):
        received.append((src, payload, size))
    return handler


def test_basic_delivery_with_latency():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.send("a", "b", "hello", size_bytes=10)
    sim.run_until_idle()
    assert received == [("a", "hello", 10)]
    assert sim.now == pytest.approx(0.05)


def test_send_from_unregistered_node_rejected():
    sim = Simulator()
    net = make_net(sim)
    net.register("b", collector([]))
    with pytest.raises(NodeNotRegistered):
        net.send("ghost", "b", "x")


def test_send_to_unregistered_node_counted_as_dropped():
    sim = Simulator()
    net = make_net(sim)
    net.register("a", collector([]))
    net.send("a", "nobody", "x")
    sim.run_until_idle()
    assert net.stats.datagrams_dropped_unregistered == 1
    assert net.stats.datagrams_delivered == 0


def test_reliable_is_fifo_per_pair_despite_jitter():
    sim = Simulator(seed=3)
    # High jitter would reorder datagrams; the reliable class must not.
    net = make_net(sim, latency=UniformLatency(0.01, 0.5, sim.rng.fork("lat")))
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    for index in range(20):
        net.send("a", "b", index, reliable=True)
    sim.run_until_idle()
    assert [payload for _, payload, _ in received] == list(range(20))


def test_unreliable_can_reorder():
    sim = Simulator(seed=5)
    net = make_net(sim, latency=UniformLatency(0.01, 0.5, sim.rng.fork("lat")))
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    for index in range(20):
        net.send("a", "b", index, reliable=False)
    sim.run_until_idle()
    order = [payload for _, payload, _ in received]
    assert sorted(order) == list(range(20))
    assert order != list(range(20)), "jittered UDP should reorder"


def test_loss_applies_only_to_unreliable():
    sim = Simulator(seed=1)
    net = make_net(sim, loss_rate=0.5)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    for _ in range(100):
        net.send("a", "b", "r", reliable=True)
    for _ in range(100):
        net.send("a", "b", "u", reliable=False)
    sim.run_until_idle()
    reliable = sum(1 for _, p, _ in received if p == "r")
    unreliable = sum(1 for _, p, _ in received if p == "u")
    assert reliable == 100
    assert 20 < unreliable < 80
    assert net.stats.datagrams_dropped_loss == 100 - unreliable


def test_invalid_loss_rate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, loss_rate=1.0)


def test_partition_blocks_and_heal_flushes_reliable():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.partition(["a"], ["b"])
    net.send("a", "b", "queued", reliable=True)
    net.send("a", "b", "lost", reliable=False)
    sim.run_until_idle()
    assert received == []
    assert net.stats.datagrams_dropped_partition == 1
    net.heal()
    sim.run_until_idle()
    assert [p for _, p, _ in received] == ["queued"]


def test_heal_flush_is_deterministic_send_order():
    sim = Simulator()
    net = make_net(sim)
    received = []
    for name in "abcd":
        net.register(name, collector(received))
    net.partition(["a", "b"], ["c", "d"])
    # Interleave pairs; the flush must replay exactly this send order.
    sends = [("a", "c", 0), ("b", "d", 1), ("a", "d", 2), ("b", "c", 3),
             ("a", "c", 4)]
    for src, dst, payload in sends:
        net.send(src, dst, payload, reliable=True)
    sim.run_until_idle()
    assert received == []
    net.heal()
    sim.run_until_idle()
    assert [p for _, p, _ in received] == [0, 1, 2, 3, 4]


def test_partial_heal_flushes_only_reconnected_pairs():
    sim = Simulator()
    net = make_net(sim)
    received = []
    for name in "abc":
        net.register(name, collector(received))
    net.partition(["a"], ["b"])
    net.partition(["a"], ["c"])
    net.send("a", "b", "to-b", reliable=True)
    net.send("a", "c", "to-c", reliable=True)
    net.heal(["a"], ["b"])
    sim.run_until_idle()
    assert [p for _, p, _ in received] == ["to-b"]
    assert net.partitioned("a", "c")
    net.heal()
    sim.run_until_idle()
    assert [p for _, p, _ in received] == ["to-b", "to-c"]


def test_partial_heal_is_orientation_insensitive_and_validated():
    sim = Simulator()
    net = make_net(sim)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.partition(["a"], ["b"])
    net.heal(["b"], ["a"])  # reversed sides still match
    assert not net.partitioned("a", "b")
    with pytest.raises(ValueError, match="no partition"):
        net.heal(["a"], ["b"])
    with pytest.raises(ValueError, match="both sides"):
        net.heal(side_a=["a"])


def test_unreliable_drop_counting_during_partition():
    sim = Simulator()
    net = make_net(sim, loss_rate=0.5)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.partition(["a"], ["b"])
    for _ in range(10):
        net.send("a", "b", "u", reliable=False)
    sim.run_until_idle()
    # Partition drops are counted as such -- never attributed to loss,
    # and never consuming a loss-RNG draw.
    assert net.stats.datagrams_dropped_partition == 10
    assert net.stats.datagrams_dropped_loss == 0
    assert received == []


def test_overlapping_partition_membership():
    sim = Simulator()
    net = make_net(sim)
    for name in "abcd":
        net.register(name, collector([]))
    net.partition(["a", "b"], ["c"])
    net.partition(["a"], ["c", "d"])
    assert net.partitioned("b", "c")      # first cut
    assert net.partitioned("a", "d")      # second cut
    assert not net.partitioned("b", "d")  # no cut separates these
    net.heal(["a", "b"], ["c"])
    assert net.partitioned("a", "c")      # second cut still separates
    assert not net.partitioned("b", "c")


def test_crash_drops_traffic_and_queued_entries():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.partition(["a"], ["b"])
    net.send("a", "b", "queued", reliable=True)
    net.crash_node("b")  # drops the queued entry too
    assert net.stats.datagrams_dropped_crashed == 1
    net.send("a", "b", "while-down", reliable=True)
    assert net.stats.datagrams_dropped_crashed == 2
    net.heal()
    sim.run_until_idle()
    assert received == []
    net.restart_node("b")
    net.send("a", "b", "after-restart", reliable=True)
    sim.run_until_idle()
    assert [p for _, p, _ in received] == ["after-restart"]


def test_crash_drops_in_flight_datagrams():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.send("a", "b", "in-flight", reliable=True)
    net.crash_node("b")  # dies before the 0.05s delivery fires
    sim.run_until_idle()
    assert received == []
    assert net.stats.datagrams_dropped_crashed == 1


def test_partitioned_is_symmetric():
    sim = Simulator()
    net = make_net(sim)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.partition(["a"], ["b"])
    assert net.partitioned("a", "b")
    assert net.partitioned("b", "a")
    assert not net.partitioned("a", "a")


def test_multicast_skips_sender():
    sim = Simulator()
    net = make_net(sim)
    boxes = {name: [] for name in "abc"}
    for name in "abc":
        net.register(name, collector(boxes[name]))
    net.multicast("a", ["a", "b", "c"], "note")
    sim.run_until_idle()
    assert boxes["a"] == []
    assert len(boxes["b"]) == 1 and len(boxes["c"]) == 1


def test_byte_accounting():
    sim = Simulator()
    net = make_net(sim)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", "x", size_bytes=100)
    net.send("a", "b", "y", size_bytes=50)
    sim.run_until_idle()
    assert net.stats.bytes_sent == 150
    assert net.stats.bytes_delivered == 150


def test_unregister_stops_delivery():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.send("a", "b", "one")
    net.unregister("b")
    sim.run_until_idle()
    assert received == []


# -- fast-lane parity: multicast vs a loop of sends ---------------------------


def _fanout_build(seed=11, latency=None):
    """A network with one sender, three receivers and one dead address."""
    sim = Simulator(seed=seed)
    net = make_net(sim, latency=latency)
    boxes = {name: [] for name in "abcd"}
    for name in "abcd":
        net.register(name, collector(boxes[name]))
    net.unregister("d")  # a destination that drops as unregistered
    return sim, net, boxes


def _fanout_drive(sim, net, use_multicast, reliable):
    dsts = ["a", "b", "c", "d"]
    for round_no in range(5):
        if use_multicast:
            net.multicast("a", dsts, ("note", round_no), size_bytes=40,
                          reliable=reliable)
        else:
            for dst in dsts:
                if dst != "a":
                    net.send("a", dst, ("note", round_no), size_bytes=40,
                             reliable=reliable)
    sim.run_until_idle()


@pytest.mark.parametrize("reliable", [True, False])
def test_multicast_equals_loop_of_sends(reliable):
    # Same seed, same latency jitter: the batched fast lane must produce
    # the identical stats, delivery schedule and FIFO clamps as the
    # equivalent loop of unicast sends.
    results = []
    for use_multicast in (False, True):
        sim, net, boxes = _fanout_build()
        if not reliable:
            net.latency = UniformLatency(0.01, 0.5, sim.rng.fork("lat"))
        _fanout_drive(sim, net, use_multicast, reliable)
        results.append((net.stats.as_dict(), boxes, sim.now,
                        dict(net._fifo_clock)))
    assert results[0] == results[1]


def test_multicast_equals_loop_of_sends_traced():
    # With a tracer installed both paths take the per-destination
    # reference lane; the traced event streams must coincide exactly.
    from repro.obs import tracer as obs

    streams = []
    for use_multicast in (False, True):
        sim, net, boxes = _fanout_build()
        recorder = obs.RecordingTracer()
        obs.install(recorder)
        try:
            _fanout_drive(sim, net, use_multicast, reliable=True)
        finally:
            obs.uninstall()
        net_events = [e for e in recorder.events
                      if e["kind"].startswith("net.")]
        streams.append((net_events, net.stats.as_dict(), boxes))
    assert streams[0] == streams[1]


def test_multicast_unregistered_source_rejected():
    sim, net, _ = _fanout_build()
    with pytest.raises(NodeNotRegistered):
        net.multicast("ghost", ["a", "b"], "x")


def test_multicast_to_only_self_is_a_noop():
    sim, net, _ = _fanout_build()
    net.multicast("a", ["a"], "x", size_bytes=10)
    assert net.stats.datagrams_sent == 0
    assert net.stats.bytes_sent == 0


# -- FIFO clamp under the per-pair latency memo -------------------------------


def test_fifo_clamp_with_memoized_latency():
    # ConstantLatency is memoized per pair; back-to-back reliable sends
    # at the same instant must still be clamped into FIFO order (each
    # arrival lands no earlier than its predecessor's).
    sim = Simulator()
    net = make_net(sim, latency=ConstantLatency(0.05))
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    for index in range(10):
        net.send("a", "b", index, reliable=True)
    assert net._delay_cache  # the memo actually engaged
    sim.run_until_idle()
    assert [payload for _, payload, _ in received] == list(range(10))


def test_fifo_clamp_survives_heal_flush_with_memoized_latency():
    # Datagrams queued behind a partition flush on heal; the flushed
    # stream and everything sent after it must stay FIFO per pair even
    # though every delay now comes from the per-pair memo.
    sim = Simulator()
    net = make_net(sim, latency=ConstantLatency(0.05))
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.send("a", "b", "before")
    net.partition(["a"], ["b"])
    for index in range(3):
        net.send("a", "b", ("queued", index), reliable=True)
    sim.run(until=1.0)
    net.heal()
    net.send("a", "b", "after", reliable=True)
    sim.run_until_idle()
    payloads = [payload for _, payload, _ in received]
    assert payloads == ["before", ("queued", 0), ("queued", 1),
                        ("queued", 2), "after"]
    # Arrival times were monotone (the clamp held across the flush).
    clamp = net._fifo_clock[("a", "b")]
    assert clamp >= 1.0 + 0.05
