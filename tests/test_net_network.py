"""Unit tests for the datagram network: delivery, FIFO, loss, partitions."""

import pytest

from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network, NodeNotRegistered
from repro.sim.kernel import Simulator


def make_net(sim, latency=None, loss_rate=0.0):
    return Network(sim, latency=latency or ConstantLatency(0.05),
                   loss_rate=loss_rate)


def collector(received):
    def handler(src, payload, size):
        received.append((src, payload, size))
    return handler


def test_basic_delivery_with_latency():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.send("a", "b", "hello", size_bytes=10)
    sim.run_until_idle()
    assert received == [("a", "hello", 10)]
    assert sim.now == pytest.approx(0.05)


def test_send_from_unregistered_node_rejected():
    sim = Simulator()
    net = make_net(sim)
    net.register("b", collector([]))
    with pytest.raises(NodeNotRegistered):
        net.send("ghost", "b", "x")


def test_send_to_unregistered_node_counted_as_dropped():
    sim = Simulator()
    net = make_net(sim)
    net.register("a", collector([]))
    net.send("a", "nobody", "x")
    sim.run_until_idle()
    assert net.stats.datagrams_dropped_unregistered == 1
    assert net.stats.datagrams_delivered == 0


def test_reliable_is_fifo_per_pair_despite_jitter():
    sim = Simulator(seed=3)
    # High jitter would reorder datagrams; the reliable class must not.
    net = make_net(sim, latency=UniformLatency(0.01, 0.5, sim.rng.fork("lat")))
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    for index in range(20):
        net.send("a", "b", index, reliable=True)
    sim.run_until_idle()
    assert [payload for _, payload, _ in received] == list(range(20))


def test_unreliable_can_reorder():
    sim = Simulator(seed=5)
    net = make_net(sim, latency=UniformLatency(0.01, 0.5, sim.rng.fork("lat")))
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    for index in range(20):
        net.send("a", "b", index, reliable=False)
    sim.run_until_idle()
    order = [payload for _, payload, _ in received]
    assert sorted(order) == list(range(20))
    assert order != list(range(20)), "jittered UDP should reorder"


def test_loss_applies_only_to_unreliable():
    sim = Simulator(seed=1)
    net = make_net(sim, loss_rate=0.5)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    for _ in range(100):
        net.send("a", "b", "r", reliable=True)
    for _ in range(100):
        net.send("a", "b", "u", reliable=False)
    sim.run_until_idle()
    reliable = sum(1 for _, p, _ in received if p == "r")
    unreliable = sum(1 for _, p, _ in received if p == "u")
    assert reliable == 100
    assert 20 < unreliable < 80
    assert net.stats.datagrams_dropped_loss == 100 - unreliable


def test_invalid_loss_rate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, loss_rate=1.0)


def test_partition_blocks_and_heal_flushes_reliable():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.partition(["a"], ["b"])
    net.send("a", "b", "queued", reliable=True)
    net.send("a", "b", "lost", reliable=False)
    sim.run_until_idle()
    assert received == []
    assert net.stats.datagrams_dropped_partition == 1
    net.heal()
    sim.run_until_idle()
    assert [p for _, p, _ in received] == ["queued"]


def test_heal_flush_is_deterministic_send_order():
    sim = Simulator()
    net = make_net(sim)
    received = []
    for name in "abcd":
        net.register(name, collector(received))
    net.partition(["a", "b"], ["c", "d"])
    # Interleave pairs; the flush must replay exactly this send order.
    sends = [("a", "c", 0), ("b", "d", 1), ("a", "d", 2), ("b", "c", 3),
             ("a", "c", 4)]
    for src, dst, payload in sends:
        net.send(src, dst, payload, reliable=True)
    sim.run_until_idle()
    assert received == []
    net.heal()
    sim.run_until_idle()
    assert [p for _, p, _ in received] == [0, 1, 2, 3, 4]


def test_partial_heal_flushes_only_reconnected_pairs():
    sim = Simulator()
    net = make_net(sim)
    received = []
    for name in "abc":
        net.register(name, collector(received))
    net.partition(["a"], ["b"])
    net.partition(["a"], ["c"])
    net.send("a", "b", "to-b", reliable=True)
    net.send("a", "c", "to-c", reliable=True)
    net.heal(["a"], ["b"])
    sim.run_until_idle()
    assert [p for _, p, _ in received] == ["to-b"]
    assert net.partitioned("a", "c")
    net.heal()
    sim.run_until_idle()
    assert [p for _, p, _ in received] == ["to-b", "to-c"]


def test_partial_heal_is_orientation_insensitive_and_validated():
    sim = Simulator()
    net = make_net(sim)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.partition(["a"], ["b"])
    net.heal(["b"], ["a"])  # reversed sides still match
    assert not net.partitioned("a", "b")
    with pytest.raises(ValueError, match="no partition"):
        net.heal(["a"], ["b"])
    with pytest.raises(ValueError, match="both sides"):
        net.heal(side_a=["a"])


def test_unreliable_drop_counting_during_partition():
    sim = Simulator()
    net = make_net(sim, loss_rate=0.5)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.partition(["a"], ["b"])
    for _ in range(10):
        net.send("a", "b", "u", reliable=False)
    sim.run_until_idle()
    # Partition drops are counted as such -- never attributed to loss,
    # and never consuming a loss-RNG draw.
    assert net.stats.datagrams_dropped_partition == 10
    assert net.stats.datagrams_dropped_loss == 0
    assert received == []


def test_overlapping_partition_membership():
    sim = Simulator()
    net = make_net(sim)
    for name in "abcd":
        net.register(name, collector([]))
    net.partition(["a", "b"], ["c"])
    net.partition(["a"], ["c", "d"])
    assert net.partitioned("b", "c")      # first cut
    assert net.partitioned("a", "d")      # second cut
    assert not net.partitioned("b", "d")  # no cut separates these
    net.heal(["a", "b"], ["c"])
    assert net.partitioned("a", "c")      # second cut still separates
    assert not net.partitioned("b", "c")


def test_crash_drops_traffic_and_queued_entries():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.partition(["a"], ["b"])
    net.send("a", "b", "queued", reliable=True)
    net.crash_node("b")  # drops the queued entry too
    assert net.stats.datagrams_dropped_crashed == 1
    net.send("a", "b", "while-down", reliable=True)
    assert net.stats.datagrams_dropped_crashed == 2
    net.heal()
    sim.run_until_idle()
    assert received == []
    net.restart_node("b")
    net.send("a", "b", "after-restart", reliable=True)
    sim.run_until_idle()
    assert [p for _, p, _ in received] == ["after-restart"]


def test_crash_drops_in_flight_datagrams():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.send("a", "b", "in-flight", reliable=True)
    net.crash_node("b")  # dies before the 0.05s delivery fires
    sim.run_until_idle()
    assert received == []
    assert net.stats.datagrams_dropped_crashed == 1


def test_partitioned_is_symmetric():
    sim = Simulator()
    net = make_net(sim)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.partition(["a"], ["b"])
    assert net.partitioned("a", "b")
    assert net.partitioned("b", "a")
    assert not net.partitioned("a", "a")


def test_multicast_skips_sender():
    sim = Simulator()
    net = make_net(sim)
    boxes = {name: [] for name in "abc"}
    for name in "abc":
        net.register(name, collector(boxes[name]))
    net.multicast("a", ["a", "b", "c"], "note")
    sim.run_until_idle()
    assert boxes["a"] == []
    assert len(boxes["b"]) == 1 and len(boxes["c"]) == 1


def test_byte_accounting():
    sim = Simulator()
    net = make_net(sim)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", "x", size_bytes=100)
    net.send("a", "b", "y", size_bytes=50)
    sim.run_until_idle()
    assert net.stats.bytes_sent == 150
    assert net.stats.bytes_delivered == 150


def test_unregister_stops_delivery():
    sim = Simulator()
    net = make_net(sim)
    received = []
    net.register("a", collector([]))
    net.register("b", collector(received))
    net.send("a", "b", "one")
    net.unregister("b")
    sim.run_until_idle()
    assert received == []
