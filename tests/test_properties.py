"""System-level property tests: random workloads under each model keep the
model's invariants, checked by the trace checkers."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coherence import checkers
from repro.coherence.models import CoherenceModel
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.replication.policy import (
    CoherenceTransfer,
    ReplicationPolicy,
    WriteSet,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Delay, Process, WaitFor
from repro.web.webobject import WebObject

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ops = st.lists(
    st.tuples(
        st.sampled_from(["w0", "w1"]),        # which writer
        st.sampled_from(["p1", "p2"]),        # which page
        st.floats(0.02, 0.4),                 # think time
    ),
    min_size=1,
    max_size=12,
)


def run_random_workload(model, op_list, seed):
    sim = Simulator(seed=seed)
    latency = UniformLatency(0.01, 0.15, sim.rng.fork("net"))
    net = Network(sim, latency=latency)
    policy = ReplicationPolicy(
        model=model,
        write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    site = WebObject(sim, net, policy=policy,
                     pages={"p1": "a", "p2": "b"}, designated_writer=None)
    site.create_server("server")
    site.create_cache("cache-0")
    site.create_cache("cache-1")
    writers = {
        "w0": site.bind_browser("s0", "w0", read_store="cache-0",
                                write_store="server"),
        "w1": site.bind_browser("s1", "w1", read_store="cache-1",
                                write_store="server"),
    }

    def script(writer_id):
        for index, (who, page, think) in enumerate(op_list):
            if who != writer_id:
                continue
            yield Delay(think)
            yield WaitFor(
                writers[writer_id].append_to_page(page, f"[{writer_id}:{index}]")
            )

    Process(sim, script("w0"), "w0")
    Process(sim, script("w1"), "w1")
    sim.run_until_idle()
    sim.run(until=sim.now + 15.0)
    return site


@SLOW
@given(ops, st.integers(0, 10_000))
def test_pram_invariant_under_random_workloads(op_list, seed):
    site = run_random_workload(CoherenceModel.PRAM, op_list, seed)
    assert checkers.check_pram(site.trace) == []
    assert checkers.check_eventual_delivery(site.trace) == []


@SLOW
@given(ops, st.integers(0, 10_000))
def test_sequential_invariant_under_random_workloads(op_list, seed):
    site = run_random_workload(CoherenceModel.SEQUENTIAL, op_list, seed)
    assert checkers.check_sequential(site.trace) == []
    # Sequential implies PRAM.
    assert checkers.check_pram(site.trace) == []


@SLOW
@given(ops, st.integers(0, 10_000))
def test_fifo_invariant_under_random_workloads(op_list, seed):
    site = run_random_workload(CoherenceModel.FIFO, op_list, seed)
    assert checkers.check_fifo(site.trace) == []


@SLOW
@given(ops, st.integers(0, 10_000))
def test_eventual_delivery_under_random_workloads(op_list, seed):
    site = run_random_workload(CoherenceModel.EVENTUAL, op_list, seed)
    assert checkers.check_eventual_delivery(site.trace) == []
