"""Tests for workload generation, the name service and hierarchy views."""

import pytest

from repro.naming.service import NameService, UnknownObject
from repro.net.latency import RegionalLatency
from repro.replication.policy import ReplicationPolicy
from repro.sim.rng import SeededRng
from repro.stores.hierarchy import describe_hierarchy
from repro.workload.generator import (
    ReaderWorkload,
    WriterWorkload,
    ZipfPagePicker,
    drive,
)
from repro.workload.scenarios import build_tree, conference_deployment


class TestNameService:
    def test_register_resolve(self):
        ns = NameService()
        ns.register("obj", "server")
        ns.register("obj", "mirror")
        assert ns.resolve("obj") == ["server", "mirror"]

    def test_register_idempotent(self):
        ns = NameService()
        ns.register("obj", "server")
        ns.register("obj", "server")
        assert ns.resolve("obj") == ["server"]

    def test_unknown_object(self):
        with pytest.raises(UnknownObject):
            NameService().resolve("ghost")

    def test_unregister(self):
        ns = NameService()
        ns.register("obj", "a")
        ns.unregister("obj", "a")
        with pytest.raises(UnknownObject):
            ns.resolve("obj")

    def test_nearest_uses_latency_model(self):
        ns = NameService()
        ns.register("obj", "far")
        ns.register("obj", "near")
        latency = RegionalLatency(
            node_region={"client": "us", "far": "eu", "near": "us"},
            region_latency={("us", "eu"): 0.1},
            intra_region=0.001, jitter_fraction=0.0,
        )
        assert ns.nearest("obj", "client", latency) == "near"

    def test_nearest_without_model_is_first(self):
        ns = NameService()
        ns.register("obj", "first")
        ns.register("obj", "second")
        assert ns.nearest("obj", "anywhere") == "first"


class TestZipfPicker:
    def test_empty_pages_rejected(self):
        with pytest.raises(ValueError):
            ZipfPagePicker([], SeededRng(1))

    def test_rank_zero_most_popular(self):
        picker = ZipfPagePicker([f"p{i}" for i in range(5)], SeededRng(2))
        counts = {}
        for _ in range(2000):
            page = picker.pick()
            counts[page] = counts.get(page, 0) + 1
        assert max(counts, key=counts.get) == "p0"


class TestWorkloads:
    def test_reader_workload_runs_to_completion(self):
        deployment = build_tree(ReplicationPolicy(), n_caches=1, seed=4)
        reader = ReaderWorkload(
            deployment.browsers["reader-0-0"],
            pages=["index.html"],
            rng=deployment.sim.rng.fork("t"),
            mean_think=0.1,
            operations=5,
        )
        drive(deployment.sim, [reader])
        assert reader.stats.operations == 5
        assert reader.stats.errors == 0

    def test_reader_counts_not_found(self):
        deployment = build_tree(ReplicationPolicy(), n_caches=1, seed=4)
        reader = ReaderWorkload(
            deployment.browsers["reader-0-0"],
            pages=["ghost.html"],
            rng=deployment.sim.rng.fork("t"),
            mean_think=0.1,
            operations=3,
        )
        drive(deployment.sim, [reader])
        assert reader.stats.not_found == 3

    def test_writer_workload_incremental(self):
        deployment = build_tree(ReplicationPolicy(), n_caches=1, seed=4)
        writer = WriterWorkload(
            deployment.browsers["master"],
            pages=["index.html"],
            rng=deployment.sim.rng.fork("w"),
            interval=0.1,
            operations=4,
            incremental=True,
        )
        drive(deployment.sim, [writer])
        assert deployment.server.version() == {"master": 4}

    def test_same_seed_same_trace(self):
        def run(seed):
            deployment = build_tree(ReplicationPolicy(), n_caches=1, seed=seed)
            writer = WriterWorkload(
                deployment.browsers["master"], pages=["index.html"],
                rng=deployment.sim.rng.fork("w"), interval=0.5, operations=3,
            )
            drive(deployment.sim, [writer])
            return [
                (type(e).__name__, getattr(e, "store", None), e.time)
                for e in deployment.site.trace.events
            ]

        assert run(9) == run(9)
        assert run(9) != run(10)


class TestScenarios:
    def test_build_tree_shape(self):
        deployment = build_tree(ReplicationPolicy(), n_mirrors=2, n_caches=4,
                                n_readers_per_cache=2, seed=1)
        assert len(deployment.mirrors) == 2
        assert len(deployment.caches) == 4
        # master + 8 readers
        assert len(deployment.browsers) == 9
        # Caches hang under mirrors round-robin.
        assert deployment.caches[0].engine.parent == "mirror-0"
        assert deployment.caches[1].engine.parent == "mirror-1"

    def test_conference_deployment_matches_fig3(self):
        deployment = conference_deployment(seed=1)
        assert deployment.server.address == "server"
        assert len(deployment.caches) == 2
        assert set(deployment.browsers) == {"master", "user"}
        master = deployment.browsers["master"]
        assert master.bound.replication.write_store == "server"
        assert master.bound.replication.read_store == "cache-0"


class TestHierarchyView:
    def test_describe_and_depth(self):
        deployment = build_tree(ReplicationPolicy(), n_mirrors=1, n_caches=1,
                                seed=2)
        view = describe_hierarchy(deployment.site.dso)
        from repro.core.interfaces import Role
        assert [i.address for i in view.layer(Role.PERMANENT)] == ["server"]
        assert view.depth_of("server") == 0
        assert view.depth_of("mirror-0") == 1
        assert view.depth_of("cache-0") == 2

    def test_rows_render(self):
        deployment = build_tree(ReplicationPolicy(), n_caches=1, seed=2)
        view = describe_hierarchy(deployment.site.dso)
        rows = view.rows()
        assert any("permanent" in row[0] for row in rows)
        assert any("client-initiated" in row[0] for row in rows)
