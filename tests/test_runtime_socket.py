"""Unit and integration coverage for the socket runtime pieces.

The cross-backend behaviour (signatures, fault parity) is pinned by
``test_parity_sim_live.py`` and ``test_faults_socket.py``; this module
covers the runtime substrate itself: the registry's heartbeat liveness,
codec frames over a real socketpair, connect retry/backoff against a
late listener, checkpoint round-trips, and -- critically -- that a full
deployment teardown leaves no orphan or zombie node processes (checked
with plain ``os.kill(pid, 0)`` / ``os.waitpid``, no psutil).
"""

import json
import os
import socket
import struct
import threading
import time

import pytest

from repro.replication.policy import ReplicationPolicy
from repro.runtime.registry import Registry
from repro.runtime.wire import (
    FrameChannel,
    WireError,
    connect_with_backoff,
    format_address,
    listen,
    parse_address,
)
from repro.workload.scenarios import build_tree


class TestRegistry:
    """Liveness bookkeeping with injected clocks (no sleeping)."""

    def test_register_and_lookup(self):
        registry = Registry(ttl=1.0)
        entry = registry.register("cache-0", pid=4242, now=10.0, role="cache")
        assert registry.lookup("cache-0") is entry
        assert entry.pid == 4242
        assert entry.meta == {"role": "cache"}
        assert registry.lookup("nope") is None

    def test_reregister_replaces_entry(self):
        registry = Registry(ttl=1.0)
        registry.register("cache-0", pid=100, now=0.0)
        replacement = registry.register("cache-0", pid=200, now=5.0)
        assert registry.lookup("cache-0") is replacement
        assert registry.lookup("cache-0").pid == 200

    def test_beat_keeps_node_alive(self):
        registry = Registry(ttl=1.0)
        registry.register("server", pid=1, now=0.0)
        assert registry.alive("server", now=0.9)
        assert registry.beat("server", now=0.9)
        assert registry.alive("server", now=1.8)

    def test_silence_past_ttl_reads_dead(self):
        registry = Registry(ttl=1.0)
        registry.register("server", pid=1, now=0.0)
        assert not registry.alive("server", now=1.5)
        assert not registry.beat("unknown", now=0.0)
        assert not registry.alive("unknown", now=0.0)

    def test_expire_sweeps_only_stale_entries(self):
        registry = Registry(ttl=1.0)
        registry.register("server", pid=1, now=0.0)
        registry.register("cache-0", pid=2, now=0.0)
        registry.beat("server", now=2.0)
        assert registry.expire(now=2.5) == ["cache-0"]
        assert registry.names() == ["server"]
        assert registry.lookup("cache-0") is None

    def test_deregister_returns_entry(self):
        registry = Registry(ttl=1.0)
        registry.register("server", pid=1, now=0.0)
        assert registry.deregister("server").name == "server"
        assert registry.deregister("server") is None


class TestFrameChannel:
    """Codec frames over a real (socketpair) byte stream."""

    @pytest.fixture()
    def pair(self):
        left_sock, right_sock = socket.socketpair()
        left, right = FrameChannel(left_sock), FrameChannel(right_sock)
        yield left, right
        left.close()
        right.close()

    def test_round_trip_preserves_kind_and_body(self, pair):
        left, right = pair
        left.send("data", src="server", dst="cache-0",
                  payload={"keys": ["a", "b"], "blob": b"\x00\xff"},
                  size=17, reliable=True)
        kind, body = right.recv()
        assert kind == "data"
        assert body == {
            "src": "server", "dst": "cache-0",
            "payload": {"keys": ["a", "b"], "blob": b"\x00\xff"},
            "size": 17, "reliable": True,
        }

    def test_frames_arrive_in_send_order(self, pair):
        left, right = pair
        for index in range(20):
            left.send("heartbeat", node="server", index=index)
        received = [right.recv()[1]["index"] for _ in range(20)]
        assert received == list(range(20))

    def test_recv_returns_none_on_peer_close(self, pair):
        left, right = pair
        left.close()
        assert right.recv() is None

    def test_send_to_closed_peer_raises_wire_error(self, pair):
        left, right = pair
        right.close()
        with pytest.raises(WireError):
            for _ in range(64):  # first sends may land in the OS buffer
                left.send("heartbeat", node="server")

    def test_oversized_length_prefix_rejected(self, pair):
        left, right = pair
        left.sock.sendall(struct.pack(">I", 1 << 31))
        with pytest.raises(WireError):
            right.recv()

    def test_concurrent_senders_never_interleave_frames(self, pair):
        left, right = pair
        per_thread = 50

        def sender(tag):
            for index in range(per_thread):
                left.send("trace", tag=tag, index=index)

        threads = [
            threading.Thread(target=sender, args=(tag,)) for tag in range(4)
        ]
        for thread in threads:
            thread.start()
        seen = {tag: [] for tag in range(4)}
        for _ in range(4 * per_thread):
            _, body = right.recv()
            seen[body["tag"]].append(body["index"])
        for thread in threads:
            thread.join()
        # Frames may interleave across threads but never corrupt; each
        # sender's own frames keep their order.
        assert all(seen[tag] == list(range(per_thread)) for tag in seen)


class TestAddresses:
    def test_unix_and_tcp_round_trip(self):
        assert parse_address(format_address("/tmp/x/hub.sock")) == (
            "/tmp/x/hub.sock"
        )
        assert parse_address(format_address(("127.0.0.1", 4711))) == (
            "127.0.0.1", 4711,
        )

    def test_unparseable_address_raises(self):
        for bad in ("", "unix:", "tcp:nohost", "gopher:x"):
            with pytest.raises(ValueError):
                parse_address(bad)


class TestConnectWithBackoff:
    def test_retries_until_listener_appears(self, tmp_path):
        address = str(tmp_path / "late.sock")
        attempts = []
        accepted = []

        def late_listener():
            time.sleep(0.15)
            server = listen(address)
            conn, _ = server.accept()
            accepted.append(conn)
            server.close()

        thread = threading.Thread(target=late_listener)
        thread.start()
        sock = connect_with_backoff(
            address, timeout=5.0, base_delay=0.01, max_delay=0.05,
            on_attempt=attempts.append,
        )
        thread.join()
        try:
            assert len(attempts) > 1, "listener was late; expected retries"
            assert attempts == list(range(1, len(attempts) + 1))
            assert accepted, "the eventual connection must reach accept()"
        finally:
            sock.close()
            for conn in accepted:
                conn.close()

    def test_deadline_expiry_raises_wire_error(self, tmp_path):
        address = str(tmp_path / "never.sock")
        with pytest.raises(WireError):
            connect_with_backoff(address, timeout=0.2, base_delay=0.01)


class TestCheckpointRoundTrip:
    """Engine checkpoints are the node's crash-restart survival format."""

    def test_checkpoint_restores_version_and_counters(self):
        from repro.replication.engine import StoreReplicationObject

        deployment = build_tree(
            policy=ReplicationPolicy(),
            n_caches=1,
            n_readers_per_cache=1,
            pages={"index.html": "<h1>ckpt</h1>"},
            seed=3,
        )
        master = deployment.browsers["master"]
        for revision in range(2):
            future = deployment.call(
                master.write_page, "index.html", f"<h1>{revision}</h1>"
            )
            deployment.wait(future, timeout=10.0)
        deployment.settle()
        engine = deployment.server.engine
        checkpoint = engine.checkpoint()

        # The node encodes checkpoints with the wire codec; the round
        # trip through bytes must be lossless.
        from repro.exec.codec import decode_result, encode_result
        checkpoint = decode_result(encode_result(checkpoint))

        clone = StoreReplicationObject(
            policy=deployment.site.policy,
            role=engine.role,
            parent=None,
        )
        clone.restore(checkpoint)
        assert clone.version() == engine.version()
        assert clone.checkpoint() == engine.checkpoint()


class TestRunProfileOnLiveBackends:
    """The declarative workload driver on wall-clock substrates."""

    TINY = None  # built lazily to keep import-time side effects out

    @classmethod
    def tiny_profile(cls):
        from repro.workload.profiles import WorkloadProfile

        return WorkloadProfile(
            name="tiny", writes=2, reads_per_client=3,
            write_interval=0.2, read_think=0.1,
        )

    @pytest.mark.parametrize("backend", ["live", "live-socket"])
    def test_profile_runs_and_converges(self, backend):
        from repro.workload.profiles import run_profile

        deployment = run_profile(
            ReplicationPolicy(),
            self.tiny_profile(),
            n_caches=1,
            seed=11,
            pages={"a.html": "a" * 64, "b.html": "b" * 64},
            backend=backend,
            time_scale=0.05,
        )
        try:
            versions = {
                address: store.version()
                for address, store in deployment.site.dso.stores.items()
            }
            assert all(
                version == {"master": 2} for version in versions.values()
            ), versions
            states = deployment.site.store_states()
            assert len({json.dumps(s, sort_keys=True, default=str)
                        for s in states.values()}) == 1
        finally:
            deployment.shutdown()

    def test_virtual_time_features_rejected_on_live(self):
        from repro.transport.backend import BackendError
        from repro.workload.profiles import run_profile

        for kwargs in ({"horizon": 5.0}, {"fault_plan": "partition-heal"}):
            with pytest.raises(BackendError):
                run_profile(
                    ReplicationPolicy(), self.tiny_profile(),
                    n_caches=1, seed=1, backend="live", **kwargs,
                )


class TestSocketDeploymentLifecycle:
    """A real multi-process deployment: spawn, drive, tear down clean."""

    def test_stores_run_as_live_registered_processes(self):
        deployment = build_tree(
            policy=ReplicationPolicy(),
            n_caches=1,
            n_readers_per_cache=1,
            pages={"index.html": "<h1>proc</h1>"},
            seed=5,
            backend="live-socket",
        )
        try:
            hub = deployment.backend.hub
            store_names = sorted(deployment.site.dso.stores)
            assert hub.registry.names() == store_names
            pids = {name: hub.node_pid(name) for name in store_names}
            own_pid = os.getpid()
            for name, pid in pids.items():
                assert pid != own_pid, f"{name} must be a separate process"
                os.kill(pid, 0)  # raises if the process were gone
                assert hub.registry.alive(name, now=time.monotonic()), name
        finally:
            deployment.shutdown()

    def test_shutdown_leaves_no_orphans_or_zombies(self):
        deployment = build_tree(
            policy=ReplicationPolicy(),
            n_caches=2,
            n_readers_per_cache=1,
            pages={"index.html": "<h1>clean</h1>"},
            seed=5,
            backend="live-socket",
        )
        hub = deployment.backend.hub
        run_dir = hub.run_dir
        pids = {
            name: hub.node_pid(name)
            for name in sorted(deployment.site.dso.stores)
        }
        master = deployment.browsers["master"]
        future = deployment.call(master.write_page, "index.html", "<h1>x</h1>")
        deployment.wait(future, timeout=10.0)
        deployment.shutdown()
        for name, pid in pids.items():
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        # No zombies either: the supervisor already wait()ed on every
        # node, so a targeted waitpid has no child left to reap.
        for pid in pids.values():
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)
        assert not os.path.exists(run_dir), "hub must remove its run dir"
        assert hub.registry.names() == []
