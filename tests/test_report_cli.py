"""Tests for the ``python -m repro.report`` command-line driver."""

from repro.report.book import BOOK_NAME
from repro.report.cli import main


def test_list_catalogs_grids_and_metrics(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "table1-small" in out
    assert "stale_fraction" in out


def test_unknown_grid_rejected(capsys):
    assert main(["--grid", "nope"]) == 2
    assert "unknown grid" in capsys.readouterr().err


def test_unknown_metric_rejected(tmp_path, capsys):
    assert main(["--grid", "table1-small", "--metric", "nope",
                 "--out", str(tmp_path)]) == 2
    assert "unknown metrics" in capsys.readouterr().err


def test_generate_then_check_roundtrip(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    out = str(tmp_path / "book")
    assert main(["--grid", "table1-small", "--out", out,
                 "--cache-dir", cache]) == 0
    stdout = capsys.readouterr().out
    assert "0/16 points cached" in stdout
    assert f"wrote {out}" in stdout.replace("/RESULTS.md", "")
    # Second invocation is all cache hits and the artifacts are current.
    assert main(["--grid", "table1-small", "--out", out,
                 "--cache-dir", cache, "--check"]) == 0
    stdout = capsys.readouterr().out
    assert "16/16 points cached" in stdout
    assert "up to date" in stdout


def test_check_fails_on_stale_book(tmp_path, capsys):
    out = str(tmp_path / "book")
    assert main(["--grid", "table1-small", "--out", out]) == 0
    capsys.readouterr()
    (tmp_path / "book" / BOOK_NAME).write_text("stale\n")
    assert main(["--grid", "table1-small", "--out", out, "--check"]) == 1
    assert "stale generated docs" in capsys.readouterr().out


def test_metric_subset_renders_single_heatmap(tmp_path, capsys):
    out = tmp_path / "book"
    assert main(["--grid", "table1-small", "--metric", "wire_kb",
                 "--out", str(out)]) == 0
    svgs = list((out / "results" / "heatmaps").glob("**/*.svg"))
    assert [svg.name for svg in svgs] == ["wire_kb.svg"]
    assert svgs[0].parent.name == "table1-small"
    book = (out / BOOK_NAME).read_text()
    assert "Total wire traffic" in book
    assert "Stale read fraction" not in book


def test_check_rejects_metric_subset(tmp_path, capsys):
    assert main(["--grid", "table1-small", "--metric", "wire_kb",
                 "--out", str(tmp_path), "--check"]) == 2
    assert "cannot be combined" in capsys.readouterr().err


def test_check_does_not_flag_other_grids_heatmaps(tmp_path, capsys):
    # table1-small's heat maps live in their own subdirectory, so a
    # check of a grid whose name is a prefix (table1) must not see them.
    out = str(tmp_path)
    assert main(["--grid", "table1-small", "--out", out]) == 0
    assert main(["--grid", "table1-small", "--out", out, "--check"]) == 0
    capsys.readouterr()
    stray = tmp_path / "results" / "heatmaps" / "table1-small" / "old.svg"
    stray.write_text("<svg/>")
    assert main(["--grid", "table1-small", "--out", out, "--check"]) == 1
    assert "(orphaned)" in capsys.readouterr().out


def test_health_appendix_renders_from_manifest(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    out = tmp_path / "book"
    assert main(["--grid", "table1-small", "--out", str(out),
                 "--cache-dir", cache, "--health"]) == 0
    book = (out / BOOK_NAME).read_text()
    assert "## Run health" in book
    assert "points evaluated: 16 (0 cache hits, 16 computed, 0 failed)" \
        in book
    assert "Slowest computed points" in book


def test_health_rejected_with_check(tmp_path, capsys):
    assert main(["--grid", "table1-small", "--out", str(tmp_path),
                 "--cache-dir", str(tmp_path / "cache"),
                 "--health", "--check"]) == 2
    assert "drop --health" in capsys.readouterr().err


def test_health_requires_cache_dir(tmp_path, capsys):
    assert main(["--grid", "table1-small", "--out", str(tmp_path),
                 "--health"]) == 2
    assert "--cache-dir" in capsys.readouterr().err
