"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A constant-latency (10 ms) network on the fixture simulator."""
    return Network(sim, latency=ConstantLatency(0.01))


def resolve(sim: Simulator, future, horizon: float = 120.0):
    """Run the simulation until a future resolves; return its value."""
    sim.run_until_idle()
    if not future.done:
        sim.run(until=sim.now + horizon)
    assert future.done, "future did not resolve within the horizon"
    return future.result()


def settle(sim: Simulator, future, max_events: int = 100_000):
    """Step the simulation one event at a time until the future resolves.

    Unlike :func:`resolve`, this does not drain the queue, so pending
    timers (e.g. a lazy flush scheduled later) stay pending -- essential
    when a test asserts on the state *between* a write and its push.
    """
    steps = 0
    while not future.done:
        if not sim.step():
            break
        steps += 1
        assert steps < max_events, "future did not resolve"
    assert future.done, "future did not resolve before the queue drained"
    return future.result()
