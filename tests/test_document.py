"""Unit tests for the Web-document semantics object."""

import pytest
from hypothesis import given, strategies as st

from repro.comm.invocation import MarshalledInvocation
from repro.web.document import WebDocument
from repro.web.page import Page, PageNotFound


def inv(method, *args, read_only=True, **kwargs):
    return MarshalledInvocation(method, args,
                                tuple(sorted(kwargs.items())), read_only)


class TestPageOperations:
    def test_initial_pages_start_at_version_one(self):
        doc = WebDocument(pages={"a.html": "hello"})
        assert doc.read_page("a.html")["version"] == 1

    def test_write_creates_and_bumps_version(self):
        doc = WebDocument()
        doc.write_page("a.html", "v1")
        doc.write_page("a.html", "v2")
        page = doc.read_page("a.html")
        assert page["content"] == "v2"
        assert page["version"] == 2

    def test_read_missing_page_raises(self):
        with pytest.raises(PageNotFound):
            WebDocument().read_page("nope.html")

    def test_append_extends_content(self):
        doc = WebDocument(pages={"a.html": "base"})
        doc.append_to_page("a.html", "+more")
        assert doc.read_page("a.html")["content"] == "base+more"

    def test_append_to_missing_page_creates_it(self):
        doc = WebDocument()
        doc.append_to_page("a.html", "start")
        assert doc.read_page("a.html")["content"] == "start"

    def test_delete_removes_page(self):
        doc = WebDocument(pages={"a.html": "x"})
        doc.delete_page("a.html")
        with pytest.raises(PageNotFound):
            doc.read_page("a.html")

    def test_delete_missing_raises(self):
        with pytest.raises(PageNotFound):
            WebDocument().delete_page("nope.html")

    def test_list_pages_sorted(self):
        doc = WebDocument(pages={"b": "2", "a": "1"})
        assert doc.list_pages() == ["a", "b"]

    def test_clock_stamps_last_modified(self):
        times = iter([5.0, 9.0])
        doc = WebDocument(clock=lambda: next(times))
        doc.write_page("a", "x")
        assert doc.read_page("a")["last_modified"] == 5.0

    def test_total_size_counts_bytes(self):
        doc = WebDocument(pages={"a": "12345", "b": "678"})
        assert doc.total_size() == 8


class TestInvocationInterface:
    def test_apply_dispatches(self):
        doc = WebDocument()
        result = doc.apply(inv("write_page", "a", "hi", read_only=False))
        assert result == {"name": "a", "version": 1}
        assert doc.apply(inv("read_page", "a"))["content"] == "hi"

    def test_apply_kwargs(self):
        doc = WebDocument()
        doc.apply(inv("write_page", "a", "hi", read_only=False,
                      content_type="text/plain"))
        assert doc.read_page("a")["content_type"] == "text/plain"

    def test_apply_unknown_method_raises(self):
        with pytest.raises(AttributeError):
            WebDocument().apply(inv("drop_database"))

    def test_apply_private_method_blocked(self):
        with pytest.raises(AttributeError):
            WebDocument().apply(inv("_clock"))

    def test_touched_keys_page_methods(self):
        doc = WebDocument()
        assert doc.touched_keys(inv("read_page", "a")) == ("a",)
        assert doc.touched_keys(inv("write_page", "a", "x")) == ("a",)
        assert doc.touched_keys(inv("list_pages")) == ()

    def test_touched_keys_from_kwargs(self):
        doc = WebDocument()
        assert doc.touched_keys(
            MarshalledInvocation("read_page", (), (("name", "k"),))
        ) == ("k",)

    def test_missing_keys(self):
        doc = WebDocument(pages={"a": "x"})
        assert doc.missing_keys(["a", "b"]) == ("b",)

    def test_can_apply_delta_needs_base(self):
        doc = WebDocument()
        assert doc.can_apply(inv("write_page", "a", "x", read_only=False))
        assert not doc.can_apply(inv("append_to_page", "a", "x",
                                     read_only=False))
        doc.write_page("a", "base")
        assert doc.can_apply(inv("append_to_page", "a", "x",
                                 read_only=False))


class TestStateTransfer:
    def test_snapshot_restore_roundtrip(self):
        doc = WebDocument(pages={"a": "1", "b": "2"})
        doc.append_to_page("a", "+")
        replica = doc.fresh()
        replica.restore(doc.snapshot())
        assert replica.snapshot() == doc.snapshot()

    def test_partial_snapshot_only_requested(self):
        doc = WebDocument(pages={"a": "1", "b": "2"})
        partial = doc.partial_snapshot(["a", "ghost"])
        assert set(partial) == {"a"}

    def test_restore_partial_merges(self):
        doc = WebDocument(pages={"a": "old", "b": "keep"})
        doc.restore_partial({"a": Page("a", "new", version=7).to_dict()})
        assert doc.read_page("a")["content"] == "new"
        assert doc.read_page("b")["content"] == "keep"

    def test_fresh_is_empty_with_same_clock(self):
        doc = WebDocument(pages={"a": "1"}, clock=lambda: 3.0)
        replica = doc.fresh()
        assert replica.page_count() == 0
        replica.write_page("x", "y")
        assert replica.read_page("x")["last_modified"] == 3.0

    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.text(max_size=32), max_size=6))
    def test_snapshot_roundtrip_property(self, pages):
        doc = WebDocument(pages=pages)
        replica = WebDocument()
        replica.restore(doc.snapshot())
        assert replica == doc


class TestPage:
    def test_wire_roundtrip(self):
        page = Page("a", "body", "text/plain", 4, 1.5)
        assert Page.from_dict(page.to_dict()) == page

    def test_size_bytes_utf8(self):
        assert Page("a", "é").size_bytes() == 2

    def test_page_not_found_str_is_plain(self):
        assert str(PageNotFound("x.html")) == "x.html"
