"""Unit tests for latency models and topologies."""

import networkx as nx
import pytest

from repro.net.latency import (
    ConstantLatency,
    GraphLatency,
    RegionalLatency,
    UniformLatency,
)
from repro.net.topology import Topology
from repro.sim.rng import SeededRng


class TestConstantLatency:
    def test_fixed_delay(self):
        model = ConstantLatency(0.1)
        assert model.delay("a", "b", 0) == 0.1

    def test_bandwidth_adds_transmission_time(self):
        model = ConstantLatency(0.1, bandwidth_bps=8000)
        # 1000 bytes at 8 kbit/s = 1 second.
        assert model.delay("a", "b", 1000) == pytest.approx(1.1)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(0.01, 0.2, SeededRng(1))
        for _ in range(100):
            assert 0.01 <= model.delay("a", "b", 0) <= 0.2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1, SeededRng(1))


class TestRegionalLatency:
    def build(self):
        return RegionalLatency(
            node_region={"s": "europe", "c": "us-east"},
            region_latency={("europe", "us-east"): 0.06},
            intra_region=0.005,
            jitter_fraction=0.0,
        )

    def test_inter_region(self):
        assert self.build().base_delay("s", "c") == 0.06

    def test_symmetric_lookup(self):
        assert self.build().base_delay("c", "s") == 0.06

    def test_intra_region(self):
        model = self.build()
        model.assign("s2", "europe")
        assert model.base_delay("s", "s2") == 0.005

    def test_unknown_node_uses_default(self):
        assert self.build().base_delay("s", "mystery") == 0.15

    def test_jitter_bounded(self):
        model = RegionalLatency(
            node_region={"a": "x", "b": "y"},
            region_latency={("x", "y"): 0.1},
            jitter_fraction=0.2,
            rng=SeededRng(2),
        )
        for _ in range(50):
            delay = model.delay("a", "b", 0)
            assert 0.1 <= delay <= 0.12 + 1e-9


class TestGraphLatency:
    def test_shortest_path(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", latency=0.02)
        graph.add_edge("b", "c", latency=0.03)
        graph.add_edge("a", "c", latency=0.1)
        model = GraphLatency(graph)
        assert model.delay("a", "c", 0) == pytest.approx(0.05)

    def test_same_node_zero(self):
        model = GraphLatency(nx.Graph())
        assert model.delay("a", "a", 0) == 0.0

    def test_disconnected_uses_default(self):
        graph = nx.Graph()
        graph.add_node("a")
        graph.add_node("b")
        model = GraphLatency(graph, default=0.9)
        assert model.delay("a", "b", 0) == 0.9


class TestTopology:
    def test_place_and_query(self):
        topo = Topology.continental()
        topo.place("server", "europe")
        topo.place("client", "us-east")
        assert topo.nodes_in("europe") == ["server"]
        model = topo.latency_model(jitter_fraction=0.0)
        assert model.base_delay("server", "client") == 0.06

    def test_place_unknown_region_rejected(self):
        topo = Topology.single_lan()
        with pytest.raises(KeyError):
            topo.place("x", "mars")

    def test_connect_requires_existing_regions(self):
        topo = Topology()
        topo.add_region("a")
        with pytest.raises(KeyError):
            topo.connect("a", "b", 0.1)

    def test_client_server_wan_builder(self):
        topo = Topology.client_server_wan(3)
        assert topo.node_region["server"] == "europe"
        assert len(topo.nodes_in("us-east")) == 3
