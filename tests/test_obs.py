"""The observability layer: tracer, metrics registry, run manifests, CLI.

The golden-trace and cross-executor determinism claims live in
``test_obs_trace_golden.py``; this module covers the unit surface --
event flattening, the zero-cost disabled path, the NetworkStats mirror,
manifest round-trips, the ``python -m repro.obs`` commands, and the
telemetry the runner attaches to sweeps and failures.
"""

import json

import pytest

from repro.exec import ResultCache, run_sweep
from repro.exec.runner import SweepPointError
from repro.exec.spec import SweepSpec
from repro.net.latency import ConstantLatency
from repro.net.network import Network, NetworkStats
from repro.obs import (
    MANIFEST_NAME,
    MetricsRegistry,
    NullTracer,
    RecordingTracer,
    RunManifest,
    events_jsonl,
    load_manifest,
    summarize_manifest,
    trace_run,
    validate_manifest,
)
from repro.obs import tracer as tracer_module
from repro.obs.cli import main as obs_main
from repro.obs.manifest import point_record
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.tracer import _plain, env_trace_write
from repro.replication.policy import Propagation
from repro.sim.kernel import Simulator


class FakeClock:
    def __init__(self):
        self.now = 0.0


class TestRecordingTracer:
    def test_event_envelope_and_detail(self):
        tracer = RecordingTracer()
        tracer.event(1.5, "net.send", node="a", obj="index.html",
                     dst="b", size=42)
        assert tracer.events == [{
            "t": 1.5, "kind": "net.send", "node": "a",
            "obj": "index.html", "dst": "b", "size": 42,
        }]
        assert len(tracer) == 1

    def test_detail_values_flattened_to_plain_data(self):
        tracer = RecordingTracer()
        tracer.event(0.0, "x", reason=Propagation.INVALIDATE,
                     keys={"b", "a"}, nested={"k": (1, 2)})
        event = tracer.events[0]
        # Enums, sets and tuples leave as strings / sorted lists, so
        # the trace serializes identically under every executor.
        assert event["reason"] == str(Propagation.INVALIDATE)
        assert event["keys"] == ["a", "b"]
        assert event["nested"] == {"k": [1, 2]}

    def test_plain_passes_scalars_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert _plain(value) is value

    def test_span_records_duration_from_caller_clock(self):
        tracer = RecordingTracer()
        clock = FakeClock()
        with tracer.span(clock, "phase", node="n"):
            clock.now = 2.0
        (event,) = tracer.events
        assert event["t"] == 0.0
        assert event["dur"] == 2.0
        assert event["kind"] == "phase"

    def test_jsonl_is_canonical(self):
        tracer = RecordingTracer()
        tracer.event(0.25, "b.kind", node="n", z=1, a=2)
        line = tracer.to_jsonl()
        assert line == (
            '{"a":2,"kind":"b.kind","node":"n","obj":null,"t":0.25,"z":1}\n'
        )
        assert events_jsonl(tracer.events) == line

    def test_write_jsonl_round_trip(self, tmp_path):
        tracer = RecordingTracer()
        tracer.event(0.0, "k", node="n")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        assert path.read_text() == tracer.to_jsonl()


class TestInstallAndDisabledPath:
    def test_disabled_by_default(self):
        assert tracer_module.ACTIVE is None
        assert not tracer_module.enabled()

    def test_trace_run_installs_and_restores(self):
        assert tracer_module.ACTIVE is None
        with trace_run() as tracer:
            assert tracer_module.ACTIVE is tracer
            assert tracer_module.enabled()
        assert tracer_module.ACTIVE is None

    def test_nested_trace_runs_compose(self):
        with trace_run() as outer:
            tracer_module.ACTIVE.event(0.0, "outer.only")
            with trace_run() as inner:
                tracer_module.ACTIVE.event(0.0, "inner.only")
            assert tracer_module.ACTIVE is outer
        assert [e["kind"] for e in outer.events] == ["outer.only"]
        assert [e["kind"] for e in inner.events] == ["inner.only"]

    def test_hooks_emit_nothing_when_disabled(self):
        sim = Simulator(seed=1)
        network = Network(sim, latency=ConstantLatency(0.01))
        network.register("a", lambda src, payload, size: None)
        network.register("x", lambda src, payload, size: None)
        network.send("x", "a", {"m": 1}, size_bytes=10)
        sim.run_until_idle()
        # The scenario above would emit sim.* and net.* events; with no
        # tracer installed a later recording scope must start empty.
        with trace_run() as tracer:
            pass
        assert len(tracer) == 0

    def test_null_tracer_drops_everything(self):
        null = NullTracer()
        null.event(0.0, "k", node="n", extra=1)
        with null.span(FakeClock(), "k"):
            pass  # must simply run the block

    def test_env_trace_write_flag_value_writes_nothing(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.chdir(tmp_path)
        tracer = RecordingTracer()
        tracer.event(0.0, "k")
        env_trace_write("pt", tracer)
        assert list(tmp_path.iterdir()) == []

    def test_env_trace_write_directory_value_writes_file(self, tmp_path,
                                                         monkeypatch):
        target = tmp_path / "traces"
        monkeypatch.setenv("REPRO_TRACE", str(target))
        tracer = RecordingTracer()
        tracer.event(0.0, "k")
        env_trace_write("pt/..x", tracer)
        (written,) = list(target.iterdir())
        assert written.name == "trace-pt_..x.jsonl"
        assert written.read_text() == tracer.to_jsonl()


class TestMetrics:
    def test_counter_gauge_histogram(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = Gauge("g")
        gauge.set(1.5)
        assert gauge.value == 1.5
        histogram = Histogram("h")
        assert histogram.summary()["count"] == 0
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.summary() == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_registry_creates_once_and_type_checks(self):
        registry = MetricsRegistry()
        counter = registry.counter("net.sent")
        assert registry.counter("net.sent") is counter
        assert "net.sent" in registry
        assert len(registry) == 1
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("net.sent")

    def test_snapshot_is_sorted_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(0.5)
        registry.histogram("c").observe(1.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b", "c"]
        assert snapshot["a"] == 0.5
        assert snapshot["b"] == 2
        assert snapshot["c"]["count"] == 1


class TestNetworkStatsMirror:
    def test_snapshot_syncs_every_counter(self):
        registry = MetricsRegistry()
        stats = NetworkStats().bind(registry)
        stats.datagrams_sent += 3
        stats.bytes_sent += 120
        snapshot = registry.snapshot()
        assert snapshot["net.datagrams_sent"] == 3
        assert snapshot["net.bytes_sent"] == 120
        # The mirror is lazy: bumps are plain attribute writes, and the
        # registry instruments are brought current by snapshot()/sync().
        stats.datagrams_sent += 1
        assert registry.counter("net.datagrams_sent").value == 3
        stats.sync()
        assert registry.counter("net.datagrams_sent").value == 4

    def test_bind_carries_existing_values(self):
        stats = NetworkStats()
        stats.datagrams_sent = 7
        registry = MetricsRegistry()
        stats.bind(registry)
        assert registry.counter("net.datagrams_sent").value == 7

    def test_network_exports_registry(self, network):
        network.register("a", lambda src, payload, size: None)
        network.register("x", lambda src, payload, size: None)
        network.send("x", "a", {"m": 1}, size_bytes=10)
        network.sim.run_until_idle()
        snapshot = network.metrics.snapshot()
        assert snapshot["net.datagrams_sent"] == 1
        assert snapshot["net.datagrams_delivered"] == 1
        assert snapshot["net.bytes_delivered"] == 10
        assert snapshot == {
            f"net.{name}": value
            for name, value in network.stats.as_dict().items()
        }


def _valid_records(tmp_path):
    manifest = RunManifest.in_dir(tmp_path)
    manifest.record(point_record(
        "spec-a", "p0", "ok", "miss", "serial", 0.5,
        peak_rss_kb=1000, events=10))
    manifest.record(point_record(
        "spec-a", "p1", "ok", "hit", "serial", 0.001))
    manifest.record(point_record(
        "spec-a", "p2", "failed", "miss", "serial", 0.25,
        error="boom"))
    manifest.record_run("spec-a", "serial", 1, 3, computed=2, hits=1,
                        failures=1, wall_s=0.75)
    return manifest


class TestManifest:
    def test_round_trip_and_validate(self, tmp_path):
        manifest = _valid_records(tmp_path)
        records = manifest.read()
        assert [record["rec"] for record in records] == (
            ["point"] * 3 + ["run"]
        )
        assert validate_manifest(records) == []

    def test_summarize(self, tmp_path):
        records = _valid_records(tmp_path).read()
        summary = summarize_manifest(records)
        stats = summary["specs"]["spec-a"]
        assert stats["points"] == 3
        assert stats["hits"] == 1
        assert stats["computed"] == 2
        assert stats["failed"] == 1
        assert stats["wall_total_s"] == pytest.approx(0.751)
        assert stats["wall_max_s"] == pytest.approx(0.5)
        assert stats["peak_rss_kb"] == 1000
        assert stats["events"] == 10
        assert stats["executors"] == {"serial": 3}
        assert stats["slowest"][0] == ("p0", 0.5)
        assert stats["failures"] == [{"label": "p2", "error": "boom"}]

    def test_spec_filter(self, tmp_path):
        records = _valid_records(tmp_path).read()
        assert summarize_manifest(records, spec="other")["specs"] == {}

    def test_malformed_lines_reported_with_numbers(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text('{"rec":"point"}\nnot json\n[1,2]\n')
        records = load_manifest(path)
        errors = validate_manifest(records)
        assert any(error.startswith("line 1:") for error in errors)
        assert any(error.startswith("line 2:") for error in errors)
        assert any(error.startswith("line 3:") for error in errors)

    def test_bad_status_and_bool_typed_field_rejected(self, tmp_path):
        record = point_record("s", "p", "ok", "miss", "serial", 0.1)
        record["status"] = "maybe"
        record["events"] = True
        errors = validate_manifest([record])
        assert any("bad status" in error for error in errors)
        assert any("'events'" in error for error in errors)

    def test_record_is_best_effort(self, tmp_path):
        # An unwritable manifest must never fail the sweep writing it.
        blocked = tmp_path / "file"
        blocked.write_text("")
        manifest = RunManifest(blocked / "manifest.jsonl")
        manifest.record(point_record("s", "p", "ok", "miss", "serial", 0.1))


@pytest.fixture
def swept_manifest(tmp_path):
    """A cache dir whose manifest was written by a real cached sweep."""
    spec = SweepSpec(name="obs-sweep", run_point=_value_point)
    for x in range(3):
        spec.add(f"x-{x}", x=x)
    cache_dir = tmp_path / "cache"
    # Executor pinned so the recorded names are assertable even under
    # a REPRO_EXECUTOR override (the tier1-shared-memory CI job).
    run_sweep(spec, parallel=1, executor="serial",
              cache=ResultCache(cache_dir))
    run_sweep(spec, parallel=1, executor="serial",
              cache=ResultCache(cache_dir))  # all hits
    return cache_dir


class TestRunnerTelemetry:
    def test_cached_sweep_writes_manifest(self, swept_manifest):
        records = load_manifest(swept_manifest / MANIFEST_NAME)
        assert validate_manifest(records) == []
        points = [r for r in records if r["rec"] == "point"]
        runs = [r for r in records if r["rec"] == "run"]
        assert len(points) == 6 and len(runs) == 2
        assert [p["cache"] for p in points] == ["miss"] * 3 + ["hit"] * 3
        assert all(p["executor"] == "serial" for p in points)
        assert runs[0]["computed"] == 3 and runs[0]["hits"] == 0
        assert runs[1]["computed"] == 0 and runs[1]["hits"] == 3

    def test_cacheless_sweep_records_nothing(self, tmp_path):
        spec = SweepSpec(name="plain", run_point=_value_point)
        spec.add("only")
        run_sweep(spec, parallel=1)
        assert list(tmp_path.iterdir()) == []

    def test_explicit_manifest_without_cache(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.jsonl")
        spec = SweepSpec(name="explicit", run_point=_value_point)
        spec.add("only")
        run_sweep(spec, parallel=1, manifest=manifest)
        records = manifest.read()
        assert validate_manifest(records) == []
        assert records[0]["spec"] == "explicit"

    def test_trace_env_flag_counts_events(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        spec = SweepSpec(name="traced", run_point=_simulated_point)
        spec.add("only")
        cache_dir = tmp_path / "cache"
        run_sweep(spec, parallel=1, cache=ResultCache(cache_dir))
        (point,) = [
            r for r in load_manifest(cache_dir / MANIFEST_NAME)
            if r["rec"] == "point"
        ]
        assert point["events"] > 0

    def test_failure_carries_elapsed_and_manifest_entry(self, tmp_path):
        spec = SweepSpec(name="failing", run_point=_failing_point)
        spec.add("bad")
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(spec, parallel=1,
                      cache=ResultCache(tmp_path / "cache"))
        error = excinfo.value
        assert error.elapsed >= 0.0
        assert error.manifest_entry["status"] == "failed"
        assert error.manifest_entry["label"] == "bad"
        assert "ValueError" in error.manifest_entry["error"]
        assert f"after {error.elapsed:.3f}s" in str(error)

    def test_failure_entry_attached_without_manifest_too(self):
        # Manifest-less sweeps persist nothing, but the failure record
        # still rides the exception for inspection.
        spec = SweepSpec(name="failing", run_point=_failing_point)
        spec.add("bad")
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(spec, parallel=1)
        assert excinfo.value.manifest_entry["status"] == "failed"


def _value_point(config, seed):
    return {"value": config.get("x", 1) * seed}


def _simulated_point(config, seed):
    """A point that runs a tiny simulation, so hooks have events to emit."""
    sim = Simulator(seed=seed)
    sim.schedule(0.5, lambda: None)
    sim.run_until_idle()
    return {"fired": True}


def _failing_point(config, seed):
    raise ValueError("intentional")


class TestCli:
    def test_summary_check_ok(self, swept_manifest, capsys):
        assert obs_main(["summary", "--cache-dir", str(swept_manifest),
                         "--check"]) == 0
        out = capsys.readouterr().out
        assert "sweep obs-sweep: 6 points (3 cached, 3 computed, 0 failed)" \
            in out
        assert "manifest OK (8 records)" in out

    def test_summary_spec_filter_empty(self, swept_manifest, capsys):
        assert obs_main(["summary", "--cache-dir", str(swept_manifest),
                         "--spec", "nope"]) == 0
        assert "no point records" in capsys.readouterr().out

    def test_summary_check_fails_on_malformed(self, tmp_path, capsys):
        (tmp_path / MANIFEST_NAME).write_text("not json\n")
        assert obs_main(["summary", "--cache-dir", str(tmp_path),
                         "--check"]) == 1
        assert "manifest INVALID" in capsys.readouterr().err

    def test_summary_requires_location(self, capsys):
        assert obs_main(["summary"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_summary_missing_manifest(self, tmp_path, capsys):
        assert obs_main(["summary", "--cache-dir", str(tmp_path)]) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_slow_lists_computed_points_only(self, swept_manifest, capsys):
        assert obs_main(["slow", "--cache-dir", str(swept_manifest),
                         "--top", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all("[serial]" in line for line in lines)

    def test_trace_filters(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        tracer = RecordingTracer()
        tracer.event(0.0, "net.send", node="a", dst="b")
        tracer.event(0.1, "net.deliver", node="b", src="a")
        tracer.event(0.2, "repl.write", node="a", decision="accept")
        tracer.write_jsonl(path)
        assert obs_main(["trace", str(path), "--kind", "net",
                         "--node", "a"]) == 0
        captured = capsys.readouterr()
        assert "net.send" in captured.out
        assert "repl.write" not in captured.out
        assert "(1 events)" in captured.err

    def test_trace_limit_and_missing_file(self, tmp_path, capsys):
        assert obs_main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"t": 0.0, "kind": "k"}) + "\n"
            + json.dumps({"t": 1.0, "kind": "k"}) + "\n"
        )
        capsys.readouterr()
        assert obs_main(["trace", str(path), "--limit", "1"]) == 0
        assert "(1 events)" in capsys.readouterr().err
