"""Unit tests for messages, invocation marshalling and comm objects."""

import pytest
from hypothesis import given, strategies as st

from repro.comm.endpoint import CommunicationObject, RequestTimeout
from repro.comm.invocation import (
    InvocationCodecError,
    decode_invocation,
    encode_invocation,
)
from repro.comm.message import (
    ENVELOPE_OVERHEAD,
    Message,
    envelope_cost,
    estimate_size,
)
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(3) == 8
        assert estimate_size(3.5) == 8
        assert estimate_size("abcd") == 4
        assert estimate_size(b"abc") == 3

    def test_containers_sum_elements(self):
        assert estimate_size(["aa", "bb"]) == 2 + 2 + 2 + 2
        assert estimate_size({"k": "vv"}) == 1 + 2 + 2

    def test_unicode_counts_bytes(self):
        assert estimate_size("é") == 2

    def test_nested_message_sizes_like_its_field_dict(self):
        # A Message inside a body must cost exactly what the historical
        # dataclass walk charged: the size of its field dict.  Pins the
        # explicit Message branch in ``_estimate_other`` against the
        # generic dict walker.
        for body in ({}, {"page": "index.html", "n": 3},
                     {"nested": {"deep": [1, 2.5, None, "x"]}}):
            inner = Message("probe", body, msg_id=17, reply_to=4)
            as_dict = {
                "kind": inner.kind,
                "body": inner.body,
                "msg_id": inner.msg_id,
                "reply_to": inner.reply_to,
            }
            assert estimate_size(inner) == estimate_size(as_dict)
            assert estimate_size([inner]) == estimate_size([as_dict])

    def test_nested_message_default_reply_to(self):
        inner = Message("probe", {"a": 1})
        assert inner.reply_to is None
        as_dict = {"kind": "probe", "body": {"a": 1},
                   "msg_id": inner.msg_id, "reply_to": None}
        assert estimate_size(inner) == estimate_size(as_dict)


class TestEnvelopeCost:
    def test_payload_size_is_envelope_plus_body(self):
        # The documented identity the request-size arithmetic in
        # ``replication.client`` relies on.
        for kind, body in (
            ("read", {"invocation": {"method": "m"}, "session": {}}),
            ("write", {"record": {"wid": "w:1"}}),
            ("x", {}),
        ):
            message = Message(kind, body)
            assert message.payload_size() == \
                envelope_cost(kind) + estimate_size(body)

    def test_cached_size_survives_repeat_calls(self):
        message = Message("k", {"a": "bb"})
        first = message.payload_size()
        message.body["grown"] = "later"  # size is fixed at first call
        assert message.payload_size() == first


class TestMessage:
    def test_ids_unique(self):
        assert Message("a").msg_id != Message("a").msg_id

    def test_reply_correlates(self):
        request = Message("read", {"page": "x"})
        response = request.reply("read_reply", {"result": 1})
        assert response.reply_to == request.msg_id

    def test_payload_size_includes_envelope(self):
        message = Message("k", {"a": "bb"})
        assert message.payload_size() > ENVELOPE_OVERHEAD


class TestInvocationCodec:
    def test_roundtrip(self):
        encoded = encode_invocation("write_page", "index", "content",
                                    read_only=False, content_type="text/html")
        decoded = decode_invocation(encoded)
        assert decoded.method == "write_page"
        assert decoded.args == ("index", "content")
        assert decoded.kwargs_dict() == {"content_type": "text/html"}
        assert decoded.read_only is False

    def test_defaults(self):
        decoded = decode_invocation({"method": "read_page"})
        assert decoded.args == ()
        assert decoded.read_only is True

    def test_missing_method_rejected(self):
        with pytest.raises(InvocationCodecError):
            decode_invocation({"args": []})

    def test_empty_method_rejected(self):
        with pytest.raises(InvocationCodecError):
            decode_invocation({"method": ""})

    @given(
        st.text(min_size=1, max_size=20).filter(str.strip),
        st.lists(st.one_of(st.integers(), st.text(max_size=10)), max_size=4),
        st.booleans(),
    )
    def test_roundtrip_property(self, method, args, read_only):
        encoded = encode_invocation(method, *args, read_only=read_only)
        decoded = decode_invocation(encoded)
        assert decoded.method == method
        assert list(decoded.args) == args
        assert decoded.read_only == read_only


class TestCommunicationObject:
    def build(self, reliable=True, loss_rate=0.0, seed=1):
        sim = Simulator(seed=seed)
        net = Network(sim, latency=ConstantLatency(0.01), loss_rate=loss_rate)
        a = CommunicationObject(sim, net, "a", reliable=reliable)
        b = CommunicationObject(sim, net, "b", reliable=reliable)
        return sim, net, a, b

    def test_send_reaches_handler(self):
        sim, _, a, b = self.build()
        received = []
        b.set_handler(lambda src, msg: received.append((src, msg.kind)))
        a.send("b", Message("ping"))
        sim.run_until_idle()
        assert received == [("a", "ping")]

    def test_request_reply_roundtrip(self):
        sim, _, a, b = self.build()

        def answer(src, msg):
            b.reply(src, msg.reply("pong", {"n": msg.body["n"] + 1}))

        b.set_handler(answer)
        future = a.request("b", Message("ping", {"n": 1}))
        sim.run_until_idle()
        assert future.result().body["n"] == 2

    def test_request_timeout_without_reply(self):
        sim, _, a, b = self.build()
        b.set_handler(lambda src, msg: None)  # never replies
        future = a.request("b", Message("ping"), timeout=0.5)
        sim.run_until_idle()
        with pytest.raises(RequestTimeout):
            future.result()

    def test_request_retries_over_lossy_link(self):
        sim, _, a, b = self.build(reliable=False, loss_rate=0.4, seed=7)

        def answer(src, msg):
            b.reply(src, msg.reply("pong"))

        b.set_handler(answer)
        future = a.request("b", Message("ping"), timeout=0.3, retries=30)
        sim.run_until_idle()
        assert future.result().kind == "pong"

    def test_close_fails_pending_requests(self):
        sim, _, a, b = self.build()
        b.set_handler(lambda src, msg: None)
        future = a.request("b", Message("ping"), timeout=10.0)
        a.close()
        with pytest.raises(RequestTimeout):
            future.result()

    def test_traffic_counters(self):
        sim, _, a, b = self.build()
        b.set_handler(lambda src, msg: None)
        a.send("b", Message("one"))
        a.send("b", Message("two"))
        sim.run_until_idle()
        assert a.messages_sent == 2
        assert a.bytes_sent > 2 * ENVELOPE_OVERHEAD

    def test_multicast_excludes_self(self):
        sim, net, a, b = self.build()
        received = []
        b.set_handler(lambda src, msg: received.append(msg.kind))
        a.multicast(["a", "b"], Message("m"))
        sim.run_until_idle()
        assert received == ["m"]
