"""Tests for metrics: percentiles, staleness, traffic, table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.trace import TraceRecorder
from repro.core.ids import WriteId
from repro.metrics.report import percentile, summarize
from repro.metrics.staleness import read_staleness, staleness_summary
from repro.metrics.tables import render_table
from repro.metrics.traffic import collect_traffic
from repro.net.network import Network
from repro.sim.kernel import Simulator


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50),
           st.floats(0, 100))
    def test_within_sample_bounds(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0 and summary.mean == 0.0

    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.maximum == 3.0

    def test_row_renders(self):
        row = summarize([1.0]).row("label")
        assert row[0] == "label" and row[1] == "1"


class TestStaleness:
    def test_fresh_read(self):
        trace = TraceRecorder()
        trace.record_write_ack(1.0, "m", WriteId("m", 1), "s")
        trace.record_read(2.0, "cache", "u", served_vc={"m": 1})
        samples = read_staleness(trace)
        assert len(samples) == 1
        assert samples[0].fresh
        assert samples[0].time_lag == 0.0

    def test_stale_read_version_and_time_lag(self):
        trace = TraceRecorder()
        trace.record_write_ack(1.0, "m", WriteId("m", 1), "s")
        trace.record_write_ack(2.0, "m", WriteId("m", 2), "s")
        trace.record_read(5.0, "cache", "u", served_vc={})
        sample = read_staleness(trace)[0]
        assert sample.version_lag == 2
        assert sample.time_lag == pytest.approx(4.0)

    def test_unacked_writes_do_not_count(self):
        trace = TraceRecorder()
        trace.record_write_issue(1.0, "m", WriteId("m", 1), "s")
        trace.record_read(2.0, "cache", "u", served_vc={})
        assert read_staleness(trace)[0].fresh

    def test_summary_fraction(self):
        trace = TraceRecorder()
        trace.record_write_ack(1.0, "m", WriteId("m", 1), "s")
        trace.record_read(2.0, "c", "u", served_vc={})
        trace.record_read(3.0, "c", "u", served_vc={"m": 1})
        summary = staleness_summary(trace)
        assert summary.reads == 2
        assert summary.stale_fraction == 0.5

    def test_store_filter(self):
        trace = TraceRecorder()
        trace.record_write_ack(1.0, "m", WriteId("m", 1), "s")
        trace.record_read(2.0, "c1", "u", served_vc={})
        trace.record_read(2.0, "c2", "u", served_vc={"m": 1})
        assert staleness_summary(trace, stores=["c2"]).stale_fraction == 0.0


class TestTraffic:
    def test_collects_network_and_engine_counters(self):
        sim = Simulator()
        net = Network(sim)
        net.register("a", lambda *a: None)
        net.register("b", lambda *a: None)
        net.send("a", "b", "x", size_bytes=10)
        sim.run_until_idle()

        class FakeEngine:
            counters = {"tx:update": 3, "rx:read": 1}

        summary = collect_traffic(net, [FakeEngine()])
        assert summary.datagrams_sent == 1
        assert summary.bytes_sent == 10
        assert summary.kind("tx:update") == 3
        assert summary.coherence_messages == 3


class TestRenderTable:
    def test_basic_shape(self):
        text = render_table(["a", "b"], [["1", "2"], ["3", "4"]],
                            title="T")
        assert "T" in text
        assert "| 1 " in text and "| 4 " in text

    def test_wraps_long_cells(self):
        text = render_table(["col"], [["word " * 30]], max_cell_width=20)
        assert all(len(line) < 30 for line in text.splitlines())

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_multiline_cells(self):
        text = render_table(["v"], [["line1\nline2"]])
        assert "line1" in text and "line2" in text
