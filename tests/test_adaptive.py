"""Tests for the self-adaptive policy controller (paper §5 future work)."""

from repro.experiments.adaptive import run_adaptive
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication.adaptive import (
    AdaptationEvent,
    AdaptiveConfig,
    AdaptivePolicyController,
)
from repro.replication.policy import (
    CoherenceTransfer,
    Propagation,
    ReplicationPolicy,
    TransferInstant,
)
from repro.sim.kernel import Simulator
from repro.web.webobject import WebObject

from tests.conftest import resolve


def build(config=None, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.02))
    policy = ReplicationPolicy(coherence_transfer=CoherenceTransfer.PARTIAL)
    site = WebObject(sim, net, policy=policy, pages={"p": "seed"},
                     designated_writer="master")
    server = site.create_server("server")
    site.create_cache("cache")
    controller = AdaptivePolicyController(
        policy=policy,
        primary=server.engine,
        schedule=lambda d, fn, daemon=False: sim.schedule(d, fn,
                                                          daemon=daemon),
        now=lambda: sim.now,
        config=config or AdaptiveConfig(interval=1.0, lazy_at_writes=3),
        observers=[store.engine for store in site.stores()],
    )
    controller.start()
    master = site.bind_browser("m", "master", read_store="server",
                               write_store="server")
    reader = site.bind_browser("u", "user", read_store="cache")
    return sim, site, policy, controller, master, reader


def test_write_burst_switches_to_lazy_and_invalidate():
    sim, site, policy, controller, master, reader = build()
    for index in range(6):
        resolve(sim, master.write_page("p", f"rev {index}"))
    sim.run(until=sim.now + 1.5)
    assert policy.transfer_instant is TransferInstant.LAZY
    assert policy.propagation is Propagation.INVALIDATE
    parameters = {e.parameter for e in controller.events}
    assert parameters == {"propagation", "transfer_instant"}


def test_quiet_period_returns_to_immediate():
    sim, site, policy, controller, master, reader = build()
    for index in range(6):
        resolve(sim, master.write_page("p", f"rev {index}"))
    sim.run(until=sim.now + 1.5)
    assert policy.transfer_instant is TransferInstant.LAZY
    sim.run(until=sim.now + 3.0)  # silence: several empty windows
    assert policy.transfer_instant is TransferInstant.IMMEDIATE


def test_read_dominance_restores_update_propagation():
    sim, site, policy, controller, master, reader = build()
    for index in range(6):
        resolve(sim, master.write_page("p", f"rev {index}"))
    sim.run(until=sim.now + 1.5)
    assert policy.propagation is Propagation.INVALIDATE
    # A read-heavy window flips it back: one write, many reads.
    resolve(sim, master.write_page("p", "final"))
    for _ in range(6):
        resolve(sim, reader.read_page("p"))
    sim.run(until=sim.now + 1.5)
    assert policy.propagation is Propagation.UPDATE


def test_stop_halts_adaptation():
    sim, site, policy, controller, master, reader = build()
    controller.stop()
    for index in range(6):
        resolve(sim, master.write_page("p", f"rev {index}"))
    sim.run(until=sim.now + 3.0)
    assert controller.events == []
    assert policy.transfer_instant is TransferInstant.IMMEDIATE


def test_events_carry_window_counts():
    sim, site, policy, controller, master, reader = build()
    for index in range(5):
        resolve(sim, master.write_page("p", f"rev {index}"))
    sim.run(until=sim.now + 1.5)
    assert controller.events
    event = controller.events[0]
    assert isinstance(event, AdaptationEvent)
    assert event.writes >= 3
    assert event.time > 0


def test_x8_adaptive_beats_static_on_traffic():
    result = run_adaptive(seed=1, edits=16, reads=8, n_caches=3)
    measured = result.data["measured"]
    static = measured["static (update/immediate)"]["metrics"]
    adaptive = measured["adaptive"]["metrics"]
    assert adaptive.traffic.coherence_messages < \
        static.traffic.coherence_messages
    assert measured["adaptive"]["events"], "the controller must adapt"
