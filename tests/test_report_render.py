"""Tests for the renderers and the generated results book.

The golden files under ``tests/golden/`` pin the rendered wire-traffic
table and ASCII heat map for the small grid byte-for-byte: any engine or
renderer change that moves the numbers (or the formatting) must be a
conscious golden update, never drift.
"""

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.report.aggregate import aggregate
from repro.report.book import BOOK_NAME, book_artifacts, check_book, write_book
from repro.report.grid import get_grid, run_grid
from repro.report.render import (
    ascii_heatmap,
    markdown_metric_table,
    svg_heatmap,
)

GOLDEN = Path(__file__).parent / "golden"


def _small_tables(cache_dir=None):
    grid = get_grid("table1-small")
    results = run_grid(grid, cache_dir=cache_dir)
    return grid, results, aggregate(grid, results)


def test_golden_markdown_table_small_grid():
    _, _, tables = _small_tables()
    rendered = markdown_metric_table(tables["wire_kb"]) + "\n"
    assert rendered == (GOLDEN / "table1_small_wire_kb.md").read_text()


def test_golden_ascii_heatmap_small_grid():
    _, _, tables = _small_tables()
    rendered = ascii_heatmap(tables["wire_kb"]) + "\n"
    assert rendered == (GOLDEN / "table1_small_wire_kb_heatmap.txt").read_text()


def test_book_bit_identical_on_warm_cache_rerun(tmp_path):
    cache = tmp_path / "cache"
    grid, results, _ = _small_tables(cache_dir=cache)
    cold = book_artifacts(grid, results)
    grid, results, _ = _small_tables(cache_dir=cache)  # all cache hits
    warm = book_artifacts(grid, results)
    assert cold == warm


def test_book_contains_one_heatmap_per_metric():
    grid, results, _ = _small_tables()
    artifacts = book_artifacts(grid, results)
    svgs = [path for path in artifacts if path.endswith(".svg")]
    assert len(svgs) == 5
    book = artifacts[BOOK_NAME]
    for path in svgs:
        assert path in book  # every heat map is linked from the book
    assert "Paper crosswalk" in book
    assert "push-invalidate" in book


def test_svg_heatmaps_are_well_formed_and_deterministic():
    _, _, tables = _small_tables()
    table = tables["stale_fraction"]
    first, second = svg_heatmap(table), svg_heatmap(table)
    assert first == second
    root = ET.fromstring(first)
    assert root.tag.endswith("svg")
    ns = "{http://www.w3.org/2000/svg}"
    rects = root.iter(ns + "rect")
    width, height = float(root.get("width")), float(root.get("height"))
    for rect in rects:
        assert float(rect.get("x", 0)) + float(rect.get("width")) <= width
        assert float(rect.get("y", 0)) + float(rect.get("height")) <= height
    # One tooltip per cell.
    titles = list(root.iter(ns + "title"))
    assert len(titles) == len(table.rows) * len(table.cols)


def test_ascii_heatmap_shades_follow_magnitude():
    _, _, tables = _small_tables()
    heatmap = ascii_heatmap(tables["wire_kb"])
    lines = heatmap.splitlines()
    assert lines[0].startswith("protocol")
    assert "RH2" in lines[0] and "WH4" in lines[0]
    # The maximum cell renders the densest shade character.
    assert "@@" in heatmap
    assert "scale:" in heatmap


def test_check_book_roundtrip_and_staleness(tmp_path):
    grid, results, _ = _small_tables()
    artifacts = book_artifacts(grid, results)
    write_book(artifacts, tmp_path)
    assert check_book(artifacts, tmp_path) == []
    (tmp_path / BOOK_NAME).write_text("tampered\n")
    stale = check_book(artifacts, tmp_path)
    assert stale == [f"{BOOK_NAME} (out of date)"]
    (tmp_path / BOOK_NAME).unlink()
    assert check_book(artifacts, tmp_path) == [f"{BOOK_NAME} (missing)"]
    # A corrupt (non-UTF-8) artifact reports stale instead of crashing.
    (tmp_path / BOOK_NAME).write_bytes(b"\xff\xfe broken")
    assert check_book(artifacts, tmp_path) == [f"{BOOK_NAME} (out of date)"]


def test_check_book_flags_orphaned_heatmaps(tmp_path):
    grid, results, _ = _small_tables()
    artifacts = book_artifacts(grid, results)
    write_book(artifacts, tmp_path)
    orphan_globs = [f"results/heatmaps/{grid.name}/*.svg"]
    assert check_book(artifacts, tmp_path, orphan_globs=orphan_globs) == []
    # A heat map the render no longer produces (renamed metric, say)
    # must be flagged, not silently left committed forever.
    orphan = tmp_path / "results" / "heatmaps" / grid.name / "old.svg"
    orphan.write_text("<svg/>")
    assert check_book(artifacts, tmp_path, orphan_globs=orphan_globs) == [
        f"results/heatmaps/{grid.name}/old.svg (orphaned)"
    ]
