"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.errors import SchedulingInPastError, SimulationLimitExceeded
from repro.sim.kernel import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "latest")
    sim.run_until_idle()
    assert fired == ["early", "late", "latest"]


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, fired.append, label)
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.5, lambda: seen.append(sim.now))
    sim.run_until_idle()
    assert seen == [5.5]
    assert sim.now == 5.5


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "no")
    sim.schedule(1.0, fired.append, "yes")
    event.cancel()
    sim.run_until_idle()
    assert fired == ["yes"]


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run_until_idle()
    assert sim.live_pending == 0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingInPastError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SchedulingInPastError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    sim.run_until_idle()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run_until_idle()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_event_budget_enforced():
    sim = Simulator()

    def forever():
        sim.schedule(0.1, forever)

    sim.schedule(0.1, forever)
    with pytest.raises(SimulationLimitExceeded):
        sim.run(max_events=100)


def test_daemon_events_do_not_block_idle():
    sim = Simulator()
    fired = []

    def heartbeat():
        fired.append(sim.now)
        sim.schedule(1.0, heartbeat, daemon=True)

    sim.schedule(1.0, heartbeat, daemon=True)
    sim.schedule(2.5, fired.append, "work")
    sim.run_until_idle()
    # The run ends once the only remaining events are daemons.
    assert "work" in fired
    assert sim.now == 2.5


def test_daemon_events_fire_under_deadline_runs():
    sim = Simulator()
    ticks = []

    def heartbeat():
        ticks.append(sim.now)
        sim.schedule(1.0, heartbeat, daemon=True)

    sim.schedule(1.0, heartbeat, daemon=True)
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_determinism_same_seed_same_draws():
    values_a = [Simulator(seed=9).rng.random() for _ in range(1)]
    values_b = [Simulator(seed=9).rng.random() for _ in range(1)]
    assert values_a == values_b


def test_step_returns_false_on_empty_queue():
    assert Simulator().step() is False


def test_events_fired_counter():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    assert sim.events_fired == 3
