"""Cohort workloads: weighted accounting, expansion, and block draws."""

import pytest

from repro.coherence.trace import ReadEvent, coherence_signature
from repro.metrics.faults import unavailable_read_fraction
from repro.metrics.staleness import staleness_summary
from repro.replication.policy import ReplicationPolicy
from repro.sim.rng import SeededRng, zipf_cumulative
from repro.workload.cohort import CohortReaderWorkload, cohort_sizes
from repro.workload.generator import ReaderWorkload, ZipfPagePicker
from repro.workload.profiles import WorkloadProfile, run_profile

PROFILE = WorkloadProfile(
    name="cohort-test",
    writes=4,
    reads_per_client=5,
    write_interval=1.0,
    read_think=0.5,
)


def cohort_run(cohort_size, **kwargs):
    return run_profile(
        ReplicationPolicy.conference_example(),
        PROFILE,
        n_caches=2,
        seed=11,
        n_readers_per_cache=6,
        cohort_size=cohort_size,
        **kwargs,
    )


class TestCohortSizes:
    def test_exact_division(self):
        assert cohort_sizes(12, 4) == [4, 4, 4]

    def test_remainder_goes_last(self):
        assert cohort_sizes(10, 4) == [4, 4, 2]

    def test_degenerate_cases(self):
        assert cohort_sizes(0, 4) == []
        assert cohort_sizes(3, 10) == [3]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            cohort_sizes(-1, 4)
        with pytest.raises(ValueError):
            cohort_sizes(4, 0)


class TestWeightedAccounting:
    def test_weighted_reads_match_population(self):
        deployment = cohort_run(cohort_size=3)
        population = 12
        assert sum(deployment.cohorts.values()) == population
        summary = staleness_summary(deployment.site.trace)
        assert summary.reads == population * PROFILE.reads_per_client
        clients = [
            b.bound.replication for b in deployment.browsers.values()
        ]
        issued = sum(c.reads_issued for c in clients)
        # Master's reads are zero in this profile; every reader read
        # counts once per represented client.
        assert issued == population * PROFILE.reads_per_client
        assert unavailable_read_fraction(clients) == 0.0

    def test_read_events_carry_cohort_weight(self):
        deployment = cohort_run(cohort_size=3)
        reads = deployment.site.trace.of_type(ReadEvent)
        assert reads and all(event.weight == 3 for event in reads)

    def test_signature_extends_tuple_only_for_weighted_reads(self):
        deployment = cohort_run(cohort_size=3)
        signature = coherence_signature(deployment.site.trace)
        cohort_lanes = [
            lane for name, lane in signature.items()
            if name.startswith("client:cohort-")
        ]
        assert cohort_lanes
        weighted = [
            entry for lane in cohort_lanes for entry in lane
            if entry[0] == "read"
        ]
        assert weighted and all(entry[-1] == 3 for entry in weighted)

    def test_per_client_build_has_no_cohorts(self):
        deployment = cohort_run(cohort_size=1)
        assert deployment.cohorts == {}
        reads = deployment.site.trace.of_type(ReadEvent)
        assert reads and all(event.weight == 1 for event in reads)


class TestExpansion:
    def test_cohort_expands_on_fault_divergence(self):
        # Request timeouts under a crash plan make batched reads fail,
        # which is exactly the divergence that must split a cohort.
        deployment = cohort_run(
            cohort_size=6,
            fault_plan="crash-restart",
            request_timeout=0.5,
            horizon=60.0,
        )
        expanded = [
            name for name in deployment.browsers
            if "." in name and name.startswith("cohort-")
        ]
        if expanded:  # the crash actually hit a batched read
            # Members are bound to the cohort's own store and visible to
            # metric collection like any client.
            sample = expanded[0]
            parent = sample.rsplit(".", 1)[0]
            assert parent in deployment.cohorts
        clients = [
            b.bound.replication for b in deployment.browsers.values()
        ]
        assert unavailable_read_fraction(clients) >= 0.0

    def test_expand_cohort_binds_members(self):
        deployment = cohort_run(cohort_size=4)
        cohort_id = next(iter(deployment.cohorts))
        members = deployment.expand_cohort(cohort_id)
        assert len(members) == deployment.cohorts[cohort_id]
        for member in members:
            assert member.client_id in deployment.browsers

    def test_workload_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            CohortReaderWorkload(
                browser=None, pages=["p"], rng=SeededRng(0), weight=0
            )


class TestVectorizedDraws:
    def test_exponential_block_matches_single_draws(self):
        a, b = SeededRng(5), SeededRng(5)
        block = a.exponential_block(0.7, 50)
        singles = [b.exponential(0.7) for _ in range(50)]
        assert block == singles

    def test_pick_block_matches_single_picks(self):
        pages = [f"p{i}" for i in range(17)]
        a = ZipfPagePicker(pages, SeededRng(9), skew=0.8)
        b = ZipfPagePicker(pages, SeededRng(9), skew=0.8)
        assert a.pick_block(64) == [b.pick() for _ in range(64)]

    def test_bisect_pick_matches_linear_weighted_index(self):
        pages = [f"p{i}" for i in range(23)]
        picker = ZipfPagePicker(pages, SeededRng(3))
        legacy_rng = SeededRng(3)
        weights = SeededRng.zipf_weights(len(pages), 1.0)
        picks = picker.pick_block(200)
        legacy = [
            pages[legacy_rng.weighted_index(weights)] for _ in range(200)
        ]
        assert picks == legacy

    def test_zipf_weights_are_memoized(self):
        first = zipf_cumulative(101, 1.3)
        assert zipf_cumulative(101, 1.3) is first
        weights = SeededRng.zipf_weights(101, 1.3)
        weights[0] = 99.0  # a caller mutating its copy ...
        assert SeededRng.zipf_weights(101, 1.3)[0] != 99.0  # ... is isolated

    def test_cumulative_matches_weights_accumulation(self):
        weights = SeededRng.zipf_weights(12, 1.0)
        cumulative = zipf_cumulative(12, 1.0)
        running = 0.0
        for weight, total in zip(weights, cumulative):
            running += weight
            assert running == total  # identical left-to-right accumulation

    def test_reader_stream_unchanged_by_epoch_batching(self):
        # The reader draws think times and picks from independent
        # streams; whatever the epoch size, a given seed produces the
        # historical sequence (this is what keeps sweeps cache-valid).
        rng = SeededRng(21)
        reader = ReaderWorkload(
            browser=None, pages=["a", "b", "c"], rng=rng, operations=7
        )
        gen = reader.run()
        delay = gen.send(None)
        legacy = SeededRng(21)
        legacy_picker = ZipfPagePicker(["a", "b", "c"], legacy.fork("pages"))
        assert delay.seconds == legacy.exponential(1.0)
