"""Tests for the unified transport layer: protocols and backends."""

import pytest

from repro.net.network import Network
from repro.runtime.live import LiveLoop, LiveNetwork
from repro.sim.future import Future
from repro.sim.kernel import Simulator
from repro.transport import (
    Backend,
    BackendError,
    Clock,
    LiveBackend,
    SimBackend,
    Transport,
    make_backend,
)


class TestProtocolConformance:
    def test_simulated_pair_satisfies_protocols(self):
        sim = Simulator(seed=1)
        assert isinstance(sim, Clock)
        assert isinstance(Network(sim), Transport)

    def test_live_pair_satisfies_protocols(self):
        loop = LiveLoop(seed=1)
        assert isinstance(loop, Clock)
        assert isinstance(LiveNetwork(loop), Transport)


class TestMakeBackend:
    def test_by_name(self):
        assert isinstance(make_backend("sim"), SimBackend)
        assert isinstance(make_backend("live"), LiveBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            make_backend("quantum")

    def test_instance_passthrough(self):
        backend = SimBackend(seed=3)
        assert make_backend(backend) is backend
        with pytest.raises(BackendError, match="reconfigure"):
            make_backend(backend, seed=4)

    def test_live_rejects_loss_injection(self):
        with pytest.raises(BackendError, match="lossless"):
            make_backend("live", loss_rate=0.1)


class TestSimBackend:
    def test_call_runs_inline(self):
        backend = SimBackend()
        assert backend.call(lambda a, b: a + b, 2, 3) == 5

    def test_wait_steps_until_future_resolves(self):
        backend = SimBackend()
        future = Future()
        backend.clock.schedule(1.5, future.set_result, "late")
        assert backend.wait(future) == "late"
        assert backend.clock.now == pytest.approx(1.5)

    def test_wait_on_drained_queue_raises(self):
        backend = SimBackend()
        with pytest.raises(BackendError, match="drained"):
            backend.wait(Future())

    def test_advance_moves_virtual_clock(self):
        backend = SimBackend()
        backend.advance(4.0)
        assert backend.clock.now == pytest.approx(4.0)

    def test_wait_until_steps_to_predicate(self):
        backend = SimBackend()
        fired = []
        backend.clock.schedule(0.5, fired.append, 1)
        assert backend.wait_until(lambda: fired, timeout=2.0)
        assert not backend.wait_until(lambda: len(fired) > 1, timeout=1.0)


class TestLiveBackend:
    @pytest.fixture
    def backend(self):
        backend = LiveBackend(seed=1)
        backend.start()
        yield backend
        backend.stop()

    def test_call_runs_on_dispatcher_and_returns(self, backend):
        import threading

        names = backend.call(lambda: threading.current_thread().name)
        assert names == "repro-live-loop"

    def test_call_relays_exceptions(self, backend):
        def boom():
            raise ValueError("from the dispatcher")

        with pytest.raises(ValueError, match="from the dispatcher"):
            backend.call(boom)

    def test_wait_polls_wall_clock(self, backend):
        future = Future()
        backend.clock.schedule(0.02, future.set_result, "tick")
        assert backend.wait(future, timeout=2.0) == "tick"

    def test_wait_timeout_raises(self, backend):
        with pytest.raises(BackendError, match="unresolved"):
            backend.wait(Future(), timeout=0.05)

    def test_settle_observes_quiescence(self, backend):
        fired = []
        backend.clock.schedule(0.03, fired.append, 1)
        backend.settle(timeout=2.0)
        assert fired == [1]

    def test_backend_is_a_backend(self, backend):
        assert isinstance(backend, Backend)


class TestLiveNetworkStats:
    def test_delivery_counts(self):
        loop = LiveLoop(seed=1)
        loop.start()
        try:
            net = LiveNetwork(loop, latency=0.0)
            received = []
            net.register("b", lambda src, payload, size: received.append(payload))
            net.send("a", "b", "hello", size_bytes=5)
            net.send("a", "nowhere", "lost", size_bytes=4)
            backend = LiveBackend.__new__(LiveBackend)  # reuse the poller
            backend.clock = loop
            backend.call_timeout = 2.0
            assert backend.wait_until(lambda: received == ["hello"], 2.0)
            assert backend.wait_until(
                lambda: net.stats.datagrams_dropped_unregistered == 1, 2.0
            )
            assert net.stats.datagrams_sent == 2
            assert net.stats.datagrams_delivered == 1
            assert net.stats.bytes_sent == 9
            assert net.stats.bytes_delivered == 5
            assert net.is_registered("b") and not net.is_registered("a")
            assert net.nodes == {"b"}
        finally:
            loop.stop()

    def test_loop_idle_flag(self):
        loop = LiveLoop(seed=1)
        loop.start()
        try:
            assert loop.idle
            loop.schedule(0.5, lambda: None)
            assert not loop.idle
            loop.schedule(0.5, lambda: None, daemon=True)
            # Daemon housekeeping alone never blocks quiescence.
        finally:
            loop.stop()
