"""Tests for the report grid registry and its point function."""

import pytest

from repro.report.grid import (
    BASE_METRIC_KEYS,
    GRIDS,
    STRATEGIES,
    get_grid,
    grid_spec,
    run_grid_point,
)


def test_every_strategy_builds_a_valid_policy():
    for name, strategy in STRATEGIES.items():
        policy = strategy.build_policy()
        assert policy.propagation is strategy.propagation, name


def test_pull_strategies_carry_a_horizon():
    for strategy in STRATEGIES.values():
        if strategy.transfer_initiative.value == "pull":
            assert strategy.horizon is not None, strategy.name


def test_grid_registry_consistent():
    for name, grid in GRIDS.items():
        assert grid.name == name
        for protocol in grid.protocols:
            assert protocol in STRATEGIES
        assert grid.replications >= 2  # percentiles need samples
        assert grid.point_count() == (
            len(grid.protocols) * len(grid.col_values())
            * len(grid.sizes) * grid.replications
        )


def test_table1_covers_all_strategies():
    assert set(get_grid("table1").protocols) == set(STRATEGIES)


def test_small_grid_is_a_corner_of_the_full_grid():
    small, full = get_grid("table1-small"), get_grid("table1")
    assert set(small.protocols) <= set(full.protocols)
    assert set(small.workloads) <= set(full.workloads)
    assert set(small.sizes) <= set(full.sizes)


def test_get_grid_unknown_names_catalog():
    with pytest.raises(KeyError, match="registered:"):
        get_grid("nope")


def test_grid_spec_expands_dense_cross_product():
    grid = get_grid("table1-small")
    spec = grid_spec(grid)
    assert len(spec.points) == grid.point_count()
    assert spec.labels()[0] == (
        grid.protocols[0], grid.workloads[0], grid.sizes[0], 0,
    )
    # Every label is the (protocol, workload, size, rep) tuple.
    assert all(len(label) == 4 for label in spec.labels())


def test_run_grid_point_returns_all_metrics_and_is_deterministic():
    config = {"protocol": "push-invalidate", "workload": "read-heavy",
              "n_caches": 2, "rep": 0}
    first = run_grid_point(dict(config), seed=11)
    second = run_grid_point(dict(config), seed=11)
    assert first == second
    assert set(BASE_METRIC_KEYS) == set(first)
    assert all(isinstance(v, float) for v in first.values())


def test_replications_differ_via_derived_seeds():
    grid = get_grid("table1-small")
    spec = grid_spec(grid)
    by_label = {point.label: point for point in spec.points}
    a = by_label[("push-update", "read-heavy", 2, 0)]
    b = by_label[("push-update", "read-heavy", 2, 1)]
    assert spec.seed_for(a) != spec.seed_for(b)
