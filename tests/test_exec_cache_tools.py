"""Tests for cache maintenance, the codec-backed cache store, and the
single-run cache port."""

import argparse
import pickle

from repro.exec import (
    ResultCache,
    SweepSpec,
    add_exec_arguments,
    apply_cache_maintenance,
    cached_point_labels,
    run_cached_single,
    run_sweep,
)


def fabricate(root, fingerprint, name="spec", payload=b"x",
              filename="entry.res"):
    tree = root / fingerprint / name
    tree.mkdir(parents=True, exist_ok=True)
    (tree / filename).write_bytes(payload)


class TestEviction:
    def test_evict_stale_keeps_current_fingerprint(self, tmp_path):
        cache = ResultCache(tmp_path)
        fabricate(tmp_path, cache.fingerprint)
        fabricate(tmp_path, "deadbeefdeadbeef")
        fabricate(tmp_path, "0123456789abcdef")
        assert cache.evict_stale() == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            cache.fingerprint
        ]
        # Idempotent.
        assert cache.evict_stale() == 0

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        fabricate(tmp_path, cache.fingerprint)
        fabricate(tmp_path, "deadbeefdeadbeef")
        assert cache.clear() == 2
        assert list(tmp_path.iterdir()) == []
        assert cache.clear() == 0

    def test_missing_root_is_harmless(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.evict_stale() == 0
        assert cache.clear() == 0


def identity_point(config, seed):
    return config["payload"]


class TestCodecBackedCache:
    #: A payload exercising every codec shape: scalars, arrays, nesting.
    PAYLOAD = {
        "samples": [0.25 * i for i in range(64)],
        "counts": list(range(32)),
        "nested": {"label": ("a", 1, 2.5), "flag": True, "none": None},
        "big": 1 << 80,
        "text": "χ² ≤ ∞",
    }

    def test_round_trip_equality_through_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("spec", 0, {"payload": self.PAYLOAD}, self.PAYLOAD)
        hit, value = cache.get("spec", 0, {"payload": self.PAYLOAD})
        assert hit
        assert value == self.PAYLOAD
        assert type(value["nested"]["label"]) is tuple
        assert list(value) == list(self.PAYLOAD), "dict order not preserved"

    def test_entries_are_codec_files_not_pickles(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("spec", 0, {}, {"x": 1.0})
        (entry,) = tmp_path.rglob("*.res")
        assert entry.read_bytes()[:4] == b"RXC1"
        assert not list(tmp_path.rglob("*.pkl"))

    def test_old_format_pickle_entry_is_a_miss(self, tmp_path):
        # An entry written at the right path but in the pre-codec pickle
        # format must be recomputed, never unpickled as a hit.
        cache = ResultCache(tmp_path)
        cache.put("spec", 0, {"payload": 1}, 1)
        (entry,) = tmp_path.rglob("*.res")
        entry.write_bytes(pickle.dumps({"stale": "pickle"}))
        hit, value = cache.get("spec", 0, {"payload": 1})
        assert not hit and value is None

    def test_stale_fingerprint_eviction_sweeps_old_format_trees(
            self, tmp_path):
        # Old-format (.pkl) entries always live under a rotated
        # fingerprint -- the format change edited the repro sources --
        # so evict_stale removes them wholesale.
        cache = ResultCache(tmp_path)
        fabricate(tmp_path, "0ldc0de0ldc0de00",
                  payload=pickle.dumps({"legacy": True}),
                  filename="entry.pkl")
        fabricate(tmp_path, cache.fingerprint)
        assert cache.evict_stale() == 1
        assert not list(tmp_path.rglob("*.pkl"))
        assert list(tmp_path.rglob("*.res"))

    def test_iteration_api_ignores_old_format_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("spec", 0, {}, {"x": 1})
        fabricate(tmp_path, cache.fingerprint, name="legacy",
                  payload=b"old", filename="entry.pkl")
        assert cache.spec_names() == ["spec"]
        assert all(path.suffix == ".res"
                   for _, path in cache.iter_entries())

    def test_cached_point_labels_is_a_pure_existence_probe(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = SweepSpec(name="probe", run_point=identity_point)
        for tag in ("a", "b", "c"):
            spec.add(tag, payload=tag)
        run_sweep(spec, parallel=1, cache=cache, executor="serial")
        counters = (cache.hits, cache.misses, cache.writes)
        probe = SweepSpec(name="probe", run_point=identity_point)
        for tag in ("a", "b", "c", "d"):
            probe.add(tag, payload=tag)
        assert cached_point_labels(probe, cache) == ["a", "b", "c"]
        assert (cache.hits, cache.misses, cache.writes) == counters, (
            "the existence probe moved hit/miss counters"
        )


class TestCliMaintenance:
    def parse(self, argv):
        parser = argparse.ArgumentParser()
        add_exec_arguments(parser)
        return parser.parse_args(argv)

    def test_no_cache_dir_no_maintenance(self):
        assert apply_cache_maintenance(self.parse([])) is None

    def test_cache_clear_without_cache_dir_warns(self):
        summary = apply_cache_maintenance(self.parse(["--cache-clear"]))
        assert "no effect" in summary

    def test_stale_eviction_is_automatic(self, tmp_path):
        fabricate(tmp_path, "deadbeefdeadbeef")
        summary = apply_cache_maintenance(
            self.parse(["--cache-dir", str(tmp_path)])
        )
        assert "stale" in summary
        assert list(tmp_path.iterdir()) == []

    def test_cache_clear_wipes_all(self, tmp_path):
        cache = ResultCache(tmp_path)
        fabricate(tmp_path, cache.fingerprint)
        summary = apply_cache_maintenance(
            self.parse(["--cache-dir", str(tmp_path), "--cache-clear"])
        )
        assert "cleared" in summary
        assert list(tmp_path.iterdir()) == []


def _stateful_point(config, seed):
    # A deliberately impure point: proves the second call is a cache hit.
    _CALLS.append(config["tag"])
    return {"tag": config["tag"], "calls": len(_CALLS)}


_CALLS = []


class TestSingleRunCaching:
    # executor="serial" is pinned: these tests observe the in-process
    # _CALLS side effect, which a pool-based executor (e.g. a
    # REPRO_EXECUTOR CI override) would confine to a worker process.
    def test_run_cached_single_hits_cache(self, tmp_path):
        _CALLS.clear()
        first = run_cached_single("single", _stateful_point, {"tag": "a"},
                                  cache_dir=tmp_path, executor="serial")
        again = run_cached_single("single", _stateful_point, {"tag": "a"},
                                  cache_dir=tmp_path, executor="serial")
        assert first == again == {"tag": "a", "calls": 1}
        assert _CALLS == ["a"]
        # A different config is a different cache key.
        other = run_cached_single("single", _stateful_point, {"tag": "b"},
                                  cache_dir=tmp_path, executor="serial")
        assert other["tag"] == "b"
        assert _CALLS == ["a", "b"]

    def test_without_cache_dir_runs_inline(self):
        _CALLS.clear()
        run_cached_single("single", _stateful_point, {"tag": "c"},
                          executor="serial")
        run_cached_single("single", _stateful_point, {"tag": "c"},
                          executor="serial")
        assert _CALLS == ["c", "c"]


class TestPortedExperimentsCache:
    def test_figure_experiment_round_trips_the_cache(self, tmp_path):
        from repro.experiments.conference import run_conference

        cold = run_conference(seed=1, updates=3, reads=3,
                              cache_dir=str(tmp_path))
        warm = run_conference(seed=1, updates=3, reads=3,
                              cache_dir=str(tmp_path))
        assert cold.render() == warm.render()
        assert warm.data["converged"]
        # And the ported runner matches the pre-port (uncached) output.
        direct = run_conference(seed=1, updates=3, reads=3)
        assert direct.render() == cold.render()
