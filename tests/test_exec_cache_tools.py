"""Tests for cache maintenance and the single-run cache port."""

import argparse

from repro.exec import (
    ResultCache,
    add_exec_arguments,
    apply_cache_maintenance,
    run_cached_single,
)


def fabricate(root, fingerprint, name="spec", payload=b"x"):
    tree = root / fingerprint / name
    tree.mkdir(parents=True, exist_ok=True)
    (tree / "entry.pkl").write_bytes(payload)


class TestEviction:
    def test_evict_stale_keeps_current_fingerprint(self, tmp_path):
        cache = ResultCache(tmp_path)
        fabricate(tmp_path, cache.fingerprint)
        fabricate(tmp_path, "deadbeefdeadbeef")
        fabricate(tmp_path, "0123456789abcdef")
        assert cache.evict_stale() == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            cache.fingerprint
        ]
        # Idempotent.
        assert cache.evict_stale() == 0

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        fabricate(tmp_path, cache.fingerprint)
        fabricate(tmp_path, "deadbeefdeadbeef")
        assert cache.clear() == 2
        assert list(tmp_path.iterdir()) == []
        assert cache.clear() == 0

    def test_missing_root_is_harmless(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.evict_stale() == 0
        assert cache.clear() == 0


class TestCliMaintenance:
    def parse(self, argv):
        parser = argparse.ArgumentParser()
        add_exec_arguments(parser)
        return parser.parse_args(argv)

    def test_no_cache_dir_no_maintenance(self):
        assert apply_cache_maintenance(self.parse([])) is None

    def test_cache_clear_without_cache_dir_warns(self):
        summary = apply_cache_maintenance(self.parse(["--cache-clear"]))
        assert "no effect" in summary

    def test_stale_eviction_is_automatic(self, tmp_path):
        fabricate(tmp_path, "deadbeefdeadbeef")
        summary = apply_cache_maintenance(
            self.parse(["--cache-dir", str(tmp_path)])
        )
        assert "stale" in summary
        assert list(tmp_path.iterdir()) == []

    def test_cache_clear_wipes_all(self, tmp_path):
        cache = ResultCache(tmp_path)
        fabricate(tmp_path, cache.fingerprint)
        summary = apply_cache_maintenance(
            self.parse(["--cache-dir", str(tmp_path), "--cache-clear"])
        )
        assert "cleared" in summary
        assert list(tmp_path.iterdir()) == []


def _stateful_point(config, seed):
    # A deliberately impure point: proves the second call is a cache hit.
    _CALLS.append(config["tag"])
    return {"tag": config["tag"], "calls": len(_CALLS)}


_CALLS = []


class TestSingleRunCaching:
    def test_run_cached_single_hits_cache(self, tmp_path):
        _CALLS.clear()
        first = run_cached_single("single", _stateful_point, {"tag": "a"},
                                  cache_dir=tmp_path)
        again = run_cached_single("single", _stateful_point, {"tag": "a"},
                                  cache_dir=tmp_path)
        assert first == again == {"tag": "a", "calls": 1}
        assert _CALLS == ["a"]
        # A different config is a different cache key.
        other = run_cached_single("single", _stateful_point, {"tag": "b"},
                                  cache_dir=tmp_path)
        assert other["tag"] == "b"
        assert _CALLS == ["a", "b"]

    def test_without_cache_dir_runs_inline(self):
        _CALLS.clear()
        run_cached_single("single", _stateful_point, {"tag": "c"})
        run_cached_single("single", _stateful_point, {"tag": "c"})
        assert _CALLS == ["c", "c"]


class TestPortedExperimentsCache:
    def test_figure_experiment_round_trips_the_cache(self, tmp_path):
        from repro.experiments.conference import run_conference

        cold = run_conference(seed=1, updates=3, reads=3,
                              cache_dir=str(tmp_path))
        warm = run_conference(seed=1, updates=3, reads=3,
                              cache_dir=str(tmp_path))
        assert cold.render() == warm.render()
        assert warm.data["converged"]
        # And the ported runner matches the pre-port (uncached) output.
        direct = run_conference(seed=1, updates=3, reads=3)
        assert direct.render() == cold.render()
