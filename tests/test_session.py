"""Unit tests for session state and the coherence-model taxonomy."""

from repro.coherence.models import (
    CoherenceModel,
    SessionGuarantee,
    guarantees_subsumed_by,
    model_strength,
    residual_guarantees,
)
from repro.coherence.session import SessionState
from repro.coherence.vector_clock import VectorClock
from repro.core.ids import WriteId

RYW = SessionGuarantee.READ_YOUR_WRITES
MR = SessionGuarantee.MONOTONIC_READS
MW = SessionGuarantee.MONOTONIC_WRITES
WFR = SessionGuarantee.WRITES_FOLLOW_READS


class TestModelTaxonomy:
    def test_strength_order(self):
        order = [CoherenceModel.EVENTUAL, CoherenceModel.FIFO,
                 CoherenceModel.PRAM, CoherenceModel.CAUSAL,
                 CoherenceModel.SEQUENTIAL]
        strengths = [model_strength(m) for m in order]
        assert strengths == sorted(strengths)

    def test_sequential_subsumes_every_guarantee(self):
        assert guarantees_subsumed_by(CoherenceModel.SEQUENTIAL) == \
            frozenset(SessionGuarantee)

    def test_causal_subsumes_every_guarantee(self):
        assert guarantees_subsumed_by(CoherenceModel.CAUSAL) == \
            frozenset(SessionGuarantee)

    def test_pram_subsumes_only_monotonic_writes(self):
        assert guarantees_subsumed_by(CoherenceModel.PRAM) == frozenset({MW})

    def test_eventual_subsumes_nothing(self):
        assert guarantees_subsumed_by(CoherenceModel.EVENTUAL) == frozenset()

    def test_residual_guarantees(self):
        # The paper: "if only PRAM consistency is offered, a client may
        # decide to impose the Monotonic Reads model as well."
        residual = residual_guarantees(CoherenceModel.PRAM, {MW, MR})
        assert residual == {MR}


class TestSessionState:
    def test_mint_wid_sequential(self):
        session = SessionState("c")
        assert session.mint_wid() == WriteId("c", 1)
        assert session.mint_wid() == WriteId("c", 2)

    def test_read_requirement_empty_without_guarantees(self):
        session = SessionState("c")
        session.observe_write(WriteId("c", 1), "server")
        session.observe_read(VectorClock({"x": 4}))
        assert session.read_requirement() == VectorClock()

    def test_ryw_requirement_is_own_writes(self):
        session = SessionState("c", frozenset({RYW}))
        session.observe_write(WriteId("c", 3), "server")
        session.observe_read(VectorClock({"x": 4}))
        assert session.read_requirement() == VectorClock({"c": 3})

    def test_mr_requirement_is_read_vector(self):
        session = SessionState("c", frozenset({MR}))
        session.observe_read(VectorClock({"x": 4}))
        session.observe_read(VectorClock({"y": 2}))
        assert session.read_requirement() == VectorClock({"x": 4, "y": 2})

    def test_combined_requirement_merges(self):
        session = SessionState("c", frozenset({RYW, MR}))
        session.observe_write(WriteId("c", 1), "s")
        session.observe_read(VectorClock({"x": 2}))
        requirement = session.read_requirement()
        assert requirement.dominates(VectorClock({"c": 1, "x": 2}))

    def test_write_deps_none_without_wfr(self):
        session = SessionState("c", frozenset({RYW, MR, MW}))
        session.observe_read(VectorClock({"x": 1}))
        assert session.write_deps() is None

    def test_wfr_deps_include_reads_and_own_writes(self):
        session = SessionState("c", frozenset({WFR}))
        session.observe_read(VectorClock({"x": 2}))
        session.observe_write(WriteId("c", 1), "s")
        deps = session.write_deps()
        assert deps.dominates(VectorClock({"x": 2, "c": 1}))

    def test_observe_write_tracks_dependency_pair(self):
        # The paper's prototype stores (WiD, store_id) as the dependency.
        session = SessionState("m")
        session.observe_write(WriteId("m", 5), "web-server")
        assert session.last_write == WriteId("m", 5)
        assert session.last_write_store == "web-server"

    def test_to_wire_shape(self):
        session = SessionState("m", frozenset({RYW}))
        session.observe_write(WriteId("m", 2), "server")
        wire = session.to_wire()
        assert wire["client_id"] == "m"
        assert wire["last_write"] == "m:2"
        assert wire["requirement"] == {"m": 2}
        assert wire["guarantees"] == ["read-your-writes"]


class TestWireCache:
    def test_to_wire_is_cached_until_state_changes(self):
        session = SessionState("c", guarantees=frozenset({RYW, MR}))
        first = session.to_wire()
        assert session.to_wire() is first  # cached by reference

    def test_observe_write_invalidates(self):
        session = SessionState("c", guarantees=frozenset({RYW}))
        before = session.to_wire()
        session.observe_write(session.mint_wid(), "store")
        after = session.to_wire()
        assert after is not before
        assert after["last_write"] != before["last_write"]

    def test_observe_read_invalidates_only_on_merge_change(self):
        session = SessionState("c", guarantees=frozenset({MR}))
        session.observe_read(VectorClock({"x": 4}))
        cached = session.to_wire()
        # A dominated version changes nothing: the cache survives.
        session.observe_read(VectorClock({"x": 3}))
        assert session.to_wire() is cached
        # A newer component must rebuild the requirement.
        session.observe_read(VectorClock({"x": 5}))
        fresh = session.to_wire()
        assert fresh is not cached
        assert fresh["requirement"] != cached["requirement"]

    def test_with_guarantees_invalidates(self):
        session = SessionState("c")
        before = session.to_wire()
        widened = session.with_guarantees({MR})
        assert widened.to_wire() is not before
        assert widened.to_wire()["guarantees"] == ["monotonic-reads"]

    def test_wire_sized_matches_fresh_walk(self):
        from repro.comm.message import estimate_size

        session = SessionState("c", guarantees=frozenset({RYW, MR, WFR}))
        session.observe_write(session.mint_wid(), "store")
        session.observe_read(VectorClock({"c": 1, "x": 9}))
        wire, size = session.wire_sized()
        assert size == estimate_size(wire)
