"""Tests for the experiment-runner CLI module."""

from repro.experiments.__main__ import RUNNERS, main


def test_all_experiment_ids_registered():
    assert set(RUNNERS) == {
        "t1", "t2", "f1", "f2", "f3", "f4",
        "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10",
        "x11", "x12", "x13",
    }


def test_selected_experiment_runs(capsys):
    assert main(["t1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Consistency propagation" in out


def test_unknown_id_rejected(capsys):
    assert main(["nope"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiment ids" in out


def test_case_insensitive(capsys):
    assert main(["T1"]) == 0
