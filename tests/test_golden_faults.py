"""Golden fault parity: one fault plan, two substrates, one behaviour.

The acceptance claim of the fault layer: a :class:`~repro.faults.plan.
FaultPlan` (partition 2s -> heal, one crash/restart), applied at
convergence barriers over a scripted workload, produces the identical
time-free coherence signature on ``backend="sim"`` and
``backend="live"`` -- and that signature is pinned byte-for-byte in
``tests/golden/fault_smoke_signature.json`` so a protocol change under
faults cannot slip through as "both backends drifted the same way".

Regenerate the golden file after an *intended* protocol change with::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.faults.scenario import fault_smoke_point
    out = fault_smoke_point({"backend": "sim", "seed": 7}, seed=0)
    sig = json.loads(json.dumps(out["signature"], sort_keys=True))
    with open("tests/golden/fault_smoke_signature.json", "w") as fh:
        json.dump(sig, fh, indent=1, sort_keys=True)
        fh.write("\\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.faults.scenario import fault_smoke_point

SEED = 7

GOLDEN = Path(__file__).parent / "golden" / "fault_smoke_signature.json"


def canonical(signature):
    """JSON round-trip: tuples become lists, keys sort stably."""
    return json.loads(json.dumps(signature, sort_keys=True))


class TestGoldenFaultParity:
    @pytest.fixture(scope="class")
    def outcomes(self):
        config = {"seed": SEED}
        return {
            backend: fault_smoke_point(dict(config, backend=backend), seed=0)
            for backend in ("sim", "live")
        }

    def test_scenario_phases_complete_on_both_backends(self, outcomes):
        for backend, outcome in outcomes.items():
            assert outcome["converged_initial"], backend
            assert outcome["warm_reads_ok"], backend
            assert outcome["converged_during_partition"], backend
            assert outcome["stale_read_under_partition"], (
                f"{backend}: the cut cache should have served stale state"
            )
            assert outcome["recovered_after_heal"], backend
            assert outcome["converged_during_crash"], backend
            assert outcome["unavailable_reads"] == 1, (
                f"{backend}: the read into the crashed cache should fail"
            )
            assert outcome["demand_refresh_ok"], (
                f"{backend}: the RYW read should demand the missed write"
            )
            assert outcome["recovered_after_restart"], backend

    def test_crash_drops_counted_identically(self, outcomes):
        assert (
            outcomes["sim"]["dropped_crashed"]
            == outcomes["live"]["dropped_crashed"]
            > 0
        )

    def test_final_versions_identical_and_converged(self, outcomes):
        assert outcomes["sim"]["versions"] == outcomes["live"]["versions"]
        assert all(
            version == {"master": 3}
            for version in outcomes["sim"]["versions"].values()
        )

    def test_signatures_match_across_backends(self, outcomes):
        sim_signature = canonical(outcomes["sim"]["signature"])
        live_signature = canonical(outcomes["live"]["signature"])
        assert sorted(sim_signature) == sorted(live_signature)
        for lane in sim_signature:
            assert sim_signature[lane] == live_signature[lane], (
                f"fault scenario diverged between backends in lane {lane}"
            )

    def test_signature_matches_golden_file(self, outcomes):
        golden = json.loads(GOLDEN.read_text())
        assert canonical(outcomes["sim"]["signature"]) == golden, (
            "the fault scenario's coherence history changed; if this is "
            "an intended protocol change, regenerate the golden file "
            "(see module docstring)"
        )
