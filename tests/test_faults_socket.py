"""Process-kill fault semantics on the socket backend.

On ``backend="live-socket"`` the fault plan grows real teeth: CrashNode
SIGKILLs the store's OS process and RestartNode re-spawns it from its
last checkpoint.  These tests assert (a) the process-level mechanics --
the PID actually dies, the registry notices, the restart produces a new
process that re-attaches -- and (b) the semantics: the replayed X12
scenario must produce the same drop counters and the same time-free
coherence signature as the in-process thread backend, byte-pinned by
``tests/golden/fault_smoke_signature.json``.

The full scenario runs under a hard wall-clock alarm so a hung heal or
restart fails the test instead of stalling the suite.
"""

import json
import os
import signal
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.faults.scenario import fault_smoke_point
from repro.replication.policy import ReplicationPolicy
from repro.workload.scenarios import build_tree

SEED = 7

GOLDEN = Path(__file__).parent / "golden" / "fault_smoke_signature.json"

#: Hard wall-clock budget for one full X12 scenario run (seconds).  The
#: scenario itself finishes in ~2s; the margin covers loaded CI workers.
SOAK_BUDGET = 120


@contextmanager
def wall_clock_deadline(seconds):
    """Raise ``TimeoutError`` if the body runs longer than ``seconds``."""

    def expired(signum, frame):
        raise TimeoutError(f"fault soak exceeded {seconds}s wall clock")

    previous = signal.signal(signal.SIGALRM, expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def canonical(signature):
    """JSON round-trip: tuples become lists, keys sort stably."""
    return json.loads(json.dumps(signature, sort_keys=True))


class TestProcessKillMechanics:
    """CrashNode/RestartNode against real PIDs, driven directly."""

    @pytest.fixture()
    def deployment(self):
        deployment = build_tree(
            policy=ReplicationPolicy(),
            n_caches=2,
            n_readers_per_cache=1,
            pages={"index.html": "<h1>faults</h1>"},
            seed=SEED,
            backend="live-socket",
            request_timeout=0.5,
        )
        yield deployment
        deployment.shutdown()

    def test_crash_node_sigkills_the_real_process(self, deployment):
        hub = deployment.backend.hub
        victim = "cache-1"
        pid = hub.node_pid(victim)
        os.kill(pid, 0)  # alive before the fault
        deployment.network.crash_node(victim)
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
        assert victim not in hub.registry.names()
        assert hub.channel_for(victim) is None

    def test_traffic_into_crashed_node_is_counted_dropped(self, deployment):
        victim = "cache-1"
        deployment.network.crash_node(victim)
        before = deployment.network.stats.datagrams_dropped_crashed
        master = deployment.browsers["master"]
        future = deployment.call(master.write_page, "index.html", "<h1>w</h1>")
        deployment.wait(future, timeout=10.0)
        assert deployment.wait_until(
            lambda: deployment.network.stats.datagrams_dropped_crashed
            > before,
            timeout=10.0,
        ), "propagation toward the dead process must count as crash-dropped"

    def test_restart_respawns_new_pid_and_reattaches(self, deployment):
        hub = deployment.backend.hub
        victim = "cache-1"
        old_pid = hub.node_pid(victim)
        deployment.network.crash_node(victim)
        deployment.network.restart_node(victim)
        new_pid = hub.node_pid(victim)
        assert new_pid != old_pid
        os.kill(new_pid, 0)
        assert victim in hub.registry.names()
        assert hub.registry.alive(victim, now=time.monotonic())

    def test_restarted_replica_recovers_from_checkpoint(self, deployment):
        victim = "cache-1"
        master = deployment.browsers["master"]
        future = deployment.call(master.write_page, "index.html", "<h1>1</h1>")
        deployment.wait(future, timeout=10.0)
        assert deployment.wait_until(
            lambda: all(
                engine.version().get("master", 0) == 1
                for engine in deployment.engines
            ),
            timeout=10.0,
        )
        deployment.network.crash_node(victim)
        # A write while the replica is down is dropped toward it.
        future = deployment.call(master.write_page, "index.html", "<h1>2</h1>")
        deployment.wait(future, timeout=10.0)
        deployment.network.restart_node(victim)
        engine = deployment.site.dso.stores[victim].engine
        # The checkpointed state survived the SIGKILL...
        assert engine.version().get("master", 0) >= 1
        # ...and a demand pulls in what the outage dropped.
        engine.reads.demand(want_full=True)
        assert deployment.wait_until(
            lambda: engine.version().get("master", 0) == 2, timeout=10.0
        ), "restarted replica must catch up via demand"


class TestFaultSoakParity:
    """The scripted X12 scenario, replayed with real process kills."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        with wall_clock_deadline(SOAK_BUDGET):
            return {
                backend: fault_smoke_point(
                    {"backend": backend, "seed": SEED}, seed=0
                )
                for backend in ("live", "live-socket")
            }

    def test_scenario_phases_complete(self, outcomes):
        for backend, outcome in outcomes.items():
            assert outcome["converged_initial"], backend
            assert outcome["stale_read_under_partition"], backend
            assert outcome["recovered_after_heal"], backend
            assert outcome["converged_during_crash"], backend
            assert outcome["unavailable_reads"] == 1, backend
            assert outcome["demand_refresh_ok"], backend
            assert outcome["recovered_after_restart"], backend

    def test_drop_counters_match_thread_backend(self, outcomes):
        thread, sock = outcomes["live"], outcomes["live-socket"]
        assert sock["dropped_crashed"] == thread["dropped_crashed"] > 0
        assert sock["dropped_partition"] == thread["dropped_partition"]
        assert sock["unavailable_reads"] == thread["unavailable_reads"]

    def test_final_versions_identical(self, outcomes):
        assert (
            outcomes["live"]["versions"] == outcomes["live-socket"]["versions"]
        )

    def test_signature_matches_pinned_golden(self, outcomes):
        golden = json.loads(GOLDEN.read_text())
        for backend, outcome in outcomes.items():
            assert canonical(outcome["signature"]) == golden, (
                f"{backend}: fault scenario diverged from the golden "
                "signature (tests/golden/fault_smoke_signature.json)"
            )
