"""Tests for the compact binary payload codec (``repro.exec.codec``)."""

import dataclasses
import math
import pickle

import pytest

from repro.exec.codec import MAGIC, CodecError, decode_result, encode_result


def roundtrip(value):
    return decode_result(encode_result(value))


class TestRoundTrip:
    @pytest.mark.parametrize("value", [
        None, True, False,
        0, 1, -1, 2**62, -(2**62), 2**100, -(2**100),
        0.0, -0.0, 1.5, -2.25, 1e308, 5e-324,
        "", "plain", "χ² ≤ ∞ ☃",
        b"", b"\x00\xffraw",
        [], (), {}, [1, "two", 3.0, None], (True, [2], {"k": (3,)}),
        {"a": 1, "b": [2.5], "c": {"d": None}},
    ])
    def test_plain_data(self, value):
        result = roundtrip(value)
        assert result == value
        assert type(result) is type(value)

    def test_signed_zero_and_specials_survive(self):
        assert math.copysign(1.0, roundtrip(-0.0)) == -1.0
        assert roundtrip(float("inf")) == float("inf")
        assert math.isnan(roundtrip(float("nan")))

    def test_float_arrays_keep_container_type(self):
        floats = [0.1 * i for i in range(100)]
        assert roundtrip(floats) == floats
        assert roundtrip(tuple(floats)) == tuple(floats)

    def test_int_arrays_keep_container_type(self):
        ints = list(range(-50, 50))
        assert roundtrip(ints) == ints
        assert roundtrip(tuple(ints)) == tuple(ints)

    def test_mixed_and_oversized_int_sequences_fall_back(self):
        mixed = [1, 2.0, "three", None, True] * 10
        assert roundtrip(mixed) == mixed
        huge = [2**70] * 10
        assert roundtrip(huge) == huge

    def test_bools_never_masquerade_as_array_ints(self):
        flags = [True, False, True, False, True]
        result = roundtrip(flags)
        assert result == flags
        assert all(type(item) is bool for item in result)

    def test_bytearray_round_trips_as_bytearray(self):
        # Mutable buffers ride the pickle frame, not the bytes tag:
        # decoding them as bytes would silently freeze them.
        value = {"buf": bytearray(b"mutable")}
        result = roundtrip(value)
        assert result == value
        assert type(result["buf"]) is bytearray

    def test_dict_insertion_order_preserved(self):
        mapping = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(mapping)) == ["z", "a", "m"]

    def test_non_string_dict_keys(self):
        mapping = {("strategy", 4): 1.5, 7: "seven"}
        assert roundtrip(mapping) == mapping

    def test_arbitrary_objects_ride_pickle_frames(self):
        value = {"metrics": Metrics(3, [1.0, 2.0]), "n": 3}
        result = roundtrip(value)
        assert result["metrics"] == Metrics(3, [1.0, 2.0])
        assert result["n"] == 3


class TestDeterminism:
    def test_same_value_same_bytes(self):
        value = {"samples": [0.5 * i for i in range(64)],
                 "nested": {"k": (1, 2, 3)}}
        assert encode_result(value) == encode_result(value)

    def test_reencode_after_roundtrip_is_identical(self):
        value = {"a": [1.0] * 32, "b": {"c": "x", "d": 2**80}}
        blob = encode_result(value)
        assert encode_result(decode_result(blob)) == blob

    def test_large_float_arrays_are_denser_than_pickle(self):
        samples = [0.001 * i for i in range(10_000)]
        blob = encode_result(samples)
        assert len(blob) < len(pickle.dumps(samples, protocol=5))
        # 8 bytes per element plus a constant-size header.
        assert len(blob) <= 8 * len(samples) + 16


class TestStrictDecode:
    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            decode_result(b"NOPE" + b"N")

    def test_empty_input_rejected(self):
        with pytest.raises(CodecError):
            decode_result(b"")

    def test_truncated_payload_rejected(self):
        blob = encode_result([1.0] * 100)
        with pytest.raises(CodecError):
            decode_result(blob[:-5])

    def test_trailing_garbage_rejected(self):
        blob = encode_result({"a": 1})
        with pytest.raises(CodecError):
            decode_result(blob + b"junk")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            decode_result(MAGIC + b"?")

    def test_corrupt_pickle_frame_rejected(self):
        blob = bytearray(encode_result(Metrics(1, [2.0])))
        # The frame's final byte is pickle's STOP opcode; 0x00 is not a
        # valid opcode, so loading must fail loudly.
        blob[-1] = 0x00
        with pytest.raises(CodecError):
            decode_result(bytes(blob))


@dataclasses.dataclass
class Metrics:
    """Module-level stand-in for RunMetrics-style payloads (picklable)."""

    count: int
    samples: list
