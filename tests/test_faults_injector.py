"""Tests for the fault injector: timed and stepped execution, windows."""

import pytest

from repro.faults.catalog import FAULT_PLANS, build_fault_plan, get_fault_plan
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashNode,
    FaultPlan,
    Heal,
    LossBurst,
    Partition,
    RestartNode,
)
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng


def make_net(sim):
    net = Network(sim, latency=ConstantLatency(0.01))
    received = []
    for name in ("a", "b"):
        net.register(
            name,
            lambda src, payload, size: received.append((src, payload)),
        )
    return net, received


PLAN = FaultPlan(events=(
    Partition(at=1.0, side_a=("a",), side_b=("b",)),
    Heal(at=2.0, side_a=("a",), side_b=("b",)),
    CrashNode(at=3.0, node="b"),
    RestartNode(at=4.0, node="b"),
))


def test_timed_plan_executes_at_plan_times():
    sim = Simulator()
    net, received = make_net(sim)
    injector = FaultInjector(sim, net, PLAN)
    injector.start()
    sim.run(until=1.5)
    assert net.partitioned("a", "b")
    net.send("a", "b", "queued")
    sim.run(until=2.5)
    assert not net.partitioned("a", "b")
    assert [p for _, p in received] == ["queued"]
    sim.run(until=3.5)
    assert net.is_crashed("b")
    sim.run_until_idle()
    assert not net.is_crashed("b")
    assert [round(t, 6) for t, _ in injector.applied] == [1.0, 2.0, 3.0, 4.0]


def test_timed_events_keep_a_drain_run_alive():
    # Non-daemon scheduling: run_until_idle must not stop before the
    # heal fires, or queued traffic would leak past the end of a sweep.
    sim = Simulator()
    net, received = make_net(sim)
    injector = FaultInjector(sim, net, PLAN)
    injector.start()
    net.send("a", "b", "early")
    sim.run_until_idle()
    assert sim.now >= 4.0
    assert [p for _, p in received] == ["early"]


def test_stepped_mode_applies_in_order_and_ignores_times():
    sim = Simulator()
    net, _ = make_net(sim)
    injector = FaultInjector(sim, net, PLAN)
    assert isinstance(injector.step(), Partition)
    assert net.partitioned("a", "b")
    assert isinstance(injector.step(), Heal)
    assert isinstance(injector.step(), CrashNode)
    assert isinstance(injector.step(), RestartNode)
    assert injector.step() is None
    assert injector.exhausted


def test_step_after_start_rejected():
    sim = Simulator()
    net, _ = make_net(sim)
    injector = FaultInjector(sim, net, PLAN)
    injector.start()
    with pytest.raises(RuntimeError, match="after start"):
        injector.step()


def test_loss_burst_sets_and_restores_rate():
    sim = Simulator()
    net, _ = make_net(sim)
    injector = FaultInjector(sim, net, FaultPlan(events=(
        LossBurst(at=1.0, duration=2.0, loss_rate=0.5),
    )))
    injector.start()
    sim.run(until=1.5)
    assert net.loss_rate == 0.5
    sim.run_until_idle()
    assert net.loss_rate == 0.0


def test_cancel_stops_pending_events():
    sim = Simulator()
    net, _ = make_net(sim)
    injector = FaultInjector(sim, net, PLAN)
    injector.start()
    sim.run(until=1.5)
    injector.cancel()
    sim.run_until_idle()
    # The heal never fired: the partition survives.
    assert net.partitioned("a", "b")
    assert len(injector.applied) == 1


def test_partition_and_outage_windows():
    sim = Simulator()
    net, _ = make_net(sim)
    injector = FaultInjector(sim, net, PLAN)
    injector.start()
    sim.run_until_idle()
    assert injector.partition_windows(until=10.0) == [(1.0, 2.0)]
    assert injector.outage_windows(until=10.0) == [(3.0, 4.0)]
    assert injector.recovery_marks() == [2.0, 4.0]
    assert injector.cut_windows(until=10.0) == [
        (1.0, 2.0, (frozenset({"a"}), frozenset({"b"}))),
    ]


def test_cut_windows_track_partial_heals_independently():
    sim = Simulator()
    net, _ = make_net(sim)
    first = (("a",), ("b",))
    second = (("a",), ("c",))
    injector = FaultInjector(sim, net, FaultPlan(events=(
        Partition(at=1.0, side_a=first[0], side_b=first[1]),
        Partition(at=2.0, side_a=second[0], side_b=second[1]),
        Heal(at=3.0, side_a=first[1], side_b=first[0]),  # reversed sides
        Heal(at=5.0),
    )))
    injector.start()
    sim.run_until_idle()
    assert injector.cut_windows(until=10.0) == [
        (1.0, 3.0, (frozenset({"a"}), frozenset({"b"}))),
        (2.0, 5.0, (frozenset({"a"}), frozenset({"c"}))),
    ]


def test_open_windows_clip_at_until():
    sim = Simulator()
    net, _ = make_net(sim)
    injector = FaultInjector(sim, net, FaultPlan(events=(
        Partition(at=1.0, side_a=("a",), side_b=("b",)),
        CrashNode(at=2.0, node="b"),
    )))
    injector.start()
    sim.run_until_idle()
    assert injector.partition_windows(until=5.0) == [(1.0, 5.0)]
    assert injector.outage_windows(until=5.0) == [(2.0, 5.0)]
    assert injector.recovery_marks() == []


def test_catalog_plans_build_for_any_tree():
    nodes = ["server", "cache-0", "cache-1", "cache-2"]
    for name in FAULT_PLANS:
        plan = build_fault_plan(name, nodes, SeededRng(1))
        assert plan == build_fault_plan(name, nodes, SeededRng(1)), name
        for event in plan.events:
            if isinstance(event, (CrashNode, RestartNode)):
                assert event.node != "server", (
                    f"{name}: the permanent store must never go down"
                )


def test_catalog_unknown_name_lists_registry():
    with pytest.raises(KeyError, match="registered:"):
        get_fault_plan("nope")
