"""Tests for the wall-clock (threaded) runtime.

Kept fast: every wait is bounded and the loops are stopped in teardown.
"""

import threading
import time

import pytest

from repro.coherence.models import SessionGuarantee
from repro.coherence.trace import TraceRecorder
from repro.comm.invocation import MarshalledInvocation
from repro.core.interfaces import Role
from repro.core.local_object import LocalObject
from repro.replication.client import ClientReplicationObject
from repro.replication.engine import StoreReplicationObject
from repro.replication.policy import ReplicationPolicy
from repro.runtime.live import LiveLoop, LiveNetwork
from repro.web.document import WebDocument


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture
def loop():
    loop = LiveLoop(seed=1)
    loop.start()
    yield loop
    loop.stop()


class TestLiveLoop:
    def test_submit_runs_on_dispatcher(self, loop):
        seen = []
        loop.submit(seen.append, threading.current_thread().name)
        assert wait_for(lambda: len(seen) == 1)
        assert seen[0] != threading.current_thread().name or True
        # The callback ran on the dispatcher thread, not this one.
        ran_on = []
        loop.submit(lambda: ran_on.append(threading.current_thread().name))
        assert wait_for(lambda: ran_on)
        assert ran_on[0] == "repro-live-loop"

    def test_schedule_respects_delay(self, loop):
        stamps = []
        start = loop.now
        loop.schedule(0.05, lambda: stamps.append(loop.now))
        assert wait_for(lambda: stamps)
        assert stamps[0] - start >= 0.045

    def test_cancel_prevents_firing(self, loop):
        fired = []
        event = loop.schedule(0.05, fired.append, 1)
        event.cancel()
        time.sleep(0.15)
        assert fired == []

    def test_exception_does_not_kill_dispatcher(self, loop):
        def boom():
            raise RuntimeError("callback bug")

        survived = []
        loop.submit(boom)
        loop.schedule(0.02, survived.append, 1)
        assert wait_for(lambda: survived)

    def test_stop_joins_a_busy_dispatcher(self):
        # Regression: stop() used to give up after its idle timeout even
        # when the dispatcher was mid-callback, leaving a live thread
        # mutating protocol state behind a "stopped" runtime.
        busy_loop = LiveLoop(seed=1)
        busy_loop.start()
        entered = threading.Event()
        release = threading.Event()

        def long_callback():
            entered.set()
            release.wait(5.0)

        busy_loop.submit(long_callback)
        assert entered.wait(5.0), "callback must be running before stop()"
        thread = busy_loop._thread
        threading.Timer(0.3, release.set).start()
        # The idle budget is far shorter than the callback; stop() must
        # nevertheless wait the callback out and join the thread.
        busy_loop.stop(timeout=0.05)
        assert release.is_set()
        assert not thread.is_alive(), (
            "stop() returned while the dispatcher thread was still running"
        )


class TestLiveNetwork:
    def test_delivery(self, loop):
        net = LiveNetwork(loop, latency=0.0)
        received = []
        net.register("b", lambda src, payload, size: received.append(payload))
        net.send("a", "b", "hello")
        assert wait_for(lambda: received == ["hello"])

    def test_unregistered_destination_dropped(self, loop):
        net = LiveNetwork(loop)
        net.send("a", "nowhere", "x")
        time.sleep(0.05)  # nothing to assert but must not raise

    def test_partition_queues_reliable_and_heal_flushes(self, loop):
        net = LiveNetwork(loop, latency=0.0)
        received = []
        net.register("a", lambda src, payload, size: None)
        net.register("b", lambda src, payload, size: received.append(payload))
        loop.submit(net.partition, ["a"], ["b"])  # mutate on dispatcher
        assert wait_for(lambda: net.partitioned("a", "b"))
        net.send("a", "b", "queued", reliable=True)
        net.send("a", "b", "lost", reliable=False)
        time.sleep(0.05)
        assert received == []
        assert net.stats.datagrams_dropped_partition == 1
        loop.submit(net.heal)
        assert wait_for(lambda: received == ["queued"])
        assert net.stats.datagrams_delivered == 1

    def test_crash_drops_and_restart_resumes(self, loop):
        net = LiveNetwork(loop, latency=0.0)
        received = []
        net.register("b", lambda src, payload, size: received.append(payload))
        loop.submit(net.crash_node, "b")
        assert wait_for(lambda: net.is_crashed("b"))
        net.send("a", "b", "while-down")
        time.sleep(0.05)
        assert received == []
        assert net.stats.datagrams_dropped_crashed == 1
        loop.submit(net.restart_node, "b")
        assert wait_for(lambda: not net.is_crashed("b"))
        net.send("a", "b", "after-restart")
        assert wait_for(lambda: received == ["after-restart"])

    def test_stats_fields_match_the_sim_network(self, loop):
        import dataclasses

        from repro.net.network import Network, NetworkStats
        from repro.sim.kernel import Simulator

        live = LiveNetwork(loop)
        sim_net = Network(Simulator())
        fields = {f.name for f in dataclasses.fields(NetworkStats)}
        assert {f.name for f in dataclasses.fields(live.stats)} == fields
        assert {f.name for f in dataclasses.fields(sim_net.stats)} == fields
        assert {
            "datagrams_dropped_partition", "datagrams_dropped_crashed",
            "datagrams_dropped_loss",
        } <= fields


class TestLiveEndToEnd:
    def test_write_propagates_and_ryw_read_serves(self, loop):
        net = LiveNetwork(loop, latency=0.005)
        trace = TraceRecorder()
        policy = ReplicationPolicy()
        doc = WebDocument(pages={"p": "seed"}, clock=lambda: loop.now)
        server = LocalObject(loop, net, "server", Role.PERMANENT,
                             StoreReplicationObject(policy, Role.PERMANENT,
                                                    trace=trace),
                             semantics=doc)
        cache = LocalObject(loop, net, "cache", Role.CLIENT_INITIATED,
                            StoreReplicationObject(
                                policy, Role.CLIENT_INITIATED,
                                parent="server", trace=trace),
                            semantics=doc.fresh())
        server.replication.subscribe_child("cache")
        client = LocalObject(
            loop, net, "c-space", Role.CLIENT,
            ClientReplicationObject(
                "writer", read_store="cache", write_store="server",
                policy=policy,
                guarantees=(SessionGuarantee.READ_YOUR_WRITES,),
                trace=trace))

        write_holder = {}
        loop.submit(lambda: write_holder.update(f=client.control.invoke(
            MarshalledInvocation("write_page", ("p", "live"),
                                 read_only=False))))
        assert wait_for(lambda: "f" in write_holder and write_holder["f"].done)
        assert write_holder["f"].result().seqno == 1

        read_holder = {}
        loop.submit(lambda: read_holder.update(f=client.control.invoke(
            MarshalledInvocation("read_page", ("p",)))))
        assert wait_for(lambda: "f" in read_holder and read_holder["f"].done)
        assert read_holder["f"].result()["content"] == "live"
