"""Integration tests: every experiment runs and its headline claims hold.

These are the repository's reproduction gates: each test pins the
qualitative *shape* the paper argues for (who wins, in which regime),
not absolute numbers.
"""

from repro.experiments.conference import run_conference, run_fig4_wid_flow
from repro.experiments.endtoend import run_endtoend
from repro.experiments.figures import run_fig1, run_fig2
from repro.experiments.model_costs import MODEL_ORDER, run_model_costs
from repro.experiments.per_object import run_per_object
from repro.experiments.sessions import run_sessions
from repro.experiments.sweeps import (
    run_initiative_and_transfer,
    run_propagation,
    run_transfer_instant,
)
from repro.experiments.tables import run_table1, run_table2


class TestTables:
    def test_table1_regenerates_all_seven_parameters(self):
        result = run_table1()
        assert result.data["parameter_count"] == 7
        assert result.data["value_space"] >= 2 * 3 * 2 * 2 * 2 * 2 * 3
        assert "Consistency propagation" in result.render()

    def test_table2_matches_paper(self):
        result = run_table2()
        rendered = result.render()
        for expected in ("update", "all", "single", "push", "partial",
                         "wait", "demand"):
            assert expected in rendered
        assert result.data["model"] == "pram"


class TestConference:
    def test_prototype_scenario_holds(self):
        result = run_conference(seed=1, updates=6, reads=8)
        assert result.data["pram_violations"] == []
        assert result.data["ryw_violations"] == []
        # RYW is delivered via demand-updates from cache M.
        assert result.data["demand_from_cache_m"] >= 1
        assert result.data["converged"]

    def test_wid_vectors_advance_in_lockstep(self):
        result = run_fig4_wid_flow(seed=2)
        assert result.data["vectors"] == [(1, 1, 1), (2, 2, 2), (3, 3, 3)]
        assert result.data["pram_violations"] == []


class TestFigures:
    def test_fig1_composition(self):
        result = run_fig1(seed=1)
        assert result.data["n_spaces"] >= 4
        assert "client-initiated" in result.data["store_roles"]

    def test_fig2_staleness_grows_down_the_layers(self):
        result = run_fig2(seed=1)
        layers = result.data["layers"]
        permanent = layers["permanent"]["time_lag"]
        caches = layers["client-initiated"]["time_lag"]
        assert permanent <= caches, (
            "the permanent layer must be at least as fresh as the caches"
        )
        assert not layers["client-initiated"]["enforced"]
        assert layers["permanent"]["enforced"]


class TestSweeps:
    def test_x1_lazy_cuts_messages_and_adds_staleness(self):
        result = run_transfer_instant(seed=1, writes=30, n_caches=6,
                                      lazy_intervals=(5.0,))
        measured = result.data["measured"]
        immediate = measured["immediate"]
        lazy = measured["lazy (5s)"]
        assert lazy.traffic.coherence_messages < \
            immediate.traffic.coherence_messages
        assert lazy.mean_time_lag > immediate.mean_time_lag

    def test_x2_invalidate_wins_bytes_at_low_read_ratio(self):
        result = run_propagation(seed=1, writes=24, read_ratios=(0.2, 5.0))
        measured = result.data["measured"]
        low_update = measured[(0.2, "update")].traffic.bytes_sent
        low_invalidate = measured[(0.2, "invalidate")].traffic.bytes_sent
        assert low_invalidate < low_update
        # At high read ratios the gap narrows or reverses on latency.
        high_update = measured[(5.0, "update")].mean_read_latency
        high_invalidate = measured[(5.0, "invalidate")].mean_read_latency
        assert high_update <= high_invalidate

    def test_x6_partial_ships_fewer_bytes_than_full(self):
        result = run_initiative_and_transfer(seed=1, writes=12, n_caches=3)
        measured = result.data["measured"]
        partial = measured[("push", "immediate", "partial", "partial")]
        full = measured[("push", "immediate", "full", "full")]
        assert partial.traffic.bytes_sent < full.traffic.bytes_sent / 2

    def test_x6_pull_on_access_costs_read_latency(self):
        result = run_initiative_and_transfer(seed=1, writes=12, n_caches=3)
        measured = result.data["measured"]
        push = measured[("push", "immediate", "partial", "partial")]
        pull = measured[("pull", "immediate", "partial", "partial")]
        assert pull.mean_read_latency > push.mean_read_latency


class TestModelCosts:
    def test_ladder_shape(self):
        result = run_model_costs(seed=1, writes_per_writer=8, n_writers=2,
                                 n_caches=2, reads_per_client=6)
        measured = result.data["measured"]
        # Strong models forward writes to the primary; eventual accepts
        # locally, so its writes are strictly cheaper in latency.
        seq_lat = measured["sequential"]["metrics"].mean_write_latency
        evt_lat = measured["eventual"]["metrics"].mean_write_latency
        assert evt_lat < seq_lat
        # Everything converges by content.
        for model in MODEL_ORDER:
            assert measured[model.value]["converged"], model
        # Strong models never violate PRAM.
        for name in ("sequential", "causal", "pram"):
            assert measured[name]["pram_violations"] == 0


class TestPerObject:
    def test_framework_beats_global_strategies(self):
        result = run_per_object(seed=1)
        measured = result.data["measured"]
        fw_origin, fw_stale, fw_latency = measured["per-object (framework)"]
        va_origin, va_stale, va_latency = measured["global validation"]
        ttl_origin, ttl_stale, ttl_latency = measured["global TTL (8s)"]
        # Less origin load than validation, fresher than TTL.
        assert fw_origin < va_origin
        assert fw_stale < ttl_stale
        # And reads are faster than the always-revalidate scheme.
        assert fw_latency < va_latency


class TestEndToEnd:
    def test_udp_demand_recovers_udp_wait_stalls(self):
        result = run_endtoend(seed=1, loss_rate=0.15, writes=12, horizon=60.0)
        measured = result.data["measured"]
        assert measured["TCP + wait"]["caught_up"]
        assert measured["TCP + wait"]["pram_violations"] == 0
        assert not measured["UDP + wait"]["caught_up"]
        assert measured["UDP + demand"]["caught_up"]
        assert measured["UDP + demand"]["pram_violations"] == 0
        assert measured["UDP + demand"]["demands"] > 0


class TestSessions:
    def test_enforcement_eliminates_violations_at_a_cost(self):
        result = run_sessions(seed=1, updates=6)
        measured = result.data["measured"]
        off = measured["off (check only)"]
        on = measured["on (RYW + MR enforced)"]
        assert off["violations"]["ryw"] > 0
        assert on["violations"]["ryw"] == 0
        assert on["violations"]["mr"] == 0
        assert on["demands"] > off["demands"]
