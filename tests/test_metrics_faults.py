"""Tests for the partition-aware metrics."""

from repro.coherence.trace import TraceRecorder
from repro.core.ids import WriteId
from repro.metrics.faults import (
    fault_run_metrics,
    recovery_lag_after_heal,
    staleness_under_partition,
    unavailable_read_fraction,
)
from repro.report.grid import STRATEGIES
from repro.workload.profiles import get_profile, run_profile


class FakeClient:
    def __init__(self, issued, served):
        self.reads_issued = issued
        self.op_latencies = [("read", 0.1)] * served + [("write", 0.1)]


def test_unavailable_read_fraction_counts_unserved_reads():
    assert unavailable_read_fraction([]) == 0.0
    assert unavailable_read_fraction([FakeClient(0, 0)]) == 0.0
    assert unavailable_read_fraction([FakeClient(10, 10)]) == 0.0
    assert unavailable_read_fraction(
        [FakeClient(10, 8), FakeClient(10, 10)]
    ) == 0.1


def _traced_run():
    """One small stale-read trace: ack at t=1, stale read at t=2."""
    trace = TraceRecorder()
    wid = WriteId(client_id="m", seqno=1)
    trace.record_write_issue(time=0.5, client_id="m", wid=wid, store="s")
    trace.record_apply(time=0.9, store="s", wid=wid, applied_vc={"m": 1})
    trace.record_write_ack(time=1.0, client_id="m", wid=wid, store="s")
    trace.record_read(time=2.0, store="c", client_id="r", served_vc={})
    trace.record_apply(time=3.5, store="c", wid=wid, applied_vc={"m": 1})
    return trace


CUT = (frozenset({"c"}), frozenset({"s"}))
PARENTS = {"s": None, "c": "s"}


def test_staleness_under_partition_filters_by_window():
    trace = _traced_run()
    # The stale read at t=2 lags the t=1 ack by one second.
    assert staleness_under_partition(
        trace, [(1.5, 2.5, CUT)], PARENTS
    ) == 1.0
    assert staleness_under_partition(
        trace, [(3.0, 4.0, CUT)], PARENTS
    ) == 0.0
    assert staleness_under_partition(trace, [], PARENTS) == 0.0


def test_staleness_under_partition_excludes_connected_stores():
    trace = _traced_run()
    # A cut elsewhere in the tree does not separate c from its parent,
    # so c's reads are not "under partition" -- no dilution by (or
    # attribution to) the connected side.
    elsewhere = (frozenset({"other"}), frozenset({"s"}))
    assert staleness_under_partition(
        trace, [(1.5, 2.5, elsewhere)], PARENTS
    ) == 0.0
    # And the primary (no parent) never counts.
    assert staleness_under_partition(
        trace, [(1.5, 2.5, (frozenset({"s"}), frozenset({"c"})))],
        {"s": None},
    ) == 0.0


def test_recovery_lag_measures_time_to_cover_acked_writes():
    trace = _traced_run()
    # Mark at t=1.5: store c covers {m:1} only at t=3.5 -> lag 2.0;
    # store s was already current -> the max rules.
    assert recovery_lag_after_heal(trace, [1.5]) == 2.0
    # A mark before any ack has nothing to recover.
    assert recovery_lag_after_heal(trace, [0.1]) == 0.0
    assert recovery_lag_after_heal(trace, []) == 0.0


def test_recovery_lag_charges_unrecovered_stores_to_trace_end():
    trace = TraceRecorder()
    wid = WriteId(client_id="m", seqno=1)
    trace.record_apply(time=0.9, store="s", wid=wid, applied_vc={"m": 1})
    trace.record_write_ack(time=1.0, client_id="m", wid=wid, store="s")
    trace.record_read(time=6.0, store="c", client_id="r", served_vc={})
    trace.record_apply(time=6.0, store="c",
                       wid=WriteId(client_id="x", seqno=1),
                       applied_vc={"x": 1})
    # Store c never covers {m:1}; charged to the end of the trace (6.0).
    assert recovery_lag_after_heal(trace, [2.0]) == 4.0


def test_fault_run_metrics_on_fault_free_run_degenerates():
    deployment = run_profile(
        STRATEGIES["push-update"].build_policy(),
        get_profile("balanced"),
        n_caches=2,
        seed=3,
    )
    metrics = fault_run_metrics(deployment)
    assert metrics == {
        "unavailable_fraction": 0.0,
        "partition_stale_lag": 0.0,
        "recovery_lag": 0.0,
    }


def test_fault_run_metrics_sees_partition_effects():
    deployment = run_profile(
        STRATEGIES["push-invalidate"].build_policy(),
        get_profile("balanced"),
        n_caches=2,
        seed=3,
        fault_plan="partition-heal",
        request_timeout=1.0,
        request_retries=1,
    )
    assert deployment.faults is not None
    assert deployment.faults.partition_windows(
        until=deployment.sim.now
    ) == [(2.0, 4.0)]
    cuts = deployment.faults.cut_windows(until=deployment.sim.now)
    assert [(start, end) for start, end, _ in cuts] == [(2.0, 4.0)]
    metrics = fault_run_metrics(deployment)
    assert set(metrics) == {
        "unavailable_fraction", "partition_stale_lag", "recovery_lag",
    }
    assert metrics["recovery_lag"] > 0.0
