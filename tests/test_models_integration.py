"""End-to-end integration tests: each object-based coherence model run on a
real deployment and verified by its trace checker."""

from repro.coherence import checkers
from repro.coherence.models import CoherenceModel
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network
from repro.replication.policy import (
    CoherenceTransfer,
    ReplicationPolicy,
    WriteSet,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Delay, Process, WaitFor
from repro.web.webobject import WebObject


def build_site(policy, seed=1, jitter=False):
    sim = Simulator(seed=seed)
    if jitter:
        latency = UniformLatency(0.01, 0.2, sim.rng.fork("net"))
    else:
        latency = ConstantLatency(0.02)
    net = Network(sim, latency=latency)
    site = WebObject(sim, net, policy=policy, pages={"doc": "seed"},
                     designated_writer=None)
    site.create_server("server")
    site.create_cache("cache-a")
    site.create_cache("cache-b")
    return sim, site


def run_writers(sim, site, writes=6, incremental=True):
    writers = []
    for index, cache in enumerate(("cache-a", "cache-b")):
        browser = site.bind_browser(f"s-{index}", f"w{index}",
                                    read_store=cache, write_store="server")
        writers.append(browser)

    def script(browser, label):
        rng = sim.rng.fork(label)
        for op in range(writes):
            yield Delay(rng.uniform(0.05, 0.4))
            if incremental:
                yield WaitFor(browser.append_to_page("doc", f"[{label}:{op}]"))
            else:
                yield WaitFor(browser.write_page("doc", f"{label}:{op}"))

    for index, browser in enumerate(writers):
        Process(sim, script(browser, f"w{index}"), f"w{index}")
    sim.run_until_idle()
    sim.run(until=sim.now + 10.0)


def test_pram_model_end_to_end():
    policy = ReplicationPolicy(
        model=CoherenceModel.PRAM, write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site = build_site(policy)
    run_writers(sim, site)
    assert checkers.check_pram(site.trace) == []
    # Every store saw every write (updates pushed everywhere).
    assert checkers.check_eventual_delivery(site.trace) == []


def test_causal_model_end_to_end():
    policy = ReplicationPolicy(
        model=CoherenceModel.CAUSAL, write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site = build_site(policy)
    # Writer B reads then writes: its writes causally follow A's.
    a = site.bind_browser("sa", "alice", read_store="cache-a",
                          write_store="server")
    b = site.bind_browser("sb", "bob", read_store="cache-b",
                          write_store="server")

    def alice():
        yield WaitFor(a.append_to_page("doc", "[question]"))

    def bob():
        while True:
            yield Delay(0.2)
            page = yield WaitFor(b.read_page("doc"))
            if "question" in page["content"]:
                break
        yield WaitFor(b.append_to_page("doc", "[answer]"))

    Process(sim, alice(), "alice")
    Process(sim, bob(), "bob")
    sim.run_until_idle()
    sim.run(until=sim.now + 5.0)
    assert checkers.check_causal(site.trace) == []
    assert checkers.check_writes_follow_reads(site.trace) == []
    for state in site.store_states().values():
        if "doc" in state:
            content = state["doc"]["content"]
            if "answer" in content:
                assert content.index("question") < content.index("answer")


def test_sequential_model_global_agreement():
    policy = ReplicationPolicy(
        model=CoherenceModel.SEQUENTIAL, write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site = build_site(policy, seed=7)
    run_writers(sim, site, writes=5)
    assert checkers.check_sequential(site.trace) == []
    contents = {
        addr: state["doc"]["content"]
        for addr, state in site.store_states().items() if "doc" in state
    }
    assert len(set(contents.values())) == 1, (
        "sequential replicas must agree on one interleaving"
    )


def test_fifo_model_drops_superseded_overwrites():
    policy = ReplicationPolicy(
        model=CoherenceModel.FIFO, write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site = build_site(policy)
    run_writers(sim, site, incremental=False)
    assert checkers.check_fifo(site.trace) == []


def test_eventual_model_converges_with_lww():
    policy = ReplicationPolicy(
        model=CoherenceModel.EVENTUAL, write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site = build_site(policy, seed=3)
    # Writers submit at their local caches (multi-writer eventual accepts
    # writes anywhere and gossips).
    a = site.bind_browser("sa", "w0", read_store="cache-a",
                          write_store="cache-a")
    b = site.bind_browser("sb", "w1", read_store="cache-b",
                          write_store="cache-b")

    def script(browser, label):
        rng = sim.rng.fork(label)
        for op in range(5):
            yield Delay(rng.uniform(0.05, 0.3))
            yield WaitFor(browser.write_page("doc", f"{label}:{op}"))

    Process(sim, script(a, "w0"), "w0")
    Process(sim, script(b, "w1"), "w1")
    sim.run_until_idle()
    sim.run(until=sim.now + 10.0)
    contents = {
        addr: state["doc"]["content"]
        for addr, state in site.store_states().items() if "doc" in state
    }
    assert len(set(contents.values())) == 1, (
        f"LWW must converge, got {contents}"
    )


def test_scope_weakening_keeps_caches_eventual():
    from repro.replication.policy import StoreScope
    policy = ReplicationPolicy(
        model=CoherenceModel.PRAM,
        store_scope=StoreScope.PERMANENT,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site = build_site(policy)
    assert site.dso.stores["server"].engine.enforced
    assert not site.dso.stores["cache-a"].engine.enforced
    assert site.dso.stores["cache-a"].engine.ordering.model is \
        CoherenceModel.EVENTUAL
