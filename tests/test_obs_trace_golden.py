"""Golden trace determinism: one scenario, one byte-exact trace.

The observability acceptance claims: a seeded simulated run traces
deterministically (so the JSONL is golden-pinnable), the identical
trace comes back from every sweep executor (the trace is built inside
whichever worker evaluates the point, and virtual time plus canonical
serialization leave nothing host-dependent), and the live backend
emits the same protocol-decision shape as the simulator for the same
scenario (timestamps and transport interleavings differ, decisions
must not).

Regenerate the pin after an intentional event-vocabulary change::

    PYTHONPATH=src python - <<'EOF'
    from repro.exec.live import live_smoke_point
    from repro.obs import trace_run, events_jsonl
    with trace_run() as t:
        live_smoke_point(
            {"backend": "sim", "writes": 3, "n_caches": 2, "seed": 7},
            seed=0)
    open("tests/golden/trace_backend_smoke.jsonl", "w").write(
        events_jsonl(t.events))
    EOF
"""

from pathlib import Path

import pytest

from repro.exec import EXECUTORS, run_sweep
from repro.exec.live import live_smoke_point
from repro.exec.spec import SweepSpec
from repro.obs import events_jsonl, trace_run

GOLDEN = Path(__file__).parent / "golden" / "trace_backend_smoke.jsonl"

#: The pinned scenario: the backend-smoke script on the simulator.
CONFIG = {"backend": "sim", "writes": 3, "n_caches": 2, "seed": 7}


def traced_smoke_run(config=CONFIG):
    """The scenario's canonical JSONL trace, recorded in-process."""
    with trace_run() as tracer:
        live_smoke_point(dict(config), seed=0)
    return tracer


class TestGoldenTrace:
    def test_trace_matches_pinned_golden(self):
        assert traced_smoke_run().to_jsonl() == GOLDEN.read_text(), (
            "simulated trace diverged from tests/golden/"
            "trace_backend_smoke.jsonl -- if the event vocabulary "
            "changed intentionally, regenerate the pin (see module "
            "docstring)"
        )

    def test_trace_is_deterministic_across_runs(self):
        assert traced_smoke_run().to_jsonl() == traced_smoke_run().to_jsonl()

    def test_trace_covers_every_layer(self):
        kinds = {event["kind"] for event in traced_smoke_run().events}
        assert {"sim.schedule", "sim.fire", "net.send", "net.deliver",
                "repl.write", "repl.read", "repl.propagate",
                "repl.emit"} <= kinds

    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_trace_bit_identical_under_every_executor(
            self, executor, tmp_path, monkeypatch):
        # REPRO_TRACE=<dir> makes the evaluating worker trace the point
        # and persist trace-<label>.jsonl there, wherever it runs.
        trace_dir = tmp_path / "traces"
        monkeypatch.setenv("REPRO_TRACE", str(trace_dir))
        spec = SweepSpec(name="obs-golden", run_point=live_smoke_point)
        spec.add("sim", **CONFIG)
        run_sweep(spec, parallel=1, executor=executor)
        written = trace_dir / "trace-sim.jsonl"
        assert written.read_text() == GOLDEN.read_text(), (
            f"executor {executor!r} produced a different trace"
        )


class TestSimLiveTraceParity:
    """Protocol-decision events are substrate-independent."""

    @pytest.fixture(scope="class")
    def shapes(self):
        shapes = {}
        for backend in ("sim", "live"):
            with trace_run() as tracer:
                live_smoke_point(dict(CONFIG, backend=backend), seed=0)
            shapes[backend] = tracer.events
        return shapes

    @staticmethod
    def _decisions(events):
        return [
            (event["kind"], event["node"],
             event.get("decision") or event.get("message"))
            for event in events if event["kind"].startswith("repl.")
        ]

    def test_replication_decisions_identical(self, shapes):
        assert self._decisions(shapes["sim"]) == self._decisions(
            shapes["live"])

    def test_network_event_vocabulary_identical(self, shapes):
        def net_shape(events):
            return sorted(
                (event["kind"], event["node"])
                for event in events if event["kind"].startswith("net.")
            )

        assert net_shape(shapes["sim"]) == net_shape(shapes["live"])

    def test_live_trace_serializes_canonically(self, shapes):
        text = events_jsonl(shapes["live"])
        assert text.count("\n") == len(shapes["live"])
        assert '"kind":"repl.write"' in text
