"""Tests for the fault-grid axis of the report layer (X11)."""

import pytest

from repro.exec import derive_seed
from repro.report.aggregate import aggregate
from repro.report.book import book_artifacts
from repro.report.grid import (
    BASE_METRIC_KEYS,
    FAULT_METRIC_KEYS,
    get_grid,
    grid_spec,
    run_fault_grid_point,
    run_grid,
)

SMALL = "x11-faults-small"


def test_fault_grid_axes_and_labels():
    grid = get_grid(SMALL)
    assert grid.is_fault_grid
    assert grid.col_axis == "fault_plan"
    assert grid.metric_keys() == BASE_METRIC_KEYS + FAULT_METRIC_KEYS
    spec = grid_spec(grid)
    assert len(spec.points) == grid.point_count()
    # Labels are (protocol, fault_plan, size, rep); the fixed workload
    # rides in the config (and its hash) without widening the label.
    assert spec.labels()[0] == ("push-update", "none", 2, 0)
    assert all(point.config["workload"] == "balanced"
               for point in spec.points)
    assert all(point.config["fault_plan"] == point.label[1]
               for point in spec.points)


def test_fault_plan_name_rotates_the_derived_seed():
    grid = get_grid(SMALL)
    spec = grid_spec(grid)
    by_label = {point.label: point for point in spec.points}
    baseline = by_label[("push-update", "none", 2, 0)]
    faulted = by_label[("push-update", "partition-heal", 2, 0)]
    assert spec.seed_for(baseline) != spec.seed_for(faulted)
    # And the seed is a pure function of the config.
    assert spec.seed_for(faulted) == derive_seed(
        spec.name, faulted.config, base_seed=grid.base_seed
    )


def test_fault_point_returns_all_metrics_and_is_deterministic():
    config = {"protocol": "push-update", "workload": "balanced",
              "n_caches": 2, "rep": 0, "fault_plan": "partition-heal"}
    first = run_fault_grid_point(dict(config), seed=11)
    second = run_fault_grid_point(dict(config), seed=11)
    assert first == second
    assert set(first) == set(BASE_METRIC_KEYS + FAULT_METRIC_KEYS)


def test_fault_grid_aggregates_and_renders():
    grid = get_grid(SMALL)
    results = run_grid(grid)
    tables = aggregate(grid, results)
    assert set(tables) == set(grid.metric_keys())
    table = tables["recovery_lag"]
    assert table.cols == (("none", 2), ("partition-heal", 2))
    # The baseline column has no partitions to recover from.
    for protocol in grid.protocols:
        assert table.cell(protocol, ("none", 2)).mean == 0.0
    artifacts = book_artifacts(grid, results)
    book = artifacts["RESULTS.md"]
    assert "| fault plan | scenario |" in book
    assert "partition-heal" in book
    assert "Recovery lag after heal" in book
    for key in FAULT_METRIC_KEYS:
        assert f"results/heatmaps/{grid.name}/{key}.svg" in artifacts
    # Bit-identical re-render (the --check gate's property).
    assert book_artifacts(grid, run_grid(grid)) == artifacts


def test_classic_grid_book_excludes_fault_metrics():
    grid = get_grid("table1-small")
    assert grid.metric_keys() == BASE_METRIC_KEYS
    with pytest.raises(KeyError, match="does not report"):
        book_artifacts(grid, {}, metrics=["unavailable_fraction"])


def test_fault_grid_requires_single_workload():
    from repro.report.grid import GridDef

    with pytest.raises(ValueError, match="exactly one"):
        GridDef(
            name="bad", title="t", description="d",
            protocols=("push-update",),
            workloads=("read-heavy", "balanced"),
            sizes=(2,), replications=2,
            fault_plans=("none",),
        )
