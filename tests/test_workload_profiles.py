"""Tests for the grid-parameterized workload profile factories."""

import pytest

from repro.experiments.harness import measure
from repro.replication.policy import ReplicationPolicy
from repro.workload.profiles import (
    PROFILES,
    WorkloadProfile,
    get_profile,
    run_profile,
)


def test_registry_names_match_keys():
    assert all(name == profile.name for name, profile in PROFILES.items())
    assert {"read-heavy", "balanced", "write-heavy"} <= set(PROFILES)


def test_profiles_span_read_write_regimes():
    read_heavy = PROFILES["read-heavy"]
    write_heavy = PROFILES["write-heavy"]
    assert read_heavy.reads_per_client > read_heavy.writes
    assert write_heavy.writes > write_heavy.reads_per_client


def test_get_profile_unknown_names_catalog():
    with pytest.raises(KeyError, match="registered:"):
        get_profile("nope")


def test_run_profile_drives_all_clients():
    profile = WorkloadProfile(
        name="tiny", writes=3, reads_per_client=4,
        write_interval=0.2, read_think=0.2,
    )
    deployment = run_profile(ReplicationPolicy(), profile,
                             n_caches=2, seed=7)
    metrics = measure(deployment)
    # Two caches, one reader each: every reader completes its reads.
    assert metrics.reads == 2 * profile.reads_per_client
    assert metrics.traffic.bytes_sent > 0


def test_run_profile_deterministic_per_seed():
    profile = PROFILES["balanced"]

    def run(seed):
        deployment = run_profile(ReplicationPolicy(), profile,
                                 n_caches=2, seed=seed)
        summary = measure(deployment)
        return (summary.traffic.bytes_sent, summary.reads,
                summary.mean_read_latency)

    assert run(3) == run(3)
    assert run(3) != run(4)
