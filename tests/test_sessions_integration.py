"""End-to-end tests for the four client-based coherence models, enforced
against a lazily-propagating object (where they actually bite)."""

from repro.coherence import checkers
from repro.coherence.models import CoherenceModel, SessionGuarantee
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication.policy import (
    CoherenceTransfer,
    OutdateReaction,
    ReplicationPolicy,
    TransferInstant,
    WriteSet,
)
from repro.sim.kernel import Simulator
from repro.web.webobject import WebObject

from tests.conftest import resolve, settle

RYW = SessionGuarantee.READ_YOUR_WRITES
MR = SessionGuarantee.MONOTONIC_READS
MW = SessionGuarantee.MONOTONIC_WRITES
WFR = SessionGuarantee.WRITES_FOLLOW_READS


def lazy_site(seed=1, interval=10.0, model=CoherenceModel.PRAM,
              write_set=WriteSet.SINGLE, writer="master"):
    """A site whose pushes are so lazy that stale reads are guaranteed
    unless a session guarantee forces freshness."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.02))
    policy = ReplicationPolicy(
        model=model,
        write_set=write_set,
        transfer_instant=TransferInstant.LAZY,
        lazy_interval=interval,
        coherence_transfer=CoherenceTransfer.PARTIAL,
        client_outdate_reaction=OutdateReaction.DEMAND,
    )
    site = WebObject(sim, net, policy=policy, pages={"p": "seed"},
                     designated_writer=writer)
    site.create_server("server")
    site.create_cache("cache-a")
    site.create_cache("cache-b")
    return sim, site


class TestReadYourWrites:
    def test_enforced_master_sees_own_writes_through_stale_cache(self):
        sim, site = lazy_site()
        master = site.bind_browser("m", "master", read_store="cache-a",
                                   write_store="server", guarantees=[RYW])
        settle(sim, master.write_page("p", "mine"))
        page = settle(sim, master.read_page("p"))
        assert page["content"] == "mine"
        assert checkers.check_read_your_writes(site.trace) == []
        # The freshness came from a demand-update, not from a push.
        assert site.dso.stores["cache-a"].engine.counters["tx:demand"] >= 1

    def test_unenforced_master_reads_stale(self):
        sim, site = lazy_site()
        master = site.bind_browser("m", "master", read_store="cache-a",
                                   write_store="server", guarantees=[])
        # Warm the cache so the read is a hit on stale content.
        settle(sim, master.read_page("p"))
        settle(sim, master.write_page("p", "mine"))
        page = settle(sim, master.read_page("p"))
        assert page["content"] == "seed", "without RYW the stale copy serves"
        assert checkers.check_read_your_writes(site.trace)


class TestMonotonicReads:
    def test_roaming_client_never_regresses(self):
        sim, site = lazy_site()
        master = site.bind_browser("m", "master", read_store="server",
                                   write_store="server")
        roamer_a = site.bind_browser("ra", "roamer", read_store="cache-a",
                                     guarantees=[MR])
        roamer_b = site.bind_browser("rb", "roamer", read_store="cache-b",
                                     guarantees=[MR])
        roamer_s = site.bind_browser("rs", "roamer", read_store="server",
                                     guarantees=[MR])
        shared = roamer_a.bound.replication.session
        roamer_b.bound.replication.session = shared
        roamer_s.bound.replication.session = shared
        settle(sim, master.write_page("p", "v1"))
        # cache-a demand-fetches on miss, so the roamer sees v1 there.
        assert settle(sim, roamer_a.read_page("p"))["content"] == "v1"
        settle(sim, master.write_page("p", "v2"))
        # Reading at the server advances the session to v2 ...
        assert settle(sim, roamer_s.read_page("p"))["content"] == "v2"
        # ... so the stale cache-b must catch up before serving (it was
        # never pushed to; without MR it would happily serve v1/seed).
        assert settle(sim, roamer_b.read_page("p"))["content"] == "v2"
        assert checkers.check_monotonic_reads(site.trace,
                                              clients=["roamer"]) == []
        assert site.dso.stores["cache-b"].engine.counters["tx:demand"] >= 1


class TestMonotonicWrites:
    def test_mw_deps_order_writes_under_eventual(self):
        # Eventual coherence would happily apply a client's writes out of
        # order after loss/reorder; the MW dependency vector forbids it.
        sim, site = lazy_site(model=CoherenceModel.EVENTUAL,
                              write_set=WriteSet.MULTIPLE, writer=None)
        writer = site.bind_browser("w", "author", read_store="cache-a",
                                   write_store="cache-a", guarantees=[MW])
        for index in range(4):
            resolve(sim, writer.append_to_page("p", f"+{index}"))
        sim.run(until=sim.now + 25.0)
        assert checkers.check_monotonic_writes(
            site.trace, clients=["author"]) == []


class TestWritesFollowReads:
    def test_reaction_ordered_after_trigger_everywhere(self):
        sim, site = lazy_site(model=CoherenceModel.EVENTUAL,
                              write_set=WriteSet.MULTIPLE, writer=None,
                              interval=3.0)
        poster = site.bind_browser("pa", "poster", read_store="cache-a",
                                   write_store="cache-a")
        reactor = site.bind_browser("rb", "reactor", read_store="cache-b",
                                    write_store="cache-b",
                                    guarantees=[WFR, MW])
        resolve(sim, poster.append_to_page("p", "[trigger]"))
        sim.run(until=sim.now + 10.0)
        page = resolve(sim, reactor.read_page("p"))
        assert "trigger" in page["content"]
        resolve(sim, reactor.append_to_page("p", "[reaction]"))
        sim.run(until=sim.now + 20.0)
        assert checkers.check_writes_follow_reads(
            site.trace, clients=["reactor"]) == []
        for state in site.dso.store_states().values():
            content = state.get("p", {}).get("content", "")
            if "reaction" in content:
                assert content.index("trigger") < content.index("reaction")


class TestCombination:
    def test_paper_combination_pram_plus_ryw(self):
        """The exact combination of Section 4: object PRAM + client RYW."""
        sim, site = lazy_site()
        master = site.bind_browser("m", "master", read_store="cache-a",
                                   write_store="server", guarantees=[RYW])
        user = site.bind_browser("u", "user", read_store="cache-b")
        for index in range(5):
            settle(sim, master.append_to_page("p", f"+{index}"))
            page = settle(sim, master.read_page("p"))
            assert f"+{index}" in page["content"]
        sim.run(until=sim.now + 25.0)
        resolve(sim, user.read_page("p"))
        assert checkers.check_pram(site.trace) == []
        assert checkers.check_read_your_writes(site.trace,
                                               clients=["master"]) == []

    def test_guarantees_free_under_sequential(self):
        """Sequential subsumes all session guarantees: requirement checks
        pass without extra demand traffic."""
        sim, site = lazy_site(model=CoherenceModel.SEQUENTIAL,
                              interval=0.5)
        master = site.bind_browser("m", "master", read_store="server",
                                   write_store="server",
                                   guarantees=list(SessionGuarantee))
        resolve(sim, master.write_page("p", "v1"))
        page = resolve(sim, master.read_page("p"))
        assert page["content"] == "v1"
