"""Unit tests for the pluggable event queues."""

import pytest

from repro.sim.events import Event
from repro.sim.queues import (
    SCHEDULERS,
    CalendarEventQueue,
    HeapEventQueue,
    make_event_queue,
)


def event(time, seq):
    return Event(time=time, seq=seq, fn=lambda: None)


@pytest.fixture(params=sorted(SCHEDULERS))
def queue(request):
    return make_event_queue(request.param)


class TestQueueContract:
    def test_empty_queue_peeks_and_pops_none(self, queue):
        assert len(queue) == 0
        assert queue.peek() is None
        assert queue.pop() is None

    def test_pops_in_time_order(self, queue):
        for seq, time in enumerate([5.0, 1.0, 3.0, 0.5, 4.0]):
            queue.push(event(time, seq))
        times = [queue.pop().time for _ in range(5)]
        assert times == sorted(times)

    def test_simultaneous_events_pop_in_seq_order(self, queue):
        for seq in (2, 0, 1):
            queue.push(event(1.0, seq))
        assert [queue.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_peek_returns_minimum_without_removal(self, queue):
        queue.push(event(2.0, 0))
        queue.push(event(1.0, 1))
        assert queue.peek().time == 1.0
        assert len(queue) == 2
        assert queue.pop().time == 1.0

    def test_peek_sees_smaller_event_pushed_after_peek(self, queue):
        queue.push(event(5.0, 0))
        assert queue.peek().time == 5.0
        queue.push(event(1.0, 1))
        assert queue.peek().time == 1.0

    def test_interleaved_push_pop_keeps_global_order(self, queue):
        queue.push(event(3.0, 0))
        queue.push(event(1.0, 1))
        first = queue.pop()
        assert first.time == 1.0
        # New events strictly after the last popped time, as the kernel
        # clock guarantees.
        queue.push(event(2.0, 2))
        queue.push(event(10.0, 3))
        assert [queue.pop().time for _ in range(3)] == [2.0, 3.0, 10.0]


class TestCalendarQueue:
    def test_grows_and_shrinks_with_population(self):
        queue = CalendarEventQueue()
        for seq in range(200):
            queue.push(event(seq * 0.013, seq))
        assert queue._nbuckets > CalendarEventQueue.MIN_BUCKETS
        order = [queue.pop().seq for _ in range(200)]
        assert order == list(range(200))
        assert queue._nbuckets == CalendarEventQueue.MIN_BUCKETS

    def test_sparse_far_future_uses_direct_search(self):
        queue = CalendarEventQueue(width=0.01, nbuckets=8)
        # One event years of bucket-days away: the forward scan gives up
        # after a rotation and jumps straight to it.
        queue.push(event(1_000.0, 0))
        assert queue.peek().time == 1_000.0
        assert queue.pop().time == 1_000.0

    def test_earlier_push_after_future_pop_stays_ordered(self):
        # Popping a far-future minimum advances the calendar day; a later
        # push at an earlier absolute time must still pop first (the
        # ``_day`` lower-bound invariant).
        queue = CalendarEventQueue(width=0.01)
        queue.push(event(100.0, 0))
        popped = queue.pop()
        assert popped.time == 100.0
        queue.push(event(150.0, 1))
        queue.push(event(120.0, 2))
        assert [queue.pop().time for _ in range(2)] == [120.0, 150.0]

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CalendarEventQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarEventQueue(nbuckets=0)


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_event_queue("heap"), HeapEventQueue)
        assert isinstance(make_event_queue("calendar"), CalendarEventQueue)

    def test_unknown_name_lists_catalog(self):
        with pytest.raises(ValueError, match="calendar.*heap|heap.*calendar"):
            make_event_queue("wheel-of-fortune")
