"""Tests for the live-sweep adapter: SweepSpecs over the live backend."""

from repro.exec import ResultCache
from repro.exec.live import live_smoke_point, run_live_smoke, smoke_spec


class TestSmokeSpec:
    def test_spec_shape(self):
        spec = smoke_spec(backends=("sim", "live"), writes=2, seed=5)
        assert spec.name == "backend-smoke"
        assert spec.labels() == ["sim", "live"]
        assert all(
            point.config["seed"] == 5 and point.config["writes"] == 2
            for point in spec.points
        )

    def test_point_function_pins_the_scenario_seed(self):
        # The runner-derived seed is ignored: two different derived seeds
        # with the same config produce the same deterministic sim result.
        config = {"backend": "sim", "writes": 2, "n_caches": 1, "seed": 3}
        first = live_smoke_point(dict(config), seed=111)
        second = live_smoke_point(dict(config), seed=222)
        assert first == second


class TestLiveSweepEndToEnd:
    def test_live_sweep_through_runner_and_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        measured = run_live_smoke(
            backends=("live",), writes=2, n_caches=1, cache_dir=cache_dir,
        )
        point = measured["live"]
        assert point["backend"] == "live"
        assert point["converged"]
        assert point["reads_ok"] == 1  # the single cache's reader
        assert point["versions"]["server"] == {"master": 2}
        assert point["datagrams_delivered"] > 0

        # The result landed in the shared on-disk cache...
        cache = ResultCache(cache_dir)
        files = list(cache_dir.rglob("*.res"))
        assert len(files) == 1
        # ...and a re-run is served from it (no second live run: the
        # wall-clock datagram counter would almost surely differ).
        again = run_live_smoke(
            backends=("live",), writes=2, n_caches=1, cache_dir=cache_dir,
        )
        assert again == measured
