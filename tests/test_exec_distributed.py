"""Tests for the distributed sweep executor (``repro.exec.distributed``).

Three layers, separately:

- :class:`SweepHub` is driven directly -- the wire protocol's dispatch
  semantics (task/wait/bye replies, duplicate suppression, bounded
  retry-with-backoff on worker loss) without any sockets;
- one real :class:`~repro.exec.worker.WorkerRuntime` is driven over a
  socketpair by a scripted hub -- the worker side of the
  hello/next/task/result/heartbeat framing;
- full sweeps run against auto-spawned worker processes, including the
  headline fault test: SIGKILL a worker mid-sweep and the sweep still
  completes with a cache tree byte-identical to the serial executor's,
  the retry attributed in the run manifest.

Point functions live at module level because workers import them by
reference.
"""

import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.exec import (
    ResultCache,
    SweepSpec,
    default_parallelism,
    run_sweep,
)
from repro.exec.codec import CodecError, decode_result
from repro.exec.distributed import (
    DistributedExecutor,
    SweepHub,
    WorkerSupervisor,
)
from repro.exec.backends import PointTask, _payload_digest
from repro.exec.worker import (
    WorkerRuntime,
    function_reference,
    load_function,
)
from repro.exec.codec import encode_result
from repro.obs.cli import main as obs_main
from repro.obs.manifest import (
    load_manifest,
    point_record,
    summarize_manifest,
    validate_manifest,
)
from repro.runtime.wire import FrameChannel


def grid_point(config, seed):
    """Pure, deterministic: exact binary fractions of config and seed."""
    n = config["n"]
    base = seed % (1 << 16)
    return {
        "n": n,
        "seed": seed,
        "samples": [(base + i * n) / 32.0 for i in range(24)],
        "sum": sum((base + i * n) for i in range(24)),
    }


def gated_point(config, seed):
    """Blocks while ``config["gate"]`` names a missing file.

    The payload is a pure function of config and seed -- the gate only
    shapes *timing*, so a retried evaluation returns identical bytes.
    """
    gate = config.get("gate")
    if gate:
        deadline = time.time() + 30.0
        while not os.path.exists(gate) and time.time() < deadline:
            time.sleep(0.02)
    return grid_point(config, seed)


def _hub_tasks(count):
    return [
        PointTask(run_point=grid_point, index=i, label=f"n={i}",
                  config={"n": i}, seed=1000 + i)
        for i in range(count)
    ]


class TestSweepHubProtocol:
    def test_next_task_dispatches_in_index_order(self):
        hub = SweepHub(_hub_tasks(3))
        hub.register("w0", slots=1)
        kind, body = hub.next_task("w0", now=0.0)
        assert kind == "task"
        assert body["index"] == 0
        assert body["label"] == "n=0"
        assert body["config"] == {"n": 0}
        assert body["seed"] == 1000
        assert body["attempt"] == 0
        ref = body["fn"]
        assert ref["qualname"] == "grid_point"
        assert load_function(ref) is grid_point

    def test_wait_when_everything_is_in_flight(self):
        hub = SweepHub(_hub_tasks(1))
        hub.register("w0", slots=1)
        hub.register("w1", slots=1)
        assert hub.next_task("w0", now=0.0)[0] == "task"
        kind, body = hub.next_task("w1", now=0.0)
        assert kind == "wait"
        assert body["delay"] > 0

    def test_result_completes_and_attributes_the_point(self):
        hub = SweepHub(_hub_tasks(1))
        hub.register("w0", slots=1)
        _, body = hub.next_task("w0", now=0.0)
        blob = encode_result(grid_point(body["config"], body["seed"]))
        delivered = hub.complete("w0", {
            "index": 0, "ok": True, "blob": blob,
            "digest": _payload_digest(blob), "wall_s": 0.25,
            "peak_rss_kb": 10, "events": 0,
        })
        assert delivered is not None
        (index, ok, envelope), returned = delivered
        assert (index, ok) == (0, True)
        assert returned == blob
        assert envelope.telemetry.worker == "w0"
        assert envelope.telemetry.retries == 0
        assert envelope.payload == grid_point({"n": 0}, 1000)
        assert hub.done
        assert hub.next_task("w0", now=1.0)[0] == "bye"

    def test_duplicate_result_is_suppressed(self):
        hub = SweepHub(_hub_tasks(1))
        hub.register("w0", slots=1)
        hub.next_task("w0", now=0.0)
        blob = encode_result(grid_point({"n": 0}, 1000))
        frame = {"index": 0, "ok": True, "blob": blob,
                 "digest": _payload_digest(blob)}
        assert hub.complete("w0", dict(frame)) is not None
        assert hub.complete("w0", dict(frame)) is None

    def test_torn_result_blob_is_rejected(self):
        hub = SweepHub(_hub_tasks(1))
        hub.register("w0", slots=1)
        hub.next_task("w0", now=0.0)
        blob = encode_result(grid_point({"n": 0}, 1000))
        with pytest.raises(CodecError):
            hub.complete("w0", {"index": 0, "ok": True, "blob": blob,
                                "digest": "0" * 8})

    def test_worker_loss_requeues_with_backoff(self):
        hub = SweepHub(_hub_tasks(2), retry_base_delay=0.5)
        hub.register("w0", slots=1)
        _, body = hub.next_task("w0", now=0.0)
        assert body["index"] == 0
        failures, requeued = hub.lose("w0", now=10.0)
        assert failures == []
        assert requeued == 1
        hub.register("w1", slots=1)
        # Index 1 was never dispatched and is immediately available;
        # index 0 is held back until its backoff deadline passes.
        _, body = hub.next_task("w1", now=10.0)
        assert body["index"] == 1
        kind, _ = hub.next_task("w1", now=10.0)
        assert kind == "wait"
        kind, body = hub.next_task("w1", now=10.6)
        assert kind == "task"
        assert body["index"] == 0
        assert body["attempt"] == 1

    def test_retry_budget_exhaustion_fails_the_point(self):
        hub = SweepHub(_hub_tasks(1), max_retries=1, retry_base_delay=0.0)
        for round_ in range(2):
            name = f"w{round_}"
            hub.register(name, slots=1)
            kind, _ = hub.next_task(name, now=float(round_))
            assert kind == "task"
            failures, _ = hub.lose(name, now=float(round_))
        assert len(failures) == 1
        index, ok, envelope = failures[0]
        assert (index, ok) == (0, False)
        assert "retries exhausted" in envelope.payload
        assert envelope.telemetry.retries == 1
        assert hub.done

    def test_lost_worker_asking_again_is_told_bye(self):
        hub = SweepHub(_hub_tasks(2))
        hub.register("w0", slots=1)
        hub.next_task("w0", now=0.0)
        hub.lose("w0", now=0.0)
        assert hub.next_task("w0", now=5.0)[0] == "bye"

    def test_capacity_follows_advertised_slots(self):
        hub = SweepHub(_hub_tasks(16))
        assert hub.capacity() == 1  # nothing registered yet
        hub.register("w0", slots=3)
        hub.register("w1", slots=2)
        assert hub.capacity() == 5
        hub.lose("w1", now=0.0)
        assert hub.capacity() == 3


class TestRemoteParallelism:
    def test_remote_slots_replace_local_cpu_count(self):
        assert default_parallelism(remote_slots=[2, 3]) == 5
        assert default_parallelism(task_count=4, remote_slots=[2, 3]) == 4
        assert default_parallelism(task_count=100, remote_slots=[8]) == 8

    def test_empty_or_bogus_slots_degrade_to_one(self):
        assert default_parallelism(remote_slots=[]) == 1
        assert default_parallelism(remote_slots=[0, -4]) == 1


class TestFunctionReference:
    def test_roundtrip_by_module_name(self):
        ref = function_reference(grid_point)
        assert ref["module"] == grid_point.__module__
        assert load_function(ref) is grid_point

    def test_local_functions_are_rejected(self):
        def local(config, seed):
            return None

        with pytest.raises(ValueError):
            function_reference(local)

    def test_source_file_fallback_for_unimportable_modules(self, tmp_path):
        script = tmp_path / "sweep_script.py"
        script.write_text(
            "def scripted_point(config, seed):\n"
            "    return config['n'] * seed\n"
        )
        ref = {"module": "__main__", "qualname": "scripted_point",
               "file": str(script)}
        fn = load_function(ref)
        assert fn({"n": 3}, 7) == 21
        # Cached per path: the second load is the same module object.
        assert load_function(ref) is fn


class TestWorkerProtocol:
    """Drive one real worker runtime over a socketpair, hub scripted."""

    @pytest.fixture()
    def hub_channel(self):
        import socket

        ours, theirs = socket.socketpair()
        hub = FrameChannel(ours)
        runtime = WorkerRuntime(FrameChannel(theirs), "wt", slots=1,
                                heartbeat_interval=60.0)
        thread = threading.Thread(target=runtime.run, daemon=True)
        thread.start()
        yield hub
        hub.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    @staticmethod
    def _recv_skipping_heartbeats(channel):
        while True:
            frame = channel.recv()
            assert frame is not None
            if frame[0] != "heartbeat":
                return frame

    def test_hello_task_result_bye_roundtrip(self, hub_channel):
        kind, body = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "hello"
        assert body["node"] == "wt"
        assert body["slots"] == 1
        assert body["pid"] == os.getpid()
        hub_channel.send("welcome", node="wt", paths=[])

        kind, _ = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "next"
        hub_channel.send(
            "task", index=5, label="n=2", config={"n": 2}, seed=77,
            fn=function_reference(grid_point), attempt=0,
        )
        kind, body = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "result"
        assert body["index"] == 5
        assert body["ok"] is True
        assert _payload_digest(body["blob"]) == body["digest"]
        assert decode_result(body["blob"]) == grid_point({"n": 2}, 77)
        assert body["wall_s"] >= 0.0

        # The freed slot asks again; the sweep is over.
        kind, _ = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "next"
        hub_channel.send("bye")

    def test_wait_backs_off_and_reasks(self, hub_channel):
        kind, _ = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "hello"
        hub_channel.send("welcome", node="wt", paths=[])
        kind, _ = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "next"
        hub_channel.send("wait", delay=0.01)
        kind, _ = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "next"
        hub_channel.send("bye")

    def test_point_failure_travels_as_error_result(self, hub_channel):
        kind, _ = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "hello"
        hub_channel.send("welcome", node="wt", paths=[])
        kind, _ = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "next"
        hub_channel.send(
            "task", index=0, label="bad", config={}, seed=1,
            fn={"module": "no.such.module", "qualname": "f", "file": ""},
            attempt=0,
        )
        kind, body = self._recv_skipping_heartbeats(hub_channel)
        assert kind == "result"
        assert body["ok"] is False
        assert "no.such.module" in body["error"]
        hub_channel.send("bye")


def _grid_spec(gate=None, slow_label="n=0"):
    spec = SweepSpec(name="dist-grid", run_point=gated_point)
    for n in range(6):
        label = f"n={n}"
        config = {"n": n}
        if gate is not None and label == slow_label:
            config["gate"] = gate
        spec.add(label, **config)
    return spec


def _result_tree(root):
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in Path(root).rglob("*.res")
    }


class TestDistributedSweeps:
    def test_stats_account_wire_traffic_and_attribution(self, tmp_path):
        executor = DistributedExecutor(collect_stats=True, workers=2)
        spec = SweepSpec(name="stats", run_point=grid_point)
        for n in range(5):
            spec.add(f"n={n}", n=n)
        measured = run_sweep(spec, executor=executor)
        assert len(measured) == 5
        assert executor.stats.points == 5
        assert executor.stats.failures == 0
        assert executor.stats.wire_bytes > executor.stats.payload_bytes > 0
        assert executor.stats.retries == 0
        assert sum(executor.worker_points.values()) == 5
        assert set(executor.worker_points) <= {"w0", "w1"}
        assert executor.remote_capacity == 2

    def test_refuses_recursion_inside_a_worker(self, monkeypatch):
        from repro.exec.worker import WORKER_ENV

        monkeypatch.setenv(WORKER_ENV, "1")
        spec = SweepSpec(name="nested", run_point=grid_point)
        spec.add("n=1", n=1)
        with pytest.raises(RuntimeError, match="__main__"):
            run_sweep(spec, executor=DistributedExecutor(workers=1))

    def test_worker_kill_mid_sweep_is_byte_identical(self, tmp_path):
        """SIGKILL one worker while it holds a point: the sweep must
        complete, the cache tree must match the serial executor's byte
        for byte, and the retry must be attributed in the manifest."""
        gate = str(tmp_path / "gate")
        serial_dir = tmp_path / "serial"
        dist_dir = tmp_path / "dist"

        executor = DistributedExecutor(collect_stats=True, workers=2)
        outcome = {}

        def drive():
            try:
                outcome["results"] = run_sweep(
                    _grid_spec(gate=gate),
                    cache=ResultCache(dist_dir, fingerprint="pinned"),
                    executor=executor,
                )
            except BaseException as exc:  # surfaces in the main thread
                outcome["error"] = exc

        sweep = threading.Thread(target=drive)
        sweep.start()
        try:
            victim = None
            deadline = time.time() + 20.0
            while victim is None and time.time() < deadline:
                for name, indices in executor.inflight().items():
                    if 0 in indices:  # n=0 is the gated point
                        victim = name
                        break
                time.sleep(0.02)
            assert victim is not None, "gated point never dispatched"
            os.kill(executor.worker_pid(victim), signal.SIGKILL)
        finally:
            # Open the gate so the retried evaluation returns quickly
            # (and so a failed dispatch above cannot hang the sweep).
            Path(gate).touch()
            sweep.join(timeout=60.0)
        assert not sweep.is_alive()
        assert "error" not in outcome, outcome.get("error")
        assert executor.stats.retries >= 1

        serial_results = run_sweep(
            _grid_spec(gate=gate),
            cache=ResultCache(serial_dir, fingerprint="pinned"),
            executor="serial",
        )
        assert outcome["results"] == serial_results
        dist_tree = _result_tree(dist_dir)
        assert dist_tree == _result_tree(serial_dir)
        assert len(dist_tree) == 6

        records = load_manifest(dist_dir / "manifest.jsonl")
        assert validate_manifest(records) == []
        retried = [r for r in records if r.get("rec") == "point"
                   and r.get("label") == "n=0"]
        assert retried and retried[0]["retries"] >= 1
        assert retried[0]["worker"] != victim  # finished elsewhere


class TestWorkerSupervisorArgv:
    def test_builds_worker_command_lines(self, tmp_path):
        supervisor = WorkerSupervisor(str(tmp_path), str(tmp_path / "s"),
                                      slots=2)
        argv = supervisor.build_argv("w3")
        assert argv[1:3] == ["-m", "repro.exec.worker"]
        assert argv[argv.index("--name") + 1] == "w3"
        assert argv[argv.index("--slots") + 1] == "2"
        assert argv[argv.index("--hub") + 1].startswith("unix:")

    def test_tcp_wildcard_bind_connects_via_loopback(self, tmp_path):
        supervisor = WorkerSupervisor(str(tmp_path), ("0.0.0.0", 4242))
        argv = supervisor.build_argv("w0")
        assert argv[argv.index("--hub") + 1] == "tcp:127.0.0.1:4242"


class TestWorkerAttributionSurfaces:
    def _records(self):
        return [
            point_record("grid", "n=0", "ok", "miss", "distributed",
                         0.5, worker="w0", retries=1),
            point_record("grid", "n=1", "ok", "miss", "distributed",
                         0.25, worker="w1"),
            point_record("grid", "n=2", "ok", "miss", "distributed",
                         0.25, worker="w0"),
            point_record("grid", "n=3", "ok", "hit", "distributed", 0.001),
        ]

    def test_point_record_emits_worker_only_when_set(self):
        assert point_record("s", "l", "ok", "miss", "serial", 0.1).get(
            "worker") is None
        assert point_record("s", "l", "ok", "miss", "distributed", 0.1,
                            worker="w7")["worker"] == "w7"

    def test_summarize_aggregates_per_worker(self):
        stats = summarize_manifest(self._records())["specs"]["grid"]
        assert stats["retries"] == 1
        assert stats["workers"] == {
            "w0": {"points": 2, "retries": 1},
            "w1": {"points": 1, "retries": 0},
        }

    def test_obs_summary_prints_worker_attribution(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.jsonl"
        manifest.write_text("".join(
            json.dumps(record) + "\n" for record in self._records()
        ))
        assert obs_main(["summary", "--manifest", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "workers: w0(2 points, 1 retries), w1(1 points, 0 retries)" \
            in out
        assert "retries: 1 task re-dispatches" in out

    def test_validate_rejects_non_string_worker(self):
        record = point_record("s", "l", "ok", "miss", "distributed", 0.1,
                              worker="w0")
        record["worker"] = 7
        errors = validate_manifest([record])
        assert any("worker" in error for error in errors)
