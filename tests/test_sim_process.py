"""Unit tests for generator-based processes and futures."""

import pytest

from repro.sim.errors import SimulationError
from repro.sim.future import Future, FutureCancelled
from repro.sim.kernel import Simulator
from repro.sim.process import Delay, Process, ProcessKilled, WaitFor


def test_delay_suspends_for_virtual_time():
    sim = Simulator()
    times = []

    def body():
        times.append(sim.now)
        yield Delay(2.0)
        times.append(sim.now)
        yield Delay(3.0)
        times.append(sim.now)

    Process(sim, body())
    sim.run_until_idle()
    assert times == [0.0, 2.0, 5.0]


def test_wait_for_receives_future_value():
    sim = Simulator()
    future = Future()
    got = []

    def body():
        value = yield WaitFor(future)
        got.append(value)

    Process(sim, body())
    sim.schedule(1.0, future.set_result, "payload")
    sim.run_until_idle()
    assert got == ["payload"]


def test_bare_future_yield_is_waitfor_shorthand():
    sim = Simulator()
    future = Future()
    got = []

    def body():
        got.append((yield future))

    Process(sim, body())
    sim.schedule(0.5, future.set_result, 7)
    sim.run_until_idle()
    assert got == [7]


def test_future_error_raises_inside_generator():
    sim = Simulator()
    future = Future()
    caught = []

    def body():
        try:
            yield WaitFor(future)
        except ValueError as exc:
            caught.append(str(exc))

    Process(sim, body())
    sim.schedule(0.5, future.set_error, ValueError("boom"))
    sim.run_until_idle()
    assert caught == ["boom"]


def test_process_return_value_resolves_done_future():
    sim = Simulator()

    def body():
        yield Delay(1.0)
        return "result"

    process = Process(sim, body())
    sim.run_until_idle()
    assert process.done.result() == "result"
    assert not process.alive


def test_kill_interrupts_process():
    sim = Simulator()
    progress = []

    def body():
        progress.append("started")
        yield Delay(10.0)
        progress.append("never")

    process = Process(sim, body())
    sim.run(until=1.0)
    process.kill()
    sim.run_until_idle()
    assert progress == ["started"]
    assert not process.alive
    with pytest.raises(ProcessKilled):
        process.done.result()


def test_unsupported_yield_value_errors_the_process():
    sim = Simulator()
    caught = []

    def body():
        try:
            yield 42
        except SimulationError:
            caught.append("caught")
            raise

    process = Process(sim, body())
    sim.run_until_idle()
    assert caught == ["caught"]
    with pytest.raises(SimulationError):
        process.done.result()


def test_uncaught_exception_surfaces_via_done_future():
    sim = Simulator()

    def body():
        yield Delay(1.0)
        raise RuntimeError("workload bug")

    process = Process(sim, body())
    sim.run_until_idle()
    with pytest.raises(RuntimeError, match="workload bug"):
        process.done.result()


def test_already_resolved_future_resumes_immediately():
    sim = Simulator()
    future = Future()
    future.set_result("ready")
    got = []

    def body():
        got.append((yield WaitFor(future)))

    Process(sim, body())
    sim.run_until_idle()
    assert got == ["ready"]


class TestFuture:
    def test_double_resolve_rejected(self):
        future = Future()
        future.set_result(1)
        with pytest.raises(SimulationError):
            future.set_result(2)

    def test_result_before_resolution_rejected(self):
        with pytest.raises(SimulationError):
            Future().result()

    def test_cancel_pending_future(self):
        future = Future()
        future.cancel()
        with pytest.raises(FutureCancelled):
            future.result()

    def test_cancel_resolved_future_is_noop(self):
        future = Future()
        future.set_result("kept")
        future.cancel()
        assert future.result() == "kept"

    def test_callbacks_run_in_registration_order(self):
        future = Future()
        order = []
        future.add_callback(lambda f: order.append(1))
        future.add_callback(lambda f: order.append(2))
        future.set_result(None)
        assert order == [1, 2]

    def test_callback_after_resolution_runs_immediately(self):
        future = Future()
        future.set_result("x")
        seen = []
        future.add_callback(lambda f: seen.append(f.result()))
        assert seen == ["x"]
