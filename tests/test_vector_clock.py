"""Unit and property tests for vector clocks and write identifiers."""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.vector_clock import VectorClock
from repro.core.ids import WriteId

clients = st.sampled_from(["a", "b", "c", "d"])
clock_dicts = st.dictionaries(clients, st.integers(0, 30), max_size=4)


class TestWriteId:
    def test_str_parse_roundtrip(self):
        wid = WriteId("client-m", 17)
        assert WriteId.parse(str(wid)) == wid

    def test_parse_handles_colons_in_client_id(self):
        wid = WriteId.parse("node:1:cache:42")
        assert wid == WriteId("node:1:cache", 42)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            WriteId.parse("17")

    def test_next_increments_seqno(self):
        assert WriteId("c", 1).next() == WriteId("c", 2)

    def test_follows_same_client_only(self):
        assert WriteId("c", 2).follows(WriteId("c", 1))
        assert not WriteId("c", 1).follows(WriteId("c", 2))
        assert not WriteId("d", 2).follows(WriteId("c", 1))


class TestVectorClock:
    def test_empty_clock_reads_zero(self):
        assert VectorClock().get("anyone") == 0

    def test_advance_is_monotone(self):
        vc = VectorClock()
        vc.advance("a", 5)
        vc.advance("a", 3)
        assert vc.get("a") == 5

    def test_record_wid(self):
        vc = VectorClock()
        vc.record(WriteId("a", 2))
        assert vc.includes(WriteId("a", 1))
        assert vc.includes(WriteId("a", 2))
        assert not vc.includes(WriteId("a", 3))

    def test_dominates(self):
        big = VectorClock({"a": 3, "b": 2})
        small = VectorClock({"a": 1})
        assert big.dominates(small)
        assert not small.dominates(big)
        assert big.dominates(big)

    def test_empty_dominated_by_all(self):
        assert VectorClock({"a": 1}).dominates(VectorClock())
        assert VectorClock().dominates(VectorClock())

    def test_concurrent(self):
        left = VectorClock({"a": 2})
        right = VectorClock({"b": 1})
        assert left.concurrent_with(right)
        assert not left.concurrent_with(left)

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({"a": 1, "b": 0}) == VectorClock({"a": 1})

    def test_from_dict_none(self):
        assert VectorClock.from_dict(None) == VectorClock()

    @given(clock_dicts, clock_dicts)
    def test_merged_dominates_both(self, left, right):
        a, b = VectorClock(left), VectorClock(right)
        merged = a.merged(b)
        assert merged.dominates(a)
        assert merged.dominates(b)

    @given(clock_dicts, clock_dicts)
    def test_merge_commutative(self, left, right):
        assert VectorClock(left).merged(VectorClock(right)) == \
            VectorClock(right).merged(VectorClock(left))

    @given(clock_dicts, clock_dicts, clock_dicts)
    def test_merge_associative(self, x, y, z):
        a, b, c = VectorClock(x), VectorClock(y), VectorClock(z)
        assert a.merged(b).merged(c) == a.merged(b.merged(c))

    @given(clock_dicts)
    def test_merge_idempotent(self, entries):
        vc = VectorClock(entries)
        assert vc.merged(vc) == vc

    @given(clock_dicts, clock_dicts)
    def test_dominance_antisymmetry_means_equality(self, left, right):
        a, b = VectorClock(left), VectorClock(right)
        if a.dominates(b) and b.dominates(a):
            assert a == b

    @given(clock_dicts)
    def test_as_dict_roundtrip(self, entries):
        vc = VectorClock(entries)
        assert VectorClock.from_dict(vc.as_dict()) == vc

    @given(clock_dicts)
    def test_copy_is_independent(self, entries):
        vc = VectorClock(entries)
        copy = vc.copy()
        copy.advance("zz", 99)
        assert vc.get("zz") == 0
