"""Integration tests for propagation mechanics: push/pull, immediate/lazy,
update/invalidate/notify, partial/full transfers."""

import pytest

from repro.coherence.models import CoherenceModel
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    OutdateReaction,
    Propagation,
    ReplicationPolicy,
    TransferInitiative,
    TransferInstant,
)
from repro.sim.kernel import Simulator
from repro.web.webobject import WebObject

from tests.conftest import resolve


def build(policy, pages=None, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.02))
    site = WebObject(sim, net, policy=policy,
                     pages=pages or {"p.html": "seed"},
                     designated_writer="master")
    server = site.create_server("server")
    cache = site.create_cache("cache")
    master = site.bind_browser("m", "master", read_store="server",
                               write_store="server")
    return sim, site, server, cache, master


def test_immediate_push_reaches_cache_without_reads():
    policy = ReplicationPolicy(coherence_transfer=CoherenceTransfer.PARTIAL)
    sim, site, server, cache, master = build(policy)
    resolve(sim, master.write_page("p.html", "v1"))
    sim.run_until_idle()
    assert cache.version() == {"master": 1}
    assert cache.state()["p.html"]["content"] == "v1"


def test_lazy_push_aggregates_one_flush_per_window():
    policy = ReplicationPolicy(
        transfer_instant=TransferInstant.LAZY,
        lazy_interval=5.0,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site, server, cache, master = build(policy)
    futures = [master.append_to_page("p.html", f"+{index}")
               for index in range(4)]
    sim.run(until=2.0)  # acks land; the flush window has not closed yet
    assert all(f.done for f in futures)
    assert cache.version() == {}, "nothing pushed before the window closes"
    sim.run(until=8.0)
    assert cache.version() == {"master": 4}
    # All four writes arrived in a single aggregated update message.
    assert server.engine.counters["tx:update"] == 1


def test_lazy_fifo_aggregation_compresses_superseded_writes():
    policy = ReplicationPolicy(
        model=CoherenceModel.FIFO,
        transfer_instant=TransferInstant.LAZY,
        lazy_interval=5.0,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site, server, cache, master = build(policy)
    futures = [master.write_page("p.html", f"rev {index}")
               for index in range(5)]
    sim.run(until=8.0)
    assert all(f.done for f in futures)
    assert cache.state()["p.html"]["content"] == "rev 4"
    # The aggregated batch kept only the last overwrite.
    assert cache.engine.counters["rx:update"] == 1
    applies = [e for e in site.trace.events
               if type(e).__name__ == "ApplyEvent" and e.store == "cache"]
    assert len(applies) == 1


def test_full_coherence_transfer_ships_snapshots():
    policy = ReplicationPolicy(coherence_transfer=CoherenceTransfer.FULL)
    sim, site, server, cache, master = build(
        policy, pages={"a": "1", "b": "2"})
    resolve(sim, master.write_page("a", "new"))
    sim.run_until_idle()
    assert server.engine.counters["tx:update_full"] == 1
    # The snapshot brings the whole document, not just the touched page.
    assert set(cache.state()) == {"a", "b"}


def test_invalidate_marks_and_refetches_on_access():
    policy = ReplicationPolicy(
        propagation=Propagation.INVALIDATE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
        object_outdate_reaction=OutdateReaction.WAIT,
    )
    sim, site, server, cache, master = build(policy)
    reader = site.dso  # warm the cache first
    user = site.dso
    browser = site.bind_browser("u", "user", read_store="cache")
    resolve(sim, browser.read_page("p.html"))
    assert cache.state()["p.html"]["content"] == "seed"
    resolve(sim, master.write_page("p.html", "v2"))
    sim.run_until_idle()
    assert "p.html" in cache.engine.invalid_keys
    # Content refetched only on next access.
    page = resolve(sim, browser.read_page("p.html"))
    assert page["content"] == "v2"
    assert "p.html" not in cache.engine.invalid_keys


def test_invalidate_with_demand_reaction_refetches_immediately():
    policy = ReplicationPolicy(
        propagation=Propagation.INVALIDATE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
        object_outdate_reaction=OutdateReaction.DEMAND,
    )
    sim, site, server, cache, master = build(policy)
    browser = site.bind_browser("u", "user", read_store="cache")
    resolve(sim, browser.read_page("p.html"))
    resolve(sim, master.write_page("p.html", "v2"))
    sim.run_until_idle()
    assert cache.state()["p.html"]["content"] == "v2"
    assert "p.html" not in cache.engine.invalid_keys


def test_notification_only_marks_known_remote():
    policy = ReplicationPolicy(
        coherence_transfer=CoherenceTransfer.NOTIFICATION,
        object_outdate_reaction=OutdateReaction.WAIT,
    )
    sim, site, server, cache, master = build(policy)
    resolve(sim, master.write_page("p.html", "v2"))
    sim.run_until_idle()
    assert server.engine.counters["tx:notify"] == 1
    assert cache.version() == {}
    assert cache.engine.known_remote.get("master") == 1


def test_notification_with_demand_reaction_pulls_content():
    policy = ReplicationPolicy(
        coherence_transfer=CoherenceTransfer.NOTIFICATION,
        object_outdate_reaction=OutdateReaction.DEMAND,
    )
    sim, site, server, cache, master = build(policy)
    resolve(sim, master.write_page("p.html", "v2"))
    sim.run_until_idle()
    assert cache.version() == {"master": 1}


def test_pull_on_access_validates_every_read():
    policy = ReplicationPolicy(
        transfer_initiative=TransferInitiative.PULL,
        transfer_instant=TransferInstant.IMMEDIATE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site, server, cache, master = build(policy)
    browser = site.bind_browser("u", "user", read_store="cache")
    resolve(sim, master.write_page("p.html", "v1"))
    assert cache.version() == {}, "pull mode must not push"
    page = resolve(sim, browser.read_page("p.html"))
    assert page["content"] == "v1"
    demands_after_first = cache.engine.counters["tx:demand"]
    resolve(sim, browser.read_page("p.html"))
    assert cache.engine.counters["tx:demand"] > demands_after_first, \
        "every access revalidates upstream"


def test_periodic_pull_catches_up_on_interval():
    policy = ReplicationPolicy(
        transfer_initiative=TransferInitiative.PULL,
        transfer_instant=TransferInstant.LAZY,
        lazy_interval=3.0,
        coherence_transfer=CoherenceTransfer.PARTIAL,
    )
    sim, site, server, cache, master = build(policy)
    resolve(sim, master.write_page("p.html", "v1"))
    assert cache.version() == {}
    sim.run(until=sim.now + 3.5)
    assert cache.version() == {"master": 1}


def test_mirror_syncs_full_state_at_creation():
    policy = ReplicationPolicy(coherence_transfer=CoherenceTransfer.PARTIAL)
    sim = Simulator(seed=2)
    net = Network(sim, latency=ConstantLatency(0.02))
    site = WebObject(sim, net, policy=policy,
                     pages={"a": "1", "b": "2"}, designated_writer="m")
    site.create_server("server")
    mirror = site.create_mirror("mirror")
    sim.run_until_idle()
    assert set(mirror.state()) == {"a", "b"}


def test_cascade_through_mirror_to_cache():
    policy = ReplicationPolicy(coherence_transfer=CoherenceTransfer.PARTIAL)
    sim = Simulator(seed=2)
    net = Network(sim, latency=ConstantLatency(0.02))
    site = WebObject(sim, net, policy=policy, pages={"p": "seed"},
                     designated_writer="master")
    site.create_server("server")
    mirror = site.create_mirror("mirror")
    cache = site.create_cache("cache", parent="mirror")
    master = site.bind_browser("m", "master", read_store="server")
    sim.run_until_idle()
    resolve(sim, master.write_page("p", "v1"))
    sim.run_until_idle()
    assert mirror.state()["p"]["content"] == "v1"
    assert cache.state()["p"]["content"] == "v1"
    # The cache heard it from the mirror, not the server.
    assert mirror.engine.counters["tx:update"] >= 1
