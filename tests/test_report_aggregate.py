"""Tests for the aggregation layer (synthetic results, no simulation)."""

import pytest

from repro.report.aggregate import (
    CellStats,
    aggregate,
    column_abbrev,
    column_title,
)
from repro.report.grid import METRICS, GridDef

TINY = GridDef(
    name="tiny",
    title="Tiny synthetic grid",
    description="Aggregation-test fixture.",
    protocols=("alpha", "beta"),
    workloads=("read-heavy",),
    sizes=(2, 4),
    replications=2,
)


def _synthetic_results(missing=None, drop_metric=None):
    results = {}
    base = 0.0
    for protocol in TINY.protocols:
        for workload in TINY.workloads:
            for size in TINY.sizes:
                for rep in range(TINY.replications):
                    label = (protocol, workload, size, rep)
                    if label == missing:
                        continue
                    point = {key: base + rep for key in METRICS}
                    if drop_metric:
                        point.pop(drop_metric)
                    results[label] = point
                    base += 10.0
    return results


def test_cell_stats_mean_and_percentiles():
    stats = CellStats.from_values([1.0, 3.0])
    assert stats.mean == 2.0
    assert stats.p50 == 2.0
    assert stats.p95 == pytest.approx(2.9)
    assert stats.values == (1.0, 3.0)


def test_cell_stats_rejects_empty():
    with pytest.raises(ValueError):
        CellStats.from_values([])


def test_aggregate_shapes_and_reduces_replications():
    tables = aggregate(TINY, _synthetic_results())
    assert set(tables) == set(TINY.metric_keys())
    table = tables["wire_kb"]
    assert table.rows == ("alpha", "beta")
    assert table.cols == (("read-heavy", 2), ("read-heavy", 4))
    # First cell: replications 0.0 and 11.0 (base advances by 10 per
    # point, +rep).
    cell = table.cell("alpha", ("read-heavy", 2))
    assert cell.values == (0.0, 11.0)
    assert cell.mean == 5.5
    low, high = table.value_range()
    assert low == 5.5 and high > low


def test_aggregate_missing_point_is_loud():
    results = _synthetic_results(missing=("beta", "read-heavy", 4, 1))
    with pytest.raises(KeyError, match="missing point"):
        aggregate(TINY, results)


def test_aggregate_missing_metric_is_loud():
    with pytest.raises(KeyError, match="lacks metric"):
        aggregate(TINY, _synthetic_results(drop_metric="stale_fraction"))


def test_column_labels():
    assert column_title(("read-heavy", 4)) == "read-heavy / 4"
    assert column_abbrev(("read-heavy", 4)) == "RH4"
    assert column_abbrev(("balanced", 8)) == "B8"
