"""Tests for the exec-layer grid helpers and cache introspection."""

import pytest

from repro.exec import (
    ResultCache,
    SweepSpec,
    cached_point_labels,
    run_sweep,
)


def product_point(config, seed):
    return config["a"] * config["b"] + config.get("offset", 0)


class TestAddGrid:
    def test_cross_product_order_last_axis_fastest(self):
        spec = SweepSpec(name="grid", run_point=product_point)
        spec.add_grid(a=(1, 2), b=(10, 20, 30))
        assert spec.labels() == [
            (1, 10), (1, 20), (1, 30),
            (2, 10), (2, 20), (2, 30),
        ]
        assert spec.points[0].config == {"a": 1, "b": 10}
        assert spec.points[-1].config == {"a": 2, "b": 30}

    def test_fixed_config_merged_without_widening_labels(self):
        spec = SweepSpec(name="grid", run_point=product_point)
        points = spec.add_grid(_fixed={"offset": 5}, a=(1,), b=(10, 20))
        assert [p.label for p in points] == [(1, 10), (1, 20)]
        assert all(p.config["offset"] == 5 for p in points)

    def test_single_axis_keeps_tuple_labels(self):
        spec = SweepSpec(name="grid", run_point=product_point)
        spec.add_grid(a=(1, 2), b=(3,))
        # Labels keep one slot per axis even for degenerate axes.
        assert spec.labels() == [(1, 3), (2, 3)]

    def test_one_shot_iterable_axes_fully_expanded(self):
        # A generator axis must not be exhausted by validation.
        spec = SweepSpec(name="grid", run_point=product_point)
        spec.add_grid(a=(x for x in (1, 2)), b=iter((10, 20)))
        assert spec.labels() == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_empty_axis_rejected(self):
        spec = SweepSpec(name="grid", run_point=product_point)
        with pytest.raises(ValueError, match="non-empty"):
            spec.add_grid(a=(1, 2), b=())

    def test_no_axes_rejected(self):
        spec = SweepSpec(name="grid", run_point=product_point)
        with pytest.raises(ValueError, match="at least one axis"):
            spec.add_grid()

    def test_fixed_axis_overlap_rejected(self):
        spec = SweepSpec(name="grid", run_point=product_point)
        with pytest.raises(ValueError, match="overlap"):
            spec.add_grid(_fixed={"a": 1}, a=(1, 2), b=(3,))

    def test_grid_runs_through_runner(self):
        spec = SweepSpec(name="grid", run_point=product_point)
        spec.add_grid(a=(2, 3), b=(10, 20))
        results = run_sweep(spec)
        assert results == {
            (2, 10): 20, (2, 20): 40, (3, 10): 30, (3, 20): 60,
        }


class TestCacheIntrospection:
    def _run(self, tmp_path, n=3, name="squares"):
        spec = SweepSpec(name=name, run_point=product_point)
        for x in range(n):
            spec.add(f"x={x}", a=x, b=x)
        cache = ResultCache(tmp_path)
        run_sweep(spec, cache=cache)
        return spec, cache

    def test_empty_cache_has_no_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.spec_names() == []
        assert cache.entry_count() == 0
        assert list(cache.iter_entries()) == []

    def test_entries_enumerated_per_spec(self, tmp_path):
        self._run(tmp_path, n=3, name="alpha")
        _, cache = self._run(tmp_path, n=2, name="beta")
        assert cache.spec_names() == ["alpha", "beta"]
        assert cache.entry_count() == 5
        assert cache.entry_count("alpha") == 3
        assert cache.entry_count("beta") == 2
        for name, path in cache.iter_entries("beta"):
            assert name == "beta"
            assert path.suffix == ".res"

    def test_other_fingerprints_invisible(self, tmp_path):
        _, cache = self._run(tmp_path)
        other = ResultCache(tmp_path, fingerprint="deadbeef00000000")
        assert other.spec_names() == []
        assert other.entry_count() == 0

    def test_cached_point_labels_reports_coverage(self, tmp_path):
        spec = SweepSpec(name="coverage", run_point=product_point)
        for x in range(4):
            spec.add(f"x={x}", a=x, b=x)
        cache = ResultCache(tmp_path)
        assert cached_point_labels(spec, cache) == []
        partial = SweepSpec(name="coverage", run_point=product_point)
        partial.add("x=1", a=1, b=1)
        partial.add("x=3", a=3, b=3)
        run_sweep(partial, cache=cache)
        assert cached_point_labels(spec, cache) == ["x=1", "x=3"]

    def test_cached_point_labels_preserves_counters(self, tmp_path):
        spec, cache = self._run(tmp_path)
        hits, misses = cache.hits, cache.misses
        cached_point_labels(spec, cache)
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_has_probes_without_unpickling(self, tmp_path):
        spec, cache = self._run(tmp_path, n=1)
        point = spec.points[0]
        from repro.exec.cache import function_fingerprint
        fn_key = function_fingerprint(spec.run_point)
        args = (spec.name, spec.base_seed, point.config, fn_key)
        assert cache.has(*args, point_seed=spec.seed_for(point))
        assert not cache.has("other-spec", spec.base_seed, point.config,
                             fn_key, point_seed=spec.seed_for(point))
        # Corrupt the entry on disk: has() still answers True (it is an
        # existence probe), while get() treats it as a miss.
        [(_, path)] = cache.iter_entries()
        path.write_bytes(b"garbage")
        assert cache.has(*args, point_seed=spec.seed_for(point))
        hit, _ = cache.get(*args, point_seed=spec.seed_for(point))
        assert not hit
