"""Unit tests for replication policies (Table 1) and their validation."""

import pytest

from repro.coherence.models import CoherenceModel
from repro.core.interfaces import Role
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    OutdateReaction,
    PolicyError,
    Propagation,
    ReplicationPolicy,
    StoreScope,
    TABLE1_ROWS,
    TransferInitiative,
    TransferInstant,
    WriteSet,
)


class TestValidation:
    def test_defaults_valid(self):
        ReplicationPolicy().validate()

    def test_lazy_requires_positive_interval(self):
        policy = ReplicationPolicy(transfer_instant=TransferInstant.LAZY,
                                   lazy_interval=0.0)
        with pytest.raises(PolicyError):
            policy.validate()

    def test_pull_with_notification_rejected(self):
        policy = ReplicationPolicy(
            transfer_initiative=TransferInitiative.PULL,
            coherence_transfer=CoherenceTransfer.NOTIFICATION,
        )
        with pytest.raises(PolicyError):
            policy.validate()

    def test_validate_returns_self_for_chaining(self):
        policy = ReplicationPolicy()
        assert policy.validate() is policy


class TestStoreScope:
    def test_permanent_scope(self):
        roles = StoreScope.PERMANENT.enforced_roles()
        assert roles == frozenset({Role.PERMANENT})

    def test_middle_scope(self):
        roles = StoreScope.PERMANENT_AND_OBJECT_INITIATED.enforced_roles()
        assert Role.OBJECT_INITIATED in roles
        assert Role.CLIENT_INITIATED not in roles

    def test_all_scope(self):
        roles = StoreScope.ALL.enforced_roles()
        assert len(roles) == 3

    def test_enforces_at(self):
        policy = ReplicationPolicy(store_scope=StoreScope.PERMANENT)
        assert policy.enforces_at(Role.PERMANENT)
        assert not policy.enforces_at(Role.CLIENT_INITIATED)


class TestConferenceExample:
    """The policy must reproduce Table 2 of the paper exactly."""

    def test_values_match_table2(self):
        policy = ReplicationPolicy.conference_example()
        assert policy.model is CoherenceModel.PRAM
        assert policy.propagation is Propagation.UPDATE
        assert policy.store_scope is StoreScope.ALL
        assert policy.write_set is WriteSet.SINGLE
        assert policy.transfer_initiative is TransferInitiative.PUSH
        assert policy.transfer_instant is TransferInstant.LAZY
        assert policy.access_transfer is AccessTransfer.FULL
        assert policy.coherence_transfer is CoherenceTransfer.PARTIAL
        assert policy.object_outdate_reaction is OutdateReaction.WAIT
        assert policy.client_outdate_reaction is OutdateReaction.DEMAND

    def test_table2_rows_render(self):
        rows = ReplicationPolicy.conference_example().table2_rows()
        as_dict = dict(rows)
        assert as_dict["Coherence propagation"] == "update"
        assert as_dict["Store"] == "all"
        assert as_dict["Write set"] == "single"
        assert as_dict["Transfer initiative"] == "push"
        assert as_dict["Transfer instant"] == "lazy (periodic)"
        assert as_dict["Access transfer type"] == "full"
        assert as_dict["Coherence transfer type"] == "partial"
        assert as_dict["Object-outdate reaction"] == "wait"
        assert as_dict["Client-outdate reaction"] == "demand"


class TestTable1:
    def test_seven_parameters(self):
        assert len(TABLE1_ROWS) == 7

    def test_parameter_names_match_paper(self):
        names = [row[0] for row in TABLE1_ROWS]
        assert names == [
            "Consistency propagation",
            "Store",
            "Write set",
            "Transfer initiative",
            "Transfer instant",
            "Access transfer type",
            "Coherence transfer type",
        ]

    def test_values_match_paper(self):
        values = {row[0]: row[1] for row in TABLE1_ROWS}
        assert values["Consistency propagation"] == ["update", "invalidate"]
        assert values["Write set"] == ["single", "multiple"]
        assert values["Transfer initiative"] == ["push", "pull"]
        assert "notification" in values["Coherence transfer type"]

    def test_every_row_has_meaning(self):
        assert all(len(row[2]) > 10 for row in TABLE1_ROWS)
