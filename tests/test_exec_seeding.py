"""Determinism regression tests for sweep seed derivation.

The golden values pin the derivation across runs, processes and
interpreter invocations: if any of these change, every cached sweep
result and every published number silently shifts, so a change here must
be deliberate (and must invalidate caches by design, via the code
fingerprint).
"""

import subprocess
import sys

import pytest

from repro.exec import config_hash, derive_seed
from repro.exec.seeding import canonicalize
from repro.replication.policy import Propagation
from repro.sim.rng import SeededRng

#: One fixed config, hashed once and pinned forever.
GOLDEN_CONFIG = {"writes": 40, "interval": 5.0, "propagation": None}
GOLDEN_SEED = 8961577727653388479
GOLDEN_HASH = (
    "ba97226a4836dc54e6f95748e48b223d701d0c71ee2f669882dc5e6edba2873a"
)


class TestGoldenValues:
    def test_derive_seed_matches_golden(self):
        assert derive_seed("golden", GOLDEN_CONFIG) == GOLDEN_SEED

    def test_config_hash_matches_golden(self):
        assert config_hash(GOLDEN_CONFIG) == GOLDEN_HASH

    def test_stable_across_interpreter_processes(self):
        # A fresh interpreter has a different PYTHONHASHSEED; the
        # derivation must not notice.
        code = (
            "from repro.exec import derive_seed; "
            f"print(derive_seed('golden', {GOLDEN_CONFIG!r}))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert int(out.stdout.strip()) == GOLDEN_SEED


class TestDerivation:
    def test_depends_on_config(self):
        a = derive_seed("exp", {"x": 1})
        b = derive_seed("exp", {"x": 2})
        assert a != b

    def test_depends_on_experiment_name(self):
        assert derive_seed("exp-a", {"x": 1}) != derive_seed("exp-b", {"x": 1})

    def test_depends_on_base_seed(self):
        assert (derive_seed("exp", {"x": 1}, base_seed=0)
                != derive_seed("exp", {"x": 1}, base_seed=1))

    def test_key_order_is_irrelevant(self):
        assert (derive_seed("exp", {"a": 1, "b": 2})
                == derive_seed("exp", {"b": 2, "a": 1}))

    def test_seed_fits_in_63_bits(self):
        seed = derive_seed("exp", GOLDEN_CONFIG)
        assert 0 <= seed < 2 ** 63


class TestCanonicalize:
    def test_enums_encode_class_and_member(self):
        assert canonicalize(Propagation.UPDATE) == {
            "__enum__": "Propagation.UPDATE"
        }

    def test_tuples_and_lists_coincide(self):
        assert canonicalize((1, 2)) == canonicalize([1, 2])

    def test_int_and_float_of_same_value_differ(self):
        assert canonicalize(1) != canonicalize(1.0)

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            canonicalize({1: "x"})

    def test_arbitrary_objects_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())


class TestRngForkStability:
    """The simulator's fork() must be hash-randomization-proof too."""

    def test_fork_seed_golden(self):
        assert SeededRng(0).fork("workload").seed == 355801556
        assert SeededRng(1234).fork("writer").seed == 1701281600

    def test_fork_stable_across_interpreter_processes(self):
        code = (
            "from repro.sim.rng import SeededRng; "
            "print(SeededRng(0).fork('workload').seed)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert int(out.stdout.strip()) == 355801556
