"""Execute a fault plan against a clock and a faultable transport.

The :class:`FaultInjector` is the one piece of code that turns the
declarative :class:`~repro.faults.plan.FaultPlan` into calls on the
:class:`~repro.faults.transport.FaultableTransport` control surface.  It
supports two driving modes:

- **timed** (:meth:`start`): every event is scheduled on the
  :class:`~repro.transport.interface.Clock` at its plan time, so the
  same plan unfolds in virtual seconds under the simulator and in real
  seconds under the live loop.  Events are scheduled non-daemon: a run
  that drains to idle always sees its heals fire, so a partition can
  never leak past the end of a sweep point.
- **stepped** (:meth:`step`): the next event applies immediately,
  ignoring its timestamp.  Convergence-gated parity scripts use this to
  pin the interleaving of faults and workload exactly, which is what
  makes the sim/live coherence signatures comparable (experiment X12).

Either way the injector records what it applied and when
(:attr:`applied`), and derives the measurement inputs of the
partition-aware metrics (:mod:`repro.metrics.faults`):
:meth:`cut_windows` (per-partition intervals with their sides, driving
staleness-under-partition) and :meth:`recovery_marks` (heal/restart
times, driving recovery lag).  :meth:`partition_windows` and
:meth:`outage_windows` are the coarser any-fault-active summaries for
diagnostics and tests.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.faults.plan import (
    CrashNode,
    FaultEvent,
    FaultPlan,
    Heal,
    LossBurst,
    Partition,
    RestartNode,
)
from repro.obs import tracer as _obs


class FaultInjector:
    """Applies one :class:`FaultPlan` to one clock/transport pair."""

    def __init__(self, clock: Any, transport: Any, plan: FaultPlan) -> None:
        self.clock = clock
        self.transport = transport
        self.plan = plan
        self._events = plan.sorted_events()
        self._cursor = 0
        self._handles: List[Any] = []
        self._started = False
        #: Applied events as ``(clock time, event)``, in application order.
        self.applied: List[Tuple[float, FaultEvent]] = []

    # -- driving ---------------------------------------------------------------

    def start(self) -> None:
        """Schedule every event at its plan time, relative to now.

        Idempotent; events already applied via :meth:`step` are not
        rescheduled.
        """
        if self._started:
            return
        self._started = True
        base = self.clock.now
        for event in self._events[self._cursor:]:
            delay = max(0.0, base + event.at - self.clock.now)
            self._handles.append(
                self.clock.schedule(delay, self._apply_scheduled, event)
            )
        self._cursor = len(self._events)

    def step(self) -> Optional[FaultEvent]:
        """Apply the next pending event immediately; ``None`` when done.

        Stepping ignores event timestamps (they order the plan, nothing
        more) and must run on the protocol thread -- route through
        ``Backend.call`` from harness code.
        """
        if self._started:
            raise RuntimeError("cannot step() an injector after start()")
        if self._cursor >= len(self._events):
            return None
        event = self._events[self._cursor]
        self._cursor += 1
        self._apply(event)
        return event

    def cancel(self) -> None:
        """Cancel every not-yet-fired scheduled event."""
        for handle in self._handles:
            handle.cancel()
        self._handles = []

    @property
    def exhausted(self) -> bool:
        """Whether every plan event has been applied or scheduled."""
        return self._cursor >= len(self._events)

    # -- application -----------------------------------------------------------

    def _apply_scheduled(self, event: FaultEvent) -> None:
        self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        transport = self.transport
        if isinstance(event, Partition):
            transport.partition(event.side_a, event.side_b)
        elif isinstance(event, Heal):
            if event.partial:
                transport.heal(event.side_a, event.side_b)
            else:
                transport.heal()
        elif isinstance(event, LossBurst):
            previous = transport.loss_rate
            transport.set_loss_rate(event.loss_rate)
            self._handles.append(
                self.clock.schedule(
                    event.duration, transport.set_loss_rate, previous
                )
            )
        elif isinstance(event, CrashNode):
            transport.crash_node(event.node)
        elif isinstance(event, RestartNode):
            transport.restart_node(event.node)
        else:  # pragma: no cover - plans validate event types at build
            raise TypeError(f"unknown fault event {event!r}")
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.event(
                self.clock.now, "fault.apply",
                fault=type(event).__name__, detail=str(event),
            )
        self.applied.append((self.clock.now, event))

    # -- measurement windows ---------------------------------------------------

    def cut_windows(
        self, until: float
    ) -> List[Tuple[float, float, Tuple[frozenset, frozenset]]]:
        """Per applied partition: ``(start, end, (side_a, side_b))``.

        A cut still open at ``until`` is clipped there.  Partial heals
        close the matching cut (orientation-insensitive); a full heal
        closes all open cuts.
        """
        open_cuts: List[Tuple[float, Tuple[frozenset, frozenset]]] = []
        windows: List[Tuple[float, float, Tuple[frozenset, frozenset]]] = []
        for time, event in self.applied:
            if isinstance(event, Partition):
                sides = (frozenset(event.side_a), frozenset(event.side_b))
                open_cuts.append((time, sides))
            elif isinstance(event, Heal):
                if not event.partial:
                    windows.extend(
                        (start, time, sides) for start, sides in open_cuts
                    )
                    open_cuts = []
                    continue
                healed = (frozenset(event.side_a), frozenset(event.side_b))
                for index, (start, sides) in enumerate(open_cuts):
                    if sides in (healed, (healed[1], healed[0])):
                        windows.append((start, time, sides))
                        del open_cuts[index]
                        break
        windows.extend(
            (start, max(start, until), sides) for start, sides in open_cuts
        )
        return sorted(windows)

    def partition_windows(self, until: float) -> List[Tuple[float, float]]:
        """Intervals during which at least one partition was active.

        Derived from the *applied* log, so both timed and stepped runs
        report real clock times.  A partition still open at ``until`` is
        clipped there.
        """
        open_cuts = 0
        start: Optional[float] = None
        windows: List[Tuple[float, float]] = []
        for time, event in self.applied:
            if isinstance(event, Partition):
                if open_cuts == 0:
                    start = time
                open_cuts += 1
            elif isinstance(event, Heal) and open_cuts > 0:
                open_cuts = 0 if not event.partial else open_cuts - 1
                if open_cuts == 0 and start is not None:
                    windows.append((start, time))
                    start = None
        if start is not None:
            windows.append((start, max(start, until)))
        return windows

    def outage_windows(self, until: float) -> List[Tuple[float, float]]:
        """Per-crash intervals ``(crash time, restart time)``, clipped."""
        down: dict = {}
        windows: List[Tuple[float, float]] = []
        for time, event in self.applied:
            if isinstance(event, CrashNode):
                down[event.node] = time
            elif isinstance(event, RestartNode) and event.node in down:
                windows.append((down.pop(event.node), time))
        for start in down.values():
            windows.append((start, max(start, until)))
        return sorted(windows)

    def recovery_marks(self) -> List[float]:
        """Times at which connectivity was restored (heals and restarts).

        These are the reference points the recovery-lag metric measures
        from: after each mark, how long until every replica covered the
        writes acknowledged before it?
        """
        return [
            time
            for time, event in self.applied
            if isinstance(event, (Heal, RestartNode))
        ]
