"""The fault control surface shared by both network stacks.

:class:`FaultableTransportMixin` is the partition / queue / heal / crash
machinery that used to live inside the simulated
:class:`~repro.net.network.Network`, extracted so the wall-clock
:class:`~repro.runtime.live.LiveNetwork` implements the *identical*
semantics:

- a **partition** separates two node sets; reliable datagrams between
  separated nodes queue (TCP keeps retransmitting) and flush on heal,
  unreliable ones are dropped and counted;
- a **heal** removes one named partition (flushing only pairs no longer
  separated by any remaining cut) or all of them, always flushing in
  original send order so recovery is deterministic;
- a **crashed** node is down, not slow: datagrams to or from it --
  including entries already queued behind a partition -- are dropped and
  counted, and a restart simply stops the dropping (the node catches up
  through the protocol's own demand/state-transfer path);
- a **loss rate** applies to unreliable datagrams only, sampled from the
  seeded RNG the concrete transport hands to :meth:`_init_faults`.

Concrete transports call :meth:`_fault_blocked` in their ``send`` path,
:meth:`_lose_unreliable` in their unreliable delivery path,
:meth:`_crashed_at_arrival` when a datagram lands, and provide ``stats``
(a :class:`~repro.net.network.NetworkStats`) plus
``_deliver_reliable(src, dst, payload, size_bytes)``.

Fault state is normally mutated on the protocol thread (the simulator's
event loop or the live dispatcher): the
:class:`~repro.faults.injector.FaultInjector` schedules every mutation
through the :class:`~repro.transport.interface.Clock`, and harness code
routes manual mutations through ``Backend.call``.  The live transport's
``send`` may nevertheless run on any thread, so the partition queue and
fault sets are guarded by a reentrant lock -- a queued reliable datagram
can never be lost to a send racing a concurrent heal's flush.
"""

from __future__ import annotations

import threading
from typing import (
    FrozenSet,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.obs import tracer as _obs
from repro.sim.rng import SeededRng

#: One queued reliable datagram: (src, dst, payload, size_bytes).
QueuedDatagram = Tuple[str, str, object, int]


@runtime_checkable
class FaultableTransport(Protocol):
    """The fault-injection control surface of a transport.

    Both the simulated and the live network implement this on top of the
    base :class:`~repro.transport.interface.Transport` protocol, so a
    :class:`~repro.faults.injector.FaultInjector` can execute the same
    :class:`~repro.faults.plan.FaultPlan` against either substrate.
    """

    loss_rate: float

    def partition(self, side_a: Sequence[str], side_b: Sequence[str]) -> None:
        """Cut connectivity between two node sets until a heal."""
        ...

    def heal(
        self,
        side_a: Optional[Sequence[str]] = None,
        side_b: Optional[Sequence[str]] = None,
    ) -> None:
        """Remove one partition (both sides) or all (no arguments)."""
        ...

    def partitioned(self, src: str, dst: str) -> bool:
        """Whether a partition currently separates ``src`` and ``dst``."""
        ...

    def set_loss_rate(self, rate: float) -> None:
        """Set the unreliable-datagram loss rate (loss bursts)."""
        ...

    def crash_node(self, node: str) -> None:
        """Take ``node`` down; its traffic is dropped until restart."""
        ...

    def restart_node(self, node: str) -> None:
        """Bring a crashed ``node`` back up."""
        ...

    def is_crashed(self, node: str) -> bool:
        """Whether ``node`` is currently crashed."""
        ...


class FaultableTransportMixin:
    """Partition / queue / heal / crash machinery for a datagram transport.

    See the module docstring for the contract with concrete classes.
    """

    def _init_faults(
        self, loss_rng: SeededRng, loss_rate: float = 0.0
    ) -> None:
        """Initialize fault state; call once from the concrete ``__init__``."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._partitions: List[Tuple[FrozenSet[str], FrozenSet[str]]] = []
        self._partition_queue: List[QueuedDatagram] = []
        self._crashed: set = set()
        self._fault_lock = threading.RLock()
        # True whenever a partition or a crash is in effect.  The
        # simulated network's send fast lane keys off this flag to skip
        # the whole fault gate while the network is healthy; every
        # mutator below keeps it equal to
        # ``bool(self._partitions or self._crashed)``.
        self._faults_active = False

    def _obs_now(self) -> float:
        """The concrete transport's clock reading for trace timestamps.

        The mixin has no clock of its own; both networks override this
        (virtual time on sim, wall-clock seconds on live).
        """
        return 0.0

    # -- partitions -----------------------------------------------------------

    def partition(self, side_a: Sequence[str], side_b: Sequence[str]) -> None:
        """Cut connectivity between two node sets until :meth:`heal`."""
        with self._fault_lock:
            self._partitions.append((frozenset(side_a), frozenset(side_b)))
            self._faults_active = True

    def heal(
        self,
        side_a: Optional[Sequence[str]] = None,
        side_b: Optional[Sequence[str]] = None,
    ) -> None:
        """Remove partitions and flush reliable traffic no longer blocked.

        With no arguments every partition is removed (the historical
        all-or-nothing heal).  With both sides given, exactly the one
        matching partition is removed -- orientation-insensitive -- and
        only queued pairs that no remaining partition separates are
        flushed, in their original send order.  Entries to or from
        crashed nodes stay blocked either way.
        """
        if (side_a is None) != (side_b is None):
            raise ValueError(
                "heal() takes both sides (partial) or neither (full)"
            )
        with self._fault_lock:
            if side_a is None:
                self._partitions.clear()
            else:
                cut = (frozenset(side_a), frozenset(side_b))
                flipped = (cut[1], cut[0])
                if cut in self._partitions:
                    self._partitions.remove(cut)
                elif flipped in self._partitions:
                    self._partitions.remove(flipped)
                else:
                    raise ValueError(
                        f"no partition {sorted(cut[0])} | {sorted(cut[1])} "
                        "to heal"
                    )
            self._faults_active = bool(self._partitions or self._crashed)
            self._flush_partition_queue()

    def partitioned(self, src: str, dst: str) -> bool:
        """Whether a partition currently separates ``src`` and ``dst``."""
        for side_a, side_b in self._partitions:
            if (src in side_a and dst in side_b) or (
                src in side_b and dst in side_a
            ):
                return True
        return False

    @property
    def active_partitions(
        self,
    ) -> Tuple[Tuple[FrozenSet[str], FrozenSet[str]], ...]:
        """The currently installed partitions, in installation order."""
        return tuple(self._partitions)

    # -- loss ------------------------------------------------------------------

    def set_loss_rate(self, rate: float) -> None:
        """Set the unreliable-datagram loss rate (used by loss bursts)."""
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {rate!r}")
        self.loss_rate = rate

    def _lose_unreliable(self) -> bool:
        """Sample whether the next unreliable datagram is lost (and count)."""
        if self.loss_rate > 0 and self._loss_rng.bernoulli(self.loss_rate):
            self.stats.datagrams_dropped_loss += 1
            return True
        return False

    # -- crash / restart --------------------------------------------------------

    def crash_node(self, node: str) -> None:
        """Take ``node`` down; queued entries involving it are dropped."""
        with self._fault_lock:
            self._crashed.add(node)
            self._faults_active = True
            kept: List[QueuedDatagram] = []
            for entry in self._partition_queue:
                if entry[0] == node or entry[1] == node:
                    self.stats.datagrams_dropped_crashed += 1
                else:
                    kept.append(entry)
            self._partition_queue = kept

    def restart_node(self, node: str) -> None:
        """Bring ``node`` back up (idempotent)."""
        with self._fault_lock:
            self._crashed.discard(node)
            self._faults_active = bool(self._partitions or self._crashed)

    def is_crashed(self, node: str) -> bool:
        """Whether ``node`` is currently crashed."""
        return node in self._crashed

    @property
    def crashed_nodes(self) -> FrozenSet[str]:
        """The currently crashed node names."""
        return frozenset(self._crashed)

    # -- the send-path gate -----------------------------------------------------

    def _fault_blocked(
        self, src: str, dst: str, payload: object, size_bytes: int,
        reliable: bool,
    ) -> bool:
        """Whether an active fault consumed this datagram.

        Crashes drop (either endpoint down); partitions queue reliable
        datagrams and drop unreliable ones.  Loss is *not* sampled here
        -- it belongs to the unreliable delivery path, after the
        partition check, so a partitioned datagram never consumes a loss
        draw (which would shift every later draw and break seed
        stability).
        """
        with self._fault_lock:
            if src in self._crashed or dst in self._crashed:
                self.stats.datagrams_dropped_crashed += 1
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.event(
                        self._obs_now(), "net.drop", node=dst,
                        src=src, reason="crashed",
                    )
                return True
            if self.partitioned(src, dst):
                if reliable:
                    self._partition_queue.append(
                        (src, dst, payload, size_bytes)
                    )
                    if _obs.ACTIVE is not None:
                        _obs.ACTIVE.event(
                            self._obs_now(), "net.queue", node=dst,
                            src=src, reason="partition",
                        )
                else:
                    self.stats.datagrams_dropped_partition += 1
                    if _obs.ACTIVE is not None:
                        _obs.ACTIVE.event(
                            self._obs_now(), "net.drop", node=dst,
                            src=src, reason="partition",
                        )
                return True
        return False

    def _flush_partition_queue(self) -> None:
        """Deliver queued entries no longer blocked, in send order."""
        with self._fault_lock:
            still_blocked: List[QueuedDatagram] = []
            queued, self._partition_queue = self._partition_queue, []
            for src, dst, payload, size_bytes in queued:
                if (
                    self.partitioned(src, dst)
                    or src in self._crashed
                    or dst in self._crashed
                ):
                    still_blocked.append((src, dst, payload, size_bytes))
                else:
                    self._deliver_reliable(src, dst, payload, size_bytes)
            # Prepend: delivery above may have queued nothing, but a
            # re-partition during flush must not reorder survivors.
            self._partition_queue = still_blocked + self._partition_queue

    def _crashed_at_arrival(self, dst: str) -> bool:
        """Drop (and count) a datagram in flight when its target died."""
        if dst in self._crashed:
            self.stats.datagrams_dropped_crashed += 1
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.event(
                    self._obs_now(), "net.drop", node=dst, reason="crashed",
                )
            return True
        return False
