"""The scripted fault-parity scenario: one plan, three substrates (X12).

:func:`fault_smoke_point` drives the acceptance scenario of the fault
layer -- partition a cache subtree, heal it, crash a cache, restart it --
over a short scripted workload on any backend (``"sim"``, ``"live"``, or
``"live-socket"``, where CrashNode SIGKILLs the store's OS process and
RestartNode re-spawns it from its checkpoint), through the same
runner/cache as every other sweep.  The plan is applied with the
injector's *stepped* mode at convergence barriers, so faults interleave
with the workload identically in virtual and wall-clock time and the
time-free coherence signature is comparable across backends: the golden
parity test and experiment X12 assert they are equal.

The script deliberately walks the interesting paths:

- a write behind the partition queues (reliable transport) and flushes
  on heal -- recovery is observed, not assumed;
- a read into the partitioned cache is served *stale* (staleness under
  partition);
- a read into the crashed cache is dropped and times out (an
  unavailable read);
- after restart, the master's read-your-writes read through the
  restarted cache forces the demand/state-transfer catch-up path.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Sequence

from repro.coherence.trace import coherence_signature
from repro.exec.runner import run_sweep
from repro.exec.spec import SweepSpec
from repro.faults.injector import FaultInjector
from repro.faults.plan import CrashNode, FaultPlan, Heal, Partition, RestartNode
from repro.replication.policy import ReplicationPolicy
from repro.transport.backend import BackendError
from repro.workload.scenarios import build_tree

#: Per-operation driving timeout for the scripted run (wall or virtual s).
SMOKE_TIMEOUT = 10.0

#: How long to wait on a read into a crashed store before declaring it
#: unavailable (wall seconds on the live backend, so kept short).
UNAVAILABLE_TIMEOUT = 0.5


def parity_plan(stores: Sequence[str]) -> FaultPlan:
    """The acceptance plan: partition 2 s, heal, one crash/restart.

    Event times are nominal -- the scripted scenario applies events at
    convergence barriers via :meth:`FaultInjector.step`, where only the
    order matters.
    """
    isolated = (stores[-1],)
    rest = tuple(n for n in stores if n not in isolated)
    crashed = stores[1]
    return FaultPlan(events=(
        Partition(at=2.0, side_a=isolated, side_b=rest),
        Heal(at=4.0, side_a=isolated, side_b=rest),
        CrashNode(at=5.0, node=crashed),
        RestartNode(at=7.0, node=crashed),
    ))


def fault_smoke_point(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One scripted fault run on ``config["backend"]``.

    The derived sweep seed is ignored in favour of ``config["seed"]`` so
    the identical scenario seed is pinned across the backend variants of
    one sweep (the parity comparison).  Returns plain data: convergence
    flags, the fault observations, final versions, network fault
    counters and the time-free coherence signature.
    """
    del seed
    backend = config.get("backend", "live")
    deployment = build_tree(
        policy=ReplicationPolicy(),
        n_caches=2,
        n_readers_per_cache=1,
        pages={"index.html": "<h1>rev 0</h1>"},
        seed=int(config.get("seed", 0)),
        backend=backend,
    )
    try:
        stores = [store.address for store in deployment.site.stores()]
        injector = FaultInjector(
            deployment.sim, deployment.network, parity_plan(stores)
        )
        isolated = stores[-1]    # behind the partition (cache-1)
        crashed = stores[1]      # crashed later (cache-0)
        master = deployment.browsers["master"]
        outcome: Dict[str, Any] = {"backend": backend}

        def write(revision: int) -> None:
            """Master writes one revision and waits for the ack."""
            future = deployment.call(
                master.write_page, "index.html", f"<h1>rev {revision}</h1>"
            )
            deployment.wait(future, timeout=SMOKE_TIMEOUT)

        def converged(revision: int, skip: Sequence[str] = ()) -> bool:
            """Wait until every store (minus ``skip``) holds ``revision``."""
            engines = [
                store.engine
                for store in deployment.site.stores()
                if store.address not in skip
            ]
            return deployment.wait_until(
                lambda: all(
                    engine.version().get("master", 0) == revision
                    for engine in engines
                ),
                timeout=SMOKE_TIMEOUT,
            )

        def read(browser_name: str,
                 timeout: float = SMOKE_TIMEOUT) -> Optional[str]:
            """Read the page via one browser; ``None`` when unavailable."""
            browser = deployment.browsers[browser_name]
            future = deployment.call(browser.read_page, "index.html")
            try:
                page = deployment.wait(future, timeout=timeout)
            except BackendError:
                return None
            return page["content"]

        reader_behind_cut = f"reader-{stores.index(isolated) - 1}-0"
        reader_at_crash = f"reader-{stores.index(crashed) - 1}-0"

        write(1)
        outcome["converged_initial"] = converged(1)
        # Warm both caches: the first read demand-fills a client-
        # initiated store, so later fault-phase reads exercise stale
        # cached state instead of blocking on a cold-miss fetch.
        outcome["warm_reads_ok"] = all(
            read(name) == "<h1>rev 1</h1>"
            for name in (reader_at_crash, reader_behind_cut)
        )
        deployment.call(injector.step)          # partition: isolated | rest
        write(2)
        outcome["converged_during_partition"] = converged(
            2, skip=(isolated,)
        )
        # Staleness under partition: the cut cache still serves rev 1.
        outcome["stale_read_under_partition"] = (
            read(reader_behind_cut) == "<h1>rev 1</h1>"
        )
        deployment.call(injector.step)          # heal: queued push flushes
        outcome["recovered_after_heal"] = converged(2)
        deployment.call(injector.step)          # crash cache-0
        write(3)
        outcome["converged_during_crash"] = converged(3, skip=(crashed,))
        # Unavailability: a read into the crashed store never resolves.
        outcome["unavailable_reads"] = (
            1 if read(reader_at_crash, timeout=UNAVAILABLE_TIMEOUT) is None
            else 0
        )
        deployment.call(injector.step)          # restart cache-0
        # The master reads through the restarted cache with RYW: the
        # session requirement forces the demand/state-transfer catch-up.
        outcome["demand_refresh_ok"] = (
            read("master") == "<h1>rev 3</h1>"
        )
        outcome["recovered_after_restart"] = converged(3)
        outcome["versions"] = {
            address: store.version()
            for address, store in deployment.site.dso.stores.items()
        }
        stats = deployment.network.stats
        outcome["dropped_partition"] = stats.datagrams_dropped_partition
        outcome["dropped_crashed"] = stats.datagrams_dropped_crashed
        outcome["signature"] = coherence_signature(deployment.site.trace)
        return outcome
    finally:
        deployment.shutdown()


def fault_soak_spec(
    backends: Sequence[str] = ("sim", "live"), seed: int = 0
) -> SweepSpec:
    """A sweep running the identical fault scenario on each backend."""
    spec = SweepSpec(name="fault-soak", run_point=fault_smoke_point,
                     base_seed=seed)
    for backend in backends:
        spec.add(backend, backend=backend, seed=seed)
    return spec


def run_fault_soak(
    backends: Sequence[str] = ("sim", "live"),
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> Dict[Hashable, Any]:
    """Execute the fault soak sweep through the runner/cache.

    ``executor`` selects the sweep execution mechanism exactly as in
    :func:`repro.exec.run_sweep`.
    """
    return run_sweep(
        fault_soak_spec(backends=backends, seed=seed),
        parallel=parallel,
        cache_dir=cache_dir,
        executor=executor,
    )
