"""Declarative fault plans: ordered, timed fault events plus generators.

A :class:`FaultPlan` is plain data -- a tuple of :class:`FaultEvent`\\ s,
each stamped with a time offset (seconds from injector start) -- so the
same plan can execute in virtual time (the simulator) or wall-clock time
(the live runtime), be rendered into documentation, or be rebuilt
deterministically from a sweep seed.  Event *content* names transport
nodes only; nothing here knows about engines, stores or clients.

Two parametric generators cover the scripted-scenario gap between "one
hand-written partition" and "hostile weather": :func:`periodic_flap`
(a link that goes down and comes back on a fixed cadence) and
:func:`random_churn` (nodes crashing and restarting at seeded-random
times, the classic availability workload).  Both return ordinary plans,
so generated and hand-written events compose freely.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import SeededRng


class FaultPlanError(ValueError):
    """Raised when a fault plan or one of its events is malformed."""


def _side(nodes: Sequence[str]) -> Tuple[str, ...]:
    """Canonicalize one partition side into a sorted node tuple."""
    side = tuple(sorted(set(nodes)))
    if not side:
        raise FaultPlanError("a partition side must name at least one node")
    return side


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """Base fault event; ``at`` is seconds after the injector starts."""

    at: float

    def __post_init__(self) -> None:
        """Reject negative event times at declaration."""
        if self.at < 0:
            raise FaultPlanError(f"event time must be >= 0, got {self.at!r}")

    def describe(self) -> str:
        """One-line human summary of the event."""
        return f"t+{self.at:g}s {type(self).__name__}"


@dataclasses.dataclass(frozen=True)
class Partition(FaultEvent):
    """Cut connectivity between two node sets until a matching heal."""

    side_a: Tuple[str, ...] = ()
    side_b: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        """Canonicalize both sides and reject overlap."""
        super().__post_init__()
        object.__setattr__(self, "side_a", _side(self.side_a))
        object.__setattr__(self, "side_b", _side(self.side_b))
        overlap = set(self.side_a) & set(self.side_b)
        if overlap:
            raise FaultPlanError(
                f"partition sides overlap on {sorted(overlap)}"
            )

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"t+{self.at:g}s partition {'/'.join(self.side_a)} | "
            f"{'/'.join(self.side_b)}"
        )


@dataclasses.dataclass(frozen=True)
class Heal(FaultEvent):
    """Remove one partition (both sides given) or all of them (neither)."""

    side_a: Optional[Tuple[str, ...]] = None
    side_b: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        """Canonicalize sides; partial heals must name both sides."""
        super().__post_init__()
        if (self.side_a is None) != (self.side_b is None):
            raise FaultPlanError(
                "a partial heal names both sides; a full heal names neither"
            )
        if self.side_a is not None:
            object.__setattr__(self, "side_a", _side(self.side_a))
            object.__setattr__(self, "side_b", _side(self.side_b))

    @property
    def partial(self) -> bool:
        """Whether this heal removes a single named partition."""
        return self.side_a is not None

    def describe(self) -> str:
        """One-line human summary."""
        if not self.partial:
            return f"t+{self.at:g}s heal all"
        return (
            f"t+{self.at:g}s heal {'/'.join(self.side_a)} | "
            f"{'/'.join(self.side_b)}"
        )


@dataclasses.dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Raise the unreliable-datagram loss rate for a bounded window."""

    duration: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        """Validate the burst window and rate."""
        super().__post_init__()
        if self.duration <= 0:
            raise FaultPlanError(
                f"loss burst duration must be > 0, got {self.duration!r}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise FaultPlanError(
                f"loss rate must be in [0, 1), got {self.loss_rate!r}"
            )

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"t+{self.at:g}s loss burst {self.loss_rate:g} "
            f"for {self.duration:g}s"
        )


@dataclasses.dataclass(frozen=True)
class CrashNode(FaultEvent):
    """Take one node down: traffic to and from it is dropped."""

    node: str = ""

    def __post_init__(self) -> None:
        """Require a node name."""
        super().__post_init__()
        if not self.node:
            raise FaultPlanError("CrashNode needs a node name")

    def describe(self) -> str:
        """One-line human summary."""
        return f"t+{self.at:g}s crash {self.node}"


@dataclasses.dataclass(frozen=True)
class RestartNode(FaultEvent):
    """Bring a crashed node back; it rejoins with whatever it missed."""

    node: str = ""

    def __post_init__(self) -> None:
        """Require a node name."""
        super().__post_init__()
        if not self.node:
            raise FaultPlanError("RestartNode needs a node name")

    def describe(self) -> str:
        """One-line human summary."""
        return f"t+{self.at:g}s restart {self.node}"


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault events executed by one injector.

    Events execute in ``(at, declaration order)`` order; declaration
    order breaks ties, so a plan that heals and re-partitions at the
    same instant behaves exactly as written.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        """Canonicalize the event tuple and check cross-event sanity.

        Crashes and restarts must pair per node, and a partial heal must
        name a cut that a prior partition opened -- so a plan that would
        only fail mid-run (where, on the live dispatcher, the error is
        printed rather than raised and a soak hangs to its timeout)
        fails at declaration instead.
        """
        object.__setattr__(self, "events", tuple(self.events))
        down: set = set()
        open_cuts: List[tuple] = []
        for event in self.sorted_events():
            if isinstance(event, CrashNode):
                if event.node in down:
                    raise FaultPlanError(
                        f"{event.node} crashed twice without a restart"
                    )
                down.add(event.node)
            elif isinstance(event, RestartNode):
                if event.node not in down:
                    raise FaultPlanError(
                        f"restart of {event.node} without a prior crash"
                    )
                down.discard(event.node)
            elif isinstance(event, Partition):
                open_cuts.append(
                    (frozenset(event.side_a), frozenset(event.side_b))
                )
            elif isinstance(event, Heal):
                if not event.partial:
                    open_cuts.clear()
                    continue
                cut = (frozenset(event.side_a), frozenset(event.side_b))
                flipped = (cut[1], cut[0])
                if cut in open_cuts:
                    open_cuts.remove(cut)
                elif flipped in open_cuts:
                    open_cuts.remove(flipped)
                else:
                    raise FaultPlanError(
                        f"heal of {'/'.join(event.side_a)} | "
                        f"{'/'.join(event.side_b)} matches no open "
                        "partition"
                    )

    def sorted_events(self) -> List[FaultEvent]:
        """Events in execution order: by time, declaration order tie-break."""
        indexed = sorted(
            enumerate(self.events), key=lambda pair: (pair[1].at, pair[0])
        )
        return [event for _, event in indexed]

    @property
    def empty(self) -> bool:
        """Whether the plan contains no events (the baseline plan)."""
        return not self.events

    def duration(self) -> float:
        """Time of the last event (loss bursts include their window)."""
        end = 0.0
        for event in self.events:
            at = event.at
            if isinstance(event, LossBurst):
                at += event.duration
            end = max(end, at)
        return end

    def describe(self) -> str:
        """Multi-line human summary, one event per line."""
        if self.empty:
            return "(no faults)"
        return "\n".join(e.describe() for e in self.sorted_events())


def periodic_flap(
    side_a: Sequence[str],
    side_b: Sequence[str],
    period: float,
    down_for: float,
    until: float,
    start: float = 0.0,
) -> FaultPlan:
    """A link that partitions and heals on a fixed cadence.

    Every ``period`` seconds from ``start`` the two sides partition for
    ``down_for`` seconds, then heal; flaps whose *start* lies beyond
    ``until`` are not generated.  ``down_for`` must be shorter than
    ``period`` so windows cannot overlap.
    """
    if period <= 0:
        raise FaultPlanError(f"period must be > 0, got {period!r}")
    if not 0 < down_for < period:
        raise FaultPlanError(
            f"down_for must be in (0, period), got {down_for!r}"
        )
    events: List[FaultEvent] = []
    at = start
    while at < until:
        events.append(Partition(at=at, side_a=tuple(side_a),
                                side_b=tuple(side_b)))
        events.append(Heal(at=at + down_for, side_a=tuple(side_a),
                           side_b=tuple(side_b)))
        at += period
    return FaultPlan(events=tuple(events))


def random_churn(
    nodes: Sequence[str],
    rng: SeededRng,
    until: float,
    mean_interval: float = 2.0,
    down_for: float = 1.0,
    start: float = 0.0,
) -> FaultPlan:
    """Seeded-random node churn: crashes at Poisson times, timed restarts.

    Crash times arrive with exponential inter-arrival ``mean_interval``
    starting at ``start``; each crash picks a uniformly random node that
    is currently up and restarts it ``down_for`` seconds later.  All
    randomness comes from ``rng``, so the plan is a pure function of the
    sweep's derived seed (stable config-hash seeding).
    """
    if not nodes:
        raise FaultPlanError("random_churn needs at least one node")
    if down_for <= 0:
        raise FaultPlanError(f"down_for must be > 0, got {down_for!r}")
    events: List[FaultEvent] = []
    down_until: Dict[str, float] = {}
    at = start
    while True:
        at += rng.exponential(mean_interval)
        if at >= until:
            break
        up = [n for n in nodes if down_until.get(n, 0.0) <= at]
        if not up:
            continue
        node = rng.choice(up)
        events.append(CrashNode(at=at, node=node))
        events.append(RestartNode(at=at + down_for, node=node))
        down_until[node] = at + down_for
    return FaultPlan(events=tuple(events))
