"""Named fault plans: the fault axis of sweeps and grids.

Exactly like :data:`repro.workload.profiles.PROFILES`, the registry here
lets a fault scenario travel through a sweep config (and its cache key)
as a plain *name* while the expansion to concrete events stays in one
place.  A :class:`FaultPlanDef` builds its plan from the deployment's
store addresses (creation order: the permanent store first, then mirrors,
then caches) and a :class:`~repro.sim.rng.SeededRng` forked from the
point's derived seed -- so randomized plans (``"churn"``) are a pure
function of the sweep's config hash, bit-identical across processes.

Plans cut *store-to-store* links only: a client keeps talking to its own
cache, which is precisely what makes partition staleness (reads served
behind the cut) and crash unavailability (reads into a dead cache)
separately measurable.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Sequence

from repro.faults.plan import (
    CrashNode,
    FaultPlan,
    Heal,
    Partition,
    RestartNode,
    periodic_flap,
    random_churn,
)
from repro.sim.rng import SeededRng

#: Builds one plan from the deployment's store addresses and a fork of
#: the point's seeded RNG.
PlanBuilder = Callable[[Sequence[str], SeededRng], FaultPlan]


@dataclasses.dataclass(frozen=True)
class FaultPlanDef:
    """One named fault scenario."""

    name: str
    description: str
    build: PlanBuilder


def _split(nodes: Sequence[str]) -> tuple:
    """Split store addresses into (isolated subtree root, everything else).

    The isolated side is the permanent store's first child -- the first
    mirror when the tree has mirrors, else the first cache -- so the
    same plan name isolates a comparable subtree at every grid size.
    """
    if len(nodes) < 2:
        raise ValueError(
            f"fault plans need at least two stores, got {list(nodes)!r}"
        )
    cut = (nodes[1],)
    rest = tuple(n for n in nodes if n not in cut)
    return cut, rest


def _none_plan(nodes: Sequence[str], rng: SeededRng) -> FaultPlan:
    """The fault-free baseline column."""
    del nodes, rng
    return FaultPlan()


def _partition_heal(nodes: Sequence[str], rng: SeededRng) -> FaultPlan:
    """One clean cut: isolate a child subtree for two seconds, then heal."""
    del rng
    cut, rest = _split(nodes)
    return FaultPlan(events=(
        Partition(at=2.0, side_a=cut, side_b=rest),
        Heal(at=4.0, side_a=cut, side_b=rest),
    ))


def _flap(nodes: Sequence[str], rng: SeededRng) -> FaultPlan:
    """A flapping link: the same cut going down every 1.5 s for 0.5 s."""
    del rng
    cut, rest = _split(nodes)
    return periodic_flap(
        side_a=cut, side_b=rest, period=1.5, down_for=0.5,
        until=8.0, start=1.0,
    )


def _crash_restart(nodes: Sequence[str], rng: SeededRng) -> FaultPlan:
    """One child store crashes for two seconds mid-run, then restarts."""
    del rng
    cut, _ = _split(nodes)
    return FaultPlan(events=(
        CrashNode(at=2.5, node=cut[0]),
        RestartNode(at=4.5, node=cut[0]),
    ))


def _churn(nodes: Sequence[str], rng: SeededRng) -> FaultPlan:
    """Seeded-random child-store churn; the permanent store stays up."""
    children = list(nodes[1:])
    return random_churn(
        children, rng, until=8.0, mean_interval=1.5, down_for=1.0,
    )


#: The registered fault plans, in presentation (grid-column) order.
FAULT_PLANS: Dict[str, FaultPlanDef] = {
    plan.name: plan
    for plan in (
        FaultPlanDef(
            name="none",
            description="No faults: the baseline column.",
            build=_none_plan,
        ),
        FaultPlanDef(
            name="partition-heal",
            description=(
                "One child subtree partitioned from the rest of the "
                "store tree at t=2s, healed at t=4s; reliable traffic "
                "queues and flushes on heal."
            ),
            build=_partition_heal,
        ),
        FaultPlanDef(
            name="flap",
            description=(
                "The same cut flapping: down 0.5s out of every 1.5s "
                "between t=1s and t=8s."
            ),
            build=_flap,
        ),
        FaultPlanDef(
            name="crash-restart",
            description=(
                "The first child store crashes at t=2.5s (its traffic "
                "is dropped, not queued) and restarts at t=4.5s, "
                "catching up through the demand/state-transfer read "
                "path."
            ),
            build=_crash_restart,
        ),
        FaultPlanDef(
            name="churn",
            description=(
                "Seeded-random child-store churn (the permanent store "
                "stays up): Poisson crash arrivals (mean 1.5s) with 1s "
                "outages until t=8s, derived from the point's "
                "config-hash seed."
            ),
            build=_churn,
        ),
    )
}


def get_fault_plan(name: str) -> FaultPlanDef:
    """Look up a registered plan; raise ``KeyError`` with the catalog."""
    try:
        return FAULT_PLANS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault plan {name!r}; "
            f"registered: {', '.join(FAULT_PLANS)}"
        ) from None


def build_fault_plan(
    name: str, nodes: Sequence[str], rng: SeededRng
) -> FaultPlan:
    """Expand a registered plan name against one deployment's stores."""
    return get_fault_plan(name).build(nodes, rng)
