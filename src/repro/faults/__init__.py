"""Backend-agnostic fault injection: declarative plans over any transport.

The paper motivates hierarchical replication with an unreliable wide-area
network, so fault behaviour must be a property of the *scenario*, not of
one substrate.  This package makes it so:

- :mod:`repro.faults.plan` -- :class:`FaultPlan`, an ordered list of timed
  :class:`FaultEvent`\\ s (partitions, heals, loss bursts, node crash and
  restart) plus parametric generators (periodic flap, seeded random
  churn);
- :mod:`repro.faults.transport` -- the :class:`FaultableTransport`
  control surface and the :class:`FaultableTransportMixin` partition /
  queue / heal / crash machinery shared by the simulated
  :class:`~repro.net.network.Network` and the wall-clock
  :class:`~repro.runtime.live.LiveNetwork`;
- :mod:`repro.faults.injector` -- the :class:`FaultInjector` that executes
  a plan against the :class:`~repro.transport.interface.Clock` protocol,
  either on a timer (soaks, sweeps) or stepped manually at convergence
  barriers (the deterministic sim/live parity scenario);
- :mod:`repro.faults.catalog` -- named fault plans (``"none"``,
  ``"partition-heal"``, ``"flap"``, ``"crash-restart"``, ``"churn"``)
  whose *names* travel through sweep configs and cache keys exactly like
  workload-profile names do.

Because both network stacks implement the same control surface, one plan
runs unchanged in virtual and wall-clock time (experiments X11/X12).
"""

from repro.faults.catalog import (
    FAULT_PLANS,
    FaultPlanDef,
    build_fault_plan,
    get_fault_plan,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashNode,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    Heal,
    LossBurst,
    Partition,
    RestartNode,
    periodic_flap,
    random_churn,
)
from repro.faults.transport import FaultableTransport, FaultableTransportMixin

__all__ = [
    "FAULT_PLANS",
    "CrashNode",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanDef",
    "FaultPlanError",
    "FaultableTransport",
    "FaultableTransportMixin",
    "Heal",
    "LossBurst",
    "Partition",
    "RestartNode",
    "build_fault_plan",
    "get_fault_plan",
    "periodic_flap",
    "random_churn",
]
