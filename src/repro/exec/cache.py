"""On-disk result cache for sweep points.

Finished point results are stored in the :mod:`repro.exec.codec` binary
format under ``<root>/<code fingerprint>/<spec>/<key>.res`` where the
key hashes the point's config and the sweep's base seed, and the
fingerprint hashes the ``repro`` package sources.  Any code change
therefore invalidates the whole cache (stale results can never be
served), while re-runs and re-renders of an unchanged sweep are
near-instant.  Entries written by older code -- including the
pre-codec ``.pkl`` pickle format -- live under rotated fingerprints and
are swept away by :meth:`ResultCache.evict_stale`.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterator, List, Mapping, Optional, Tuple

from repro.exec.codec import CodecError, decode_result, encode_result
from repro.exec.seeding import config_blob

#: Suffix of one stored point result (codec-encoded; the pre-codec
#: pickle format used ``.pkl``, which the iteration API ignores).
ENTRY_SUFFIX = ".res"


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``.py`` source in the ``repro`` package.

    Computed once per process; cheap relative to any simulation run.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def function_fingerprint(fn: Callable) -> str:
    """Hash of a point function's identity and source.

    Point functions may live outside the ``repro`` package (a user's
    sweep script), where :func:`code_fingerprint` can't see edits; this
    folds the function's own source into the cache key so stale results
    are never served for those either.
    """
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        source = ""
    identity = (
        f"{getattr(fn, '__module__', '')}."
        f"{getattr(fn, '__qualname__', repr(fn))}"
    )
    digest = hashlib.sha256(
        identity.encode("utf-8") + b"\x00" + source.encode("utf-8")
    )
    return digest.hexdigest()[:16]


class ResultCache:
    """Entry-per-point cache keyed by config hash + code version.

    Entries are codec-encoded (:mod:`repro.exec.codec`), so the bytes a
    sweep leaves on disk are identical whichever executor computed the
    results -- the cache-key-equality half of the executor-parity
    guarantee.
    """

    def __init__(self, root: os.PathLike, fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, spec_name: str, base_seed: int,
              config: Mapping[str, Any], fn_key: str = "",
              point_seed: int = 0) -> Path:
        # point_seed is in the key because two seeding modes (paired vs
        # per-point) can assign the same (name, base_seed, config)
        # different seeds; their results must never alias.
        key = hashlib.sha256(
            b"\x00".join([
                spec_name.encode("utf-8"),
                str(int(base_seed)).encode("ascii"),
                config_blob(config),
                fn_key.encode("ascii"),
                str(int(point_seed)).encode("ascii"),
            ])
        ).hexdigest()
        safe_name = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in spec_name
        )
        return (self.root / self.fingerprint / safe_name
                / f"{key}{ENTRY_SUFFIX}")

    def has(self, spec_name: str, base_seed: int,
            config: Mapping[str, Any], fn_key: str = "",
            point_seed: int = 0) -> bool:
        """Whether an entry exists, without unpickling it.

        A pure existence probe (no counters move): coverage reporting
        over a large grid should not deserialize every stored result.
        """
        return self._path(spec_name, base_seed, config, fn_key,
                          point_seed).is_file()

    def get(self, spec_name: str, base_seed: int,
            config: Mapping[str, Any], fn_key: str = "",
            point_seed: int = 0) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise.

        A corrupt, unreadable or wrong-format entry counts as a miss
        and is recomputed.
        """
        path = self._path(spec_name, base_seed, config, fn_key, point_seed)
        try:
            blob = path.read_bytes()
            value = decode_result(blob)
        except (OSError, CodecError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, spec_name: str, base_seed: int,
            config: Mapping[str, Any], value: Any,
            fn_key: str = "", point_seed: int = 0) -> None:
        """Store one finished point result (codec-encoded, atomic rename)."""
        self.put_encoded(spec_name, base_seed, config, encode_result(value),
                         fn_key, point_seed=point_seed)

    def put_encoded(self, spec_name: str, base_seed: int,
                    config: Mapping[str, Any], blob: bytes,
                    fn_key: str = "", point_seed: int = 0) -> None:
        """Store one already-encoded point result (atomic rename).

        This is the shared-memory transport's fast path: the worker
        already produced the canonical codec bytes, so they flow from
        the segment to disk without a decode/re-encode round trip.
        Because encoding is deterministic, the entry is byte-identical
        to what :meth:`put` would have written.
        """
        path = self._path(spec_name, base_seed, config, fn_key, point_seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1

    # -- introspection --------------------------------------------------------

    def spec_names(self) -> List[str]:
        """Sweep names with at least one entry under the current code.

        Names come back as their filesystem-safe forms (the cache never
        stores the raw name), sorted for deterministic output.
        """
        tree = self.root / self.fingerprint
        if not tree.is_dir():
            return []
        return sorted(
            entry.name for entry in tree.iterdir()
            if entry.is_dir() and any(entry.glob(f"*{ENTRY_SUFFIX}"))
        )

    def iter_entries(self, spec_name: Optional[str] = None
                     ) -> Iterator[Tuple[str, Path]]:
        """Yield ``(spec name, entry path)`` for current-code entries.

        ``spec_name`` (filesystem-safe form) restricts iteration to one
        sweep.  Entries under other code fingerprints are never yielded:
        they can never be served again.  Order is deterministic (sorted
        by name then path).
        """
        for name in self.spec_names():
            if spec_name is not None and name != spec_name:
                continue
            for path in sorted((self.root / self.fingerprint / name)
                               .glob(f"*{ENTRY_SUFFIX}")):
                yield name, path

    def entry_count(self, spec_name: Optional[str] = None) -> int:
        """Number of current-code entries (optionally for one sweep)."""
        return sum(1 for _ in self.iter_entries(spec_name))

    # -- maintenance ----------------------------------------------------------

    def evict_stale(self) -> int:
        """Remove cache trees written under *other* code fingerprints.

        Every edit to the ``repro`` sources rotates the fingerprint, so
        the old trees can never be read again; without eviction they
        accumulate as dead weight.  Returns the number of fingerprint
        directories removed.  Entries under the current fingerprint are
        untouched.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir() or entry.name == self.fingerprint:
                continue
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every cached entry (all fingerprints, all specs).

        Returns the number of top-level entries removed.  The root
        directory itself is kept so a running sweep can repopulate it.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)
            else:
                entry.unlink(missing_ok=True)
            removed += 1
        return removed
