"""Live-backend sweep adapter: wall-clock smoke runs through the runner.

A :class:`~repro.exec.spec.SweepSpec` whose point function is
:func:`live_smoke_point` drives short *real-time* multi-node deployments
through the exact same runner and on-disk cache as the simulated sweeps:
each point assembles the Fig. 2 tree on the requested backend
(``"live"`` wall-clock threads, ``"live-socket"`` one OS process per
store, or ``"sim"`` for the paired control run), executes a synchronous
scripted workload -- write, wait for convergence, read everywhere -- and
returns a plain-data summary including the time-free
:func:`~repro.coherence.trace.coherence_signature`.

Because the script is synchronous and convergence-gated, the signature is
deterministic even in wall-clock time; comparing it across the sim and
live points of one sweep is exactly the parity claim the golden test
asserts.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Sequence

from repro.coherence.trace import coherence_signature
from repro.exec.runner import run_sweep
from repro.exec.spec import SweepSpec
from repro.replication.policy import ReplicationPolicy
from repro.workload.scenarios import build_tree

#: Per-operation driving timeout for the smoke script (wall or virtual s).
SMOKE_TIMEOUT = 10.0


def live_smoke_point(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One smoke point: a short scripted run on ``config["backend"]``.

    The derived sweep seed is ignored in favour of ``config["seed"]`` so
    the identical scenario seed can be pinned across backend variants of
    one sweep (that is the parity comparison).
    """
    del seed
    backend = config.get("backend", "live")
    writes = int(config.get("writes", 3))
    n_caches = int(config.get("n_caches", 2))
    pages = {"index.html": "<h1>smoke</h1>"}
    deployment = build_tree(
        policy=ReplicationPolicy(),
        n_caches=n_caches,
        n_readers_per_cache=1,
        pages=dict(pages),
        seed=int(config.get("seed", 0)),
        backend=backend,
        # Event-queue choice for the sim backend; must never change the
        # signature (the scheduler-parity golden pins exactly that).
        scheduler=config.get("scheduler"),
    )
    try:
        master = deployment.browsers["master"]
        converged_each_round = True
        for index in range(writes):
            future = deployment.call(
                master.write_page, "index.html", f"<h1>rev {index + 1}</h1>"
            )
            deployment.wait(future, timeout=SMOKE_TIMEOUT)
            expected = index + 1
            converged_each_round &= deployment.wait_until(
                lambda: all(
                    engine.version().get("master", 0) == expected
                    for engine in deployment.engines
                ),
                timeout=SMOKE_TIMEOUT,
            )
        reads_ok = 0
        for name, browser in sorted(deployment.browsers.items()):
            if name == "master":
                continue
            future = deployment.call(browser.read_page, "index.html")
            page = deployment.wait(future, timeout=SMOKE_TIMEOUT)
            if page["content"] == f"<h1>rev {writes}</h1>":
                reads_ok += 1
        versions = {
            store_address: store.version()
            for store_address, store in deployment.site.dso.stores.items()
        }
        return {
            "backend": backend,
            "writes": writes,
            "versions": versions,
            "converged": converged_each_round,
            "reads_ok": reads_ok,
            "signature": coherence_signature(deployment.site.trace),
            "datagrams_delivered": (
                deployment.network.stats.datagrams_delivered
            ),
        }
    finally:
        deployment.shutdown()


def smoke_spec(
    backends: Sequence[str] = ("sim", "live"),
    writes: int = 3,
    n_caches: int = 2,
    seed: int = 0,
) -> SweepSpec:
    """A sweep running the identical smoke scenario on each backend."""
    spec = SweepSpec(name="backend-smoke", run_point=live_smoke_point,
                     base_seed=seed)
    for backend in backends:
        spec.add(backend, backend=backend, writes=writes,
                 n_caches=n_caches, seed=seed)
    return spec


def run_live_smoke(
    backends: Sequence[str] = ("sim", "live"),
    writes: int = 3,
    n_caches: int = 2,
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> Dict[Hashable, Any]:
    """Execute the backend smoke sweep through the runner/cache.

    ``executor`` selects the sweep execution mechanism exactly as in
    :func:`~repro.exec.runner.run_sweep`; live points run wall-clock
    threads *inside* whichever worker evaluates them, so the transport
    choice is orthogonal to the backend choice.
    """
    return run_sweep(
        smoke_spec(backends=backends, writes=writes, n_caches=n_caches,
                   seed=seed),
        parallel=parallel,
        cache_dir=cache_dir,
        executor=executor,
    )
