"""Parallel sweep execution with deterministic fan-out and caching.

The experiments layer describes a sweep as a :class:`SweepSpec` -- a
list of independent points plus a pure ``run_point(config, seed)``
function -- and :func:`run_sweep` executes it: serially, over a
``multiprocessing`` pool, or out of the on-disk :class:`ResultCache`.
Seeds derive from a stable hash of each point's config
(:func:`derive_seed`), so all three paths produce bit-identical results.

Typical use::

    from repro.exec import SweepSpec, run_sweep

    def my_point(config, seed):          # module-level, pure, picklable
        return simulate(n=config["n"], seed=seed)

    spec = SweepSpec(name="my-sweep", run_point=my_point)
    for n in (1, 2, 4, 8):
        spec.add(f"n={n}", n=n)
    measured = run_sweep(spec, parallel=4, cache_dir=".sweep-cache")
"""

from repro.exec.cache import ResultCache, code_fingerprint
from repro.exec.cli import (
    add_exec_arguments,
    apply_cache_maintenance,
    exec_kwargs,
    supported_exec_kwargs,
)
from repro.exec.runner import (
    SweepPointError,
    cached_point_labels,
    default_parallelism,
    run_sweep,
)
from repro.exec.seeding import config_hash, derive_seed
from repro.exec.single import run_cached_single
from repro.exec.spec import SweepPoint, SweepSpec

__all__ = [
    "ResultCache",
    "SweepPoint",
    "SweepPointError",
    "SweepSpec",
    "add_exec_arguments",
    "apply_cache_maintenance",
    "cached_point_labels",
    "code_fingerprint",
    "config_hash",
    "default_parallelism",
    "derive_seed",
    "exec_kwargs",
    "run_cached_single",
    "run_sweep",
    "supported_exec_kwargs",
]
