"""Parallel sweep execution with deterministic fan-out and caching.

The experiments layer describes a sweep as a :class:`SweepSpec` -- a
list of independent points plus a pure ``run_point(config, seed)``
function -- and :func:`run_sweep` executes it through a pluggable
three-layer stack:

- an :class:`Executor` (:mod:`repro.exec.backends`) decides *how*
  points run: :class:`SerialExecutor` in process,
  :class:`PicklePipeExecutor` over a worker pool with payloads pickled
  through the pool pipe, :class:`SharedMemoryExecutor` with payloads
  staged in ``multiprocessing.shared_memory`` segments and only a tiny
  descriptor crossing the pipe, or :class:`DistributedExecutor` fanning
  points out to worker daemons over the codec-framed wire layer;
- the codec (:mod:`repro.exec.codec`) gives the large per-point
  artifacts one compact binary form shared by the shared-memory
  transport and the on-disk :class:`ResultCache`;
- seeds derive from a stable hash of each point's config
  (:func:`derive_seed`), so every path produces bit-identical results.

Typical use::

    from repro.exec import SweepSpec, run_sweep

    def my_point(config, seed):          # module-level, pure, picklable
        return simulate(n=config["n"], seed=seed)

    spec = SweepSpec(name="my-sweep", run_point=my_point)
    for n in (1, 2, 4, 8):
        spec.add(f"n={n}", n=n)
    measured = run_sweep(spec, parallel=4, cache_dir=".sweep-cache",
                         executor="shared-memory")
"""

from repro.exec.backends import (
    EXECUTOR_ENV,
    EXECUTORS,
    Executor,
    ExecutorStats,
    PointTask,
    PicklePipeExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    default_parallelism,
    resolve_executor,
)
from repro.exec.cache import ResultCache, code_fingerprint
from repro.exec.cli import (
    add_exec_arguments,
    apply_cache_maintenance,
    exec_kwargs,
    supported_exec_kwargs,
)
from repro.exec.codec import CodecError, decode_result, encode_result
from repro.exec.distributed import (
    HUB_BIND_ENV,
    WORKERS_ENV,
    DistributedExecutor,
)
from repro.exec.runner import (
    SweepPointError,
    cached_point_labels,
    run_sweep,
)
from repro.exec.seeding import config_hash, derive_seed
from repro.exec.single import run_cached_single
from repro.exec.spec import SweepPoint, SweepSpec

__all__ = [
    "CodecError",
    "DistributedExecutor",
    "EXECUTOR_ENV",
    "EXECUTORS",
    "Executor",
    "ExecutorStats",
    "HUB_BIND_ENV",
    "PointTask",
    "PicklePipeExecutor",
    "WORKERS_ENV",
    "ResultCache",
    "SerialExecutor",
    "SharedMemoryExecutor",
    "SweepPoint",
    "SweepPointError",
    "SweepSpec",
    "add_exec_arguments",
    "apply_cache_maintenance",
    "cached_point_labels",
    "code_fingerprint",
    "config_hash",
    "decode_result",
    "default_parallelism",
    "derive_seed",
    "encode_result",
    "exec_kwargs",
    "resolve_executor",
    "run_cached_single",
    "run_sweep",
    "supported_exec_kwargs",
]
