"""Sweep execution: deterministic fan-out over a worker pool, with cache.

``run_sweep(spec, parallel=N)`` evaluates every point of a
:class:`~repro.exec.spec.SweepSpec` and returns an ordered
``{label: result}`` mapping.  Because each point's seed is derived from
its config (:mod:`repro.exec.seeding`) and ``run_point`` is pure, the
results are bit-identical whether the points run serially, on ``N``
workers, or straight out of the on-disk cache.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.exec.cache import ResultCache, function_fingerprint
from repro.exec.spec import SweepSpec


class SweepPointError(RuntimeError):
    """One sweep point failed; carries the failing point's identity."""

    def __init__(self, spec_name: str, label: Hashable,
                 config: Dict[str, Any], detail: str):
        self.spec_name = spec_name
        self.label = label
        self.config = config
        self.detail = detail
        super().__init__(
            f"sweep {spec_name!r} point {label!r} failed "
            f"(config={config!r}):\n{detail}"
        )


def _execute_task(task: Tuple[Any, int, Dict[str, Any], int]
                  ) -> Tuple[int, bool, Any]:
    """Evaluate one point; never raises (failures are data).

    Raising inside a pool worker would surface in the parent stripped of
    the point's identity, so failures travel back as
    ``(index, False, traceback text)``.
    """
    run_point, index, config, seed = task
    try:
        return index, True, run_point(config, seed)
    except Exception:
        # KeyboardInterrupt/SystemExit propagate: a user interrupt must
        # abort the sweep, not masquerade as a failed point.
        return index, False, traceback.format_exc()


def default_parallelism() -> int:
    """Worker count used when the caller asks for ``parallel=0``."""
    return max(1, os.cpu_count() or 1)


def cached_point_labels(spec: SweepSpec, cache: ResultCache) -> List[Hashable]:
    """Labels of ``spec``'s points already present in ``cache``.

    A pure existence probe -- nothing is unpickled and no hit/miss
    counters move -- so callers can report sweep coverage (how warm a
    grid is) without deserializing every stored result.
    """
    fn_key = function_fingerprint(spec.run_point)
    return [
        point.label for point in spec.points
        if cache.has(spec.name, spec.base_seed, point.config, fn_key,
                     point_seed=spec.seed_for(point))
    ]


def run_sweep(
    spec: SweepSpec,
    parallel: int = 1,
    cache_dir: Optional[os.PathLike] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[Hashable, Any]:
    """Evaluate every point of ``spec``; return ``{label: result}``.

    ``parallel`` is the worker-pool size (``1`` = in-process serial,
    ``0`` = one worker per CPU).  ``cache_dir`` (or a prebuilt ``cache``)
    enables the on-disk result cache; cached points are not recomputed.
    Results come back in point-declaration order regardless of which
    worker finished first.
    """
    if parallel == 0:
        parallel = default_parallelism()
    if parallel < 1:
        raise ValueError(f"parallel must be >= 0, got {parallel!r}")
    labels = spec.labels()
    if len(set(labels)) != len(labels):
        raise ValueError(
            f"sweep {spec.name!r} has duplicate point labels; results "
            "would silently collapse"
        )
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    # The point function's own source is part of the cache key, so specs
    # defined outside the repro package still invalidate on edit.
    fn_key = function_fingerprint(spec.run_point) if cache else ""

    results: Dict[int, Any] = {}
    pending: List[int] = []
    for index, point in enumerate(spec.points):
        if cache is not None:
            hit, value = cache.get(spec.name, spec.base_seed, point.config,
                                   fn_key, point_seed=spec.seed_for(point))
            if hit:
                results[index] = value
                continue
        pending.append(index)

    tasks = [
        (spec.run_point, index, spec.points[index].config,
         spec.seed_for(spec.points[index]))
        for index in pending
    ]
    for index, ok, payload in _run_tasks(tasks, parallel):
        if not ok:
            point = spec.points[index]
            raise SweepPointError(spec.name, point.label, point.config,
                                  payload)
        results[index] = payload
        if cache is not None:
            point = spec.points[index]
            cache.put(spec.name, spec.base_seed, point.config, payload,
                      fn_key, point_seed=spec.seed_for(point))

    return {
        point.label: results[index]
        for index, point in enumerate(spec.points)
    }


def _run_tasks(tasks: List[Tuple[Any, int, Dict[str, Any], int]],
               parallel: int) -> List[Tuple[int, bool, Any]]:
    """Run tasks serially or on a pool; order of returns is irrelevant."""
    workers = min(parallel, len(tasks))
    if workers > 1:
        try:
            context = _pool_context()
            with context.Pool(processes=workers) as pool:
                return pool.map(_execute_task, tasks)
        except OSError as exc:
            # Sandboxes without process-spawn rights still get correct
            # (just serial) results; determinism makes them identical.
            # stderr, so rendered tables stay byte-identical regardless.
            print(f"repro.exec: worker pool unavailable ({exc}); "
                  "falling back to serial execution", file=sys.stderr)
    return [_execute_task(task) for task in tasks]


def _pool_context():
    """Prefer fork (cheap, inherits the imported package) where offered."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
