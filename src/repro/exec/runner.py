"""Sweep execution: deterministic fan-out over a pluggable executor.

``run_sweep(spec, parallel=N, executor=...)`` evaluates every point of a
:class:`~repro.exec.spec.SweepSpec` and returns an ordered
``{label: result}`` mapping.  The runner owns *what* runs (cache
consultation, ordering, failure attribution); the chosen
:class:`~repro.exec.backends.Executor` owns *how* (in process, over a
pool pipe, or through shared-memory segments).  Because each point's
seed is derived from its config (:mod:`repro.exec.seeding`) and
``run_point`` is pure, the results are bit-identical whichever executor
runs them -- and identical again when they come straight out of the
on-disk cache.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

from repro.exec.backends import (
    Executor,
    PointTask,
    default_parallelism,
    resolve_executor,
)
from repro.exec.cache import ResultCache, function_fingerprint
from repro.exec.spec import SweepSpec
from repro.obs.manifest import RunManifest, point_record


class SweepPointError(RuntimeError):
    """One sweep point failed; carries the failing point's identity.

    ``executor`` names the mechanism the point ran under, so fan-out
    failures in sweep logs are attributable to a transport (or to the
    point function itself, when every executor fails alike).
    ``elapsed`` is the failing point's wall time inside the worker, and
    ``manifest_entry`` the run-manifest record built for it (persisted
    when the sweep had a manifest; still attached when not) -- so a
    failure is inspectable through ``python -m repro.obs summary`` like
    any other point.
    """

    def __init__(self, spec_name: str, label: Hashable,
                 config: Dict[str, Any], detail: str,
                 executor: str = "unknown", elapsed: float = 0.0,
                 manifest_entry: Optional[Dict[str, Any]] = None):
        self.spec_name = spec_name
        self.label = label
        self.config = config
        self.detail = detail
        self.executor = executor
        self.elapsed = elapsed
        self.manifest_entry = manifest_entry
        super().__init__(
            f"sweep {spec_name!r} point {label!r} failed on executor "
            f"{executor!r} after {elapsed:.3f}s (config={config!r}):"
            f"\n{detail}"
        )


def cached_point_labels(spec: SweepSpec, cache: ResultCache) -> List[Hashable]:
    """Labels of ``spec``'s points already present in ``cache``.

    A pure existence probe -- nothing is decoded and no hit/miss
    counters move -- so callers can report sweep coverage (how warm a
    grid is) without deserializing every stored result.
    """
    fn_key = function_fingerprint(spec.run_point)
    return [
        point.label for point in spec.points
        if cache.has(spec.name, spec.base_seed, point.config, fn_key,
                     point_seed=spec.seed_for(point))
    ]


def run_sweep(
    spec: SweepSpec,
    parallel: int = 1,
    cache_dir: Optional[os.PathLike] = None,
    cache: Optional[ResultCache] = None,
    executor: Union[Executor, str, None] = None,
    manifest: Optional[RunManifest] = None,
) -> Dict[Hashable, Any]:
    """Evaluate every point of ``spec``; return ``{label: result}``.

    ``parallel`` is the worker-pool size (``1`` = in-process serial,
    ``0`` = one worker per CPU, clamped to the pending-point count).
    ``executor`` selects the execution mechanism by registry name
    (``serial``, ``process-pool``, ``shared-memory``) or as a prebuilt
    :class:`~repro.exec.backends.Executor`; when omitted, the
    ``REPRO_EXECUTOR`` environment variable and then the parallelism
    decide.  ``cache_dir`` (or a prebuilt ``cache``) enables the on-disk
    result cache; cached points are not recomputed.  Results come back
    in point-declaration order regardless of which worker finished
    first, bit-identical across executors.

    ``manifest`` receives one telemetry record per point (wall time,
    peak RSS, cache hit/miss, executor) plus the run totals; when
    omitted, a cached sweep appends to ``manifest.jsonl`` in the cache
    root, and a cacheless sweep records nothing.
    """
    if parallel < 0:
        raise ValueError(f"parallel must be >= 0, got {parallel!r}")
    labels = spec.labels()
    if len(set(labels)) != len(labels):
        raise ValueError(
            f"sweep {spec.name!r} has duplicate point labels; results "
            "would silently collapse"
        )
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    if manifest is None and cache is not None:
        manifest = RunManifest.in_dir(cache.root)
    run_started = time.perf_counter()
    # The point function's own source is part of the cache key, so specs
    # defined outside the repro package still invalidate on edit.
    fn_key = function_fingerprint(spec.run_point) if cache else ""

    results: Dict[int, Any] = {}
    pending: List[int] = []
    hit_walls: List[Tuple[int, float]] = []
    for index, point in enumerate(spec.points):
        if cache is not None:
            probe_started = time.perf_counter()
            hit, value = cache.get(spec.name, spec.base_seed, point.config,
                                   fn_key, point_seed=spec.seed_for(point))
            if hit:
                results[index] = value
                hit_walls.append(
                    (index, time.perf_counter() - probe_started)
                )
                continue
        pending.append(index)

    tasks = [
        PointTask(
            run_point=spec.run_point,
            index=index,
            label=spec.points[index].label,
            config=spec.points[index].config,
            seed=spec.seed_for(spec.points[index]),
        )
        for index in pending
    ]
    workers = (default_parallelism(len(tasks)) if parallel == 0
               else min(parallel, max(1, len(tasks))))
    chosen = resolve_executor(executor, parallel=workers)
    chosen.retain_encoded = cache is not None
    if manifest is not None:
        # Hits are recorded once the executor is resolved so every
        # record of this run names the same mechanism.
        for index, wall in hit_walls:
            manifest.record(point_record(
                spec.name, spec.points[index].label, "ok", "hit",
                chosen.name, wall,
            ))
    # Results stream in completion order; each one is cached (and its
    # transport bytes released) immediately, so a large sweep never
    # holds more than one undelivered payload.  Failures are remembered
    # rather than raised mid-stream: the executor finishes draining its
    # transport, completed points still reach the cache, and the
    # reported point is deterministic (lowest index) regardless of
    # which worker failed first.
    failures: Dict[int, str] = {}
    failure_entries: Dict[int, Dict[str, Any]] = {}
    for index, ok, payload in chosen.run(tasks, workers=workers):
        point = spec.points[index]
        telemetry = chosen.telemetry.pop(index, None)
        wall = telemetry.wall_s if telemetry is not None else 0.0
        rss = telemetry.peak_rss_kb if telemetry is not None else 0
        events = telemetry.events if telemetry is not None else 0
        retries = telemetry.retries if telemetry is not None else 0
        worker = telemetry.worker if telemetry is not None else ""
        if not ok:
            failures[index] = payload
            entry = point_record(
                spec.name, point.label, "failed", "miss", chosen.name,
                wall, peak_rss_kb=rss, events=events, retries=retries,
                worker=worker, error=str(payload),
            )
            failure_entries[index] = entry
            if manifest is not None:
                manifest.record(entry)
            continue
        results[index] = payload
        if manifest is not None:
            manifest.record(point_record(
                spec.name, point.label, "ok", "miss", chosen.name,
                wall, peak_rss_kb=rss, events=events, retries=retries,
                worker=worker,
            ))
        if cache is not None:
            blob = chosen.encoded_payloads.pop(index, None)
            if blob is not None:
                # The transport already produced the canonical bytes;
                # they go straight to disk without re-encoding.
                cache.put_encoded(spec.name, spec.base_seed, point.config,
                                  blob, fn_key,
                                  point_seed=spec.seed_for(point))
            else:
                cache.put(spec.name, spec.base_seed, point.config, payload,
                          fn_key, point_seed=spec.seed_for(point))
    if manifest is not None:
        manifest.record_run(
            spec.name, chosen.name, workers, len(spec.points),
            computed=len(tasks) - len(failures), hits=len(hit_walls),
            failures=len(failures),
            wall_s=time.perf_counter() - run_started,
        )
    if failures:
        index = min(failures)
        point = spec.points[index]
        entry = failure_entries.get(index)
        raise SweepPointError(
            spec.name, point.label, point.config, failures[index],
            executor=chosen.name,
            elapsed=entry["wall_s"] if entry else 0.0,
            manifest_entry=entry,
        )

    return {
        point.label: results[index]
        for index, point in enumerate(spec.points)
    }
