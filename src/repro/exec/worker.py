"""Sweep worker daemon: ``python -m repro.exec.worker``.

One remote executor for the distributed sweep backend
(:class:`~repro.exec.distributed.DistributedExecutor`).  The daemon
connects back to its hub over the codec-framed wire layer
(:mod:`repro.runtime.wire`, retrying with backoff so spawn order never
matters), announces itself with a ``hello`` frame carrying its
advertised ``slots`` capacity, and then serves a *pull-based* loop:

- when it has a free slot it sends a ``next`` frame; the hub answers
  with one ``task`` (function reference + config + derived seed), a
  ``wait`` (nothing dispatchable right now -- back off and ask again),
  or ``bye`` (the sweep is complete);
- each task is resolved to its module-level point function, evaluated
  through the same :func:`~repro.exec.backends._evaluate` path the
  local executors use (so ``REPRO_TRACE`` tracing and telemetry behave
  identically), codec-encoded, and streamed back as a ``result`` frame
  whose payload bytes are digest-protected -- the hub writes them into
  the :class:`~repro.exec.cache.ResultCache` without re-encoding;
- a daemon thread beats the hub's heartbeat registry so a hung worker
  is noticed (a SIGKILLed one is noticed faster, by its socket EOF).

Because point functions are pure and seeds derive from configs, a
worker is pure mechanism: any task can run on any worker, any number of
times, and the bytes that come back are identical.  That is what lets
the hub requeue in-flight tasks of a lost worker and still produce a
result tree byte-identical to the serial executor's.

``--slots N`` advertises capacity and runs up to ``N`` tasks
concurrently on in-process threads.  Python threads only overlap
points that block (I/O, subprocesses); for CPU-bound sweep points run
one single-slot daemon per core instead -- that is exactly what the
hub's localhost auto-spawn mode does.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import inspect
import os
import sys
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.exec.backends import PointTask, _evaluate, _payload_digest
from repro.exec.codec import encode_result
from repro.runtime.wire import (
    FrameChannel,
    WireError,
    connect_with_backoff,
    parse_address,
)

#: Default liveness beat interval (the hub TTL is several multiples).
HEARTBEAT_INTERVAL = 0.25

#: Set in every worker process.  The distributed executor refuses to
#: start inside a process where it is set: a sweep script without an
#: ``if __name__ == "__main__"`` guard would otherwise re-run its own
#: sweep on import (the same recursion multiprocessing's ``spawn``
#: start method guards against), forking workers without bound.
WORKER_ENV = "REPRO_IN_SWEEP_WORKER"


def function_reference(fn: Callable) -> Dict[str, str]:
    """The wire form of a point function: import it, don't pickle it.

    A task must be self-contained, so the function travels as
    ``module:qualname`` (plus its source file, the fallback when the
    module name is unimportable on the worker -- e.g. a sweep script
    run as ``__main__``).  Closures and locally defined functions are
    rejected up front: they cannot be imported by reference anywhere.
    """
    qualname = getattr(fn, "__qualname__", "") or getattr(fn, "__name__", "")
    if not qualname or "<locals>" in qualname:
        raise ValueError(
            f"distributed execution needs a module-level point function, "
            f"got {fn!r}"
        )
    try:
        source = inspect.getsourcefile(fn) or ""
    except TypeError:
        source = ""
    return {
        "module": getattr(fn, "__module__", "") or "",
        "qualname": qualname,
        "file": source,
    }


#: Modules loaded from a source file (``__main__`` fallback), by path.
_FILE_MODULES: Dict[str, Any] = {}


def load_function(ref: Dict[str, str]) -> Callable:
    """Resolve a :func:`function_reference` back to the callable.

    Regular module paths import normally; a function whose recorded
    module cannot be imported (typically ``__main__``) is loaded from
    its source file under a synthetic module name, cached per path.
    """
    module_name = ref.get("module", "")
    module = None
    if module_name and module_name != "__main__":
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            module = None
    if module is None:
        path = ref.get("file", "")
        if not path:
            raise ImportError(
                f"cannot import point-function module {module_name!r} "
                "and no source file was provided"
            )
        module = _FILE_MODULES.get(path)
        if module is None:
            synthetic = f"_repro_worker_{abs(hash(path)):x}"
            spec = importlib.util.spec_from_file_location(synthetic, path)
            if spec is None or spec.loader is None:
                raise ImportError(f"cannot load point function from {path!r}")
            module = importlib.util.module_from_spec(spec)
            # Registered so by-reference pickling inside the point
            # function (rare, but legal) can resolve the module.
            sys.modules[synthetic] = module
            spec.loader.exec_module(module)
            _FILE_MODULES[path] = module
    obj: Any = module
    for part in ref["qualname"].split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{ref['qualname']!r} in {module!r} is not callable")
    return obj


class WorkerRuntime:
    """One daemon: hello/welcome handshake, pull loop, result streaming."""

    def __init__(
        self,
        channel: FrameChannel,
        name: str,
        slots: int = 1,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
    ) -> None:
        self.channel = channel
        self.name = name
        self.slots = max(1, int(slots))
        self.heartbeat_interval = heartbeat_interval
        self._stop_heartbeat = threading.Event()
        self._stopping = False
        self._lock = threading.Lock()
        self._requested = 0
        self._outstanding = 0

    # -- handshake -----------------------------------------------------------

    def _handshake(self) -> bool:
        """Register with the hub; adopt its import paths."""
        self.channel.send(
            "hello", node=self.name, pid=os.getpid(), slots=self.slots
        )
        frame = self.channel.recv()
        if frame is None or frame[0] != "welcome":
            return False
        for path in reversed(frame[1].get("paths") or []):
            # The hub's sys.path, so point functions defined in its
            # scripts/tests resolve by module name here too.
            if path and path not in sys.path:
                sys.path.insert(0, path)
        return True

    # -- requesting ----------------------------------------------------------

    def _request(self) -> None:
        """Ask for work for every idle slot (at most one ask per slot)."""
        while True:
            with self._lock:
                if (self._stopping
                        or self._requested + self._outstanding >= self.slots):
                    return
                self._requested += 1
            try:
                self.channel.send("next", node=self.name)
            except WireError:
                self._stopping = True
                return

    # -- task execution (pool threads) ---------------------------------------

    def _execute(self, body: Dict[str, Any]) -> None:
        """Evaluate one task and stream its result frame back."""
        index = int(body["index"])
        try:
            fn = load_function(body["fn"])
        except BaseException:
            self._send_result(index, False, error=traceback.format_exc())
            return
        task = PointTask(
            run_point=fn,
            index=index,
            label=body.get("label"),
            config=body["config"],
            seed=int(body["seed"]),
        )
        _, ok, envelope = _evaluate(task)
        telemetry = envelope.telemetry
        payload = envelope.payload
        blob = b""
        if ok:
            try:
                blob = encode_result(payload)
            except Exception:
                ok, payload = False, traceback.format_exc()
        if ok:
            self._send_result(
                index, True, blob=blob,
                wall_s=telemetry.wall_s, peak_rss_kb=telemetry.peak_rss_kb,
                events=telemetry.events,
            )
        else:
            self._send_result(
                index, False, error=str(payload),
                wall_s=telemetry.wall_s, peak_rss_kb=telemetry.peak_rss_kb,
                events=telemetry.events,
            )

    def _send_result(
        self,
        index: int,
        ok: bool,
        blob: bytes = b"",
        error: str = "",
        wall_s: float = 0.0,
        peak_rss_kb: int = 0,
        events: int = 0,
    ) -> None:
        body: Dict[str, Any] = {
            "index": index,
            "ok": ok,
            "wall_s": float(wall_s),
            "peak_rss_kb": int(peak_rss_kb),
            "events": int(events),
        }
        if ok:
            body["blob"] = blob
            body["digest"] = _payload_digest(blob)
        else:
            body["error"] = error
        with self._lock:
            self._outstanding -= 1
        try:
            self.channel.send("result", **body)
        except WireError:
            self._stopping = True
            return
        # Completion-driven pull: the freed slot asks for more work.
        self._request()

    # -- threads -------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop_heartbeat.wait(self.heartbeat_interval):
            try:
                self.channel.send("heartbeat", node=self.name)
            except WireError:
                return

    def run(self) -> int:
        """Serve the pull loop until the hub says ``bye`` (or vanishes)."""
        if not self._handshake():
            return 1
        beat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"repro-worker-beat-{self.name}",
            daemon=True,
        )
        beat.start()
        pool = ThreadPoolExecutor(
            max_workers=self.slots,
            thread_name_prefix=f"repro-worker-{self.name}",
        )
        try:
            self._request()
            while not self._stopping:
                frame = self.channel.recv()
                if frame is None:
                    break
                kind, body = frame
                if kind == "task":
                    with self._lock:
                        self._requested -= 1
                        self._outstanding += 1
                    pool.submit(self._execute, body)
                elif kind == "wait":
                    with self._lock:
                        self._requested -= 1
                        idle = self._requested + self._outstanding == 0
                    if idle:
                        # Nothing running and nothing promised: back off
                        # for the hub-suggested delay, then re-ask.
                        self._stop_heartbeat.wait(
                            float(body.get("delay", 0.05))
                        )
                        self._request()
                elif kind == "bye":
                    break
                # Unknown frames are ignored (forward compatibility).
        finally:
            self._stopping = True
            pool.shutdown(wait=True)
            self._stop_heartbeat.set()
            self.channel.close()
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, connect to the hub, and serve tasks."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.worker",
        description="Sweep worker daemon for the distributed executor.",
    )
    parser.add_argument("--hub", required=True,
                        help="hub address (unix:<path> or tcp:<host>:<port>)")
    parser.add_argument("--name", required=True, help="this worker's name")
    parser.add_argument("--slots", type=int, default=1,
                        help="advertised task capacity (default 1; run one "
                             "daemon per core for CPU-bound sweeps)")
    parser.add_argument("--heartbeat-interval", type=float,
                        default=HEARTBEAT_INTERVAL, metavar="SECONDS",
                        help=f"liveness beat period (default "
                             f"{HEARTBEAT_INTERVAL})")
    parser.add_argument("--connect-timeout", type=float, default=20.0,
                        metavar="SECONDS",
                        help="give up connecting to the hub after this long "
                             "(default 20)")
    args = parser.parse_args(argv)
    os.environ[WORKER_ENV] = "1"
    try:
        sock = connect_with_backoff(
            parse_address(args.hub), timeout=args.connect_timeout
        )
    except WireError as exc:
        print(f"repro.exec.worker {args.name}: {exc}", file=sys.stderr)
        return 1
    runtime = WorkerRuntime(
        FrameChannel(sock), args.name, slots=args.slots,
        heartbeat_interval=args.heartbeat_interval,
    )
    return runtime.run()


if __name__ == "__main__":
    sys.exit(main())
