"""Command-line glue for sweep execution.

Adds the standard execution flags to an ``argparse`` parser and turns
the parsed namespace back into the ``parallel=...``/``cache_dir=...``/
``executor=...`` keyword arguments that runner-aware experiment entry
points accept.  Entry points that predate the runner simply don't take
the keywords; :func:`supported_exec_kwargs` filters them out so one
dispatcher can drive both kinds.
"""

from __future__ import annotations

import argparse
import inspect
from typing import Any, Callable, Dict, Optional

from repro.exec.backends import EXECUTOR_ENV, EXECUTORS
from repro.exec.distributed import WORKERS_ENV, DistributedExecutor


def _worker_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (0 means one worker per CPU)"
        )
    return value


def add_exec_arguments(parser: argparse.ArgumentParser) -> None:
    """Install ``--parallel``, ``--executor`` and the cache flags."""
    parser.add_argument(
        "--parallel", type=_worker_count, default=1, metavar="N",
        help="worker-pool size for sweep points "
             "(1 = serial, 0 = one per CPU; results are identical)",
    )
    parser.add_argument(
        "--executor", default=None, metavar="NAME",
        choices=sorted(EXECUTORS),
        help="sweep execution mechanism: one of "
             f"{', '.join(sorted(EXECUTORS))} (default: serial for "
             "--parallel 1, process-pool otherwise; the "
             f"{EXECUTOR_ENV} environment variable overrides the "
             "default; results are bit-identical either way)",
    )
    parser.add_argument(
        "--workers", type=_worker_count, default=None, metavar="N",
        help="worker-daemon count for --executor distributed "
             "(localhost auto-spawn; 0 = external workers only, needs "
             f"REPRO_HUB_BIND; default: the {WORKERS_ENV} environment "
             "variable, then --parallel)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache finished sweep points here, keyed by config hash "
             "+ code version; re-runs are near-instant",
    )
    parser.add_argument(
        "--cache-clear", action="store_true",
        help="delete every entry under --cache-dir before running "
             "(stale code-fingerprint trees are evicted automatically "
             "even without this flag)",
    )


def apply_cache_maintenance(namespace: argparse.Namespace) -> Optional[str]:
    """Run the cache maintenance a parsed namespace asks for.

    With a ``--cache-dir``: a full wipe under ``--cache-clear``, otherwise
    eviction of cache trees left behind by previous code versions (their
    fingerprints can never be read again).  Returns a one-line summary
    when anything was removed, else ``None``.
    """
    cache_dir = getattr(namespace, "cache_dir", None)
    if cache_dir is None:
        if getattr(namespace, "cache_clear", False):
            return "warning: --cache-clear has no effect without --cache-dir"
        return None
    from repro.exec.cache import ResultCache

    cache = ResultCache(cache_dir)
    if getattr(namespace, "cache_clear", False):
        removed = cache.clear()
        return f"cache cleared: {removed} entries removed" if removed else None
    removed = cache.evict_stale()
    if removed:
        return f"cache maintenance: {removed} stale fingerprint tree(s) evicted"
    return None


def exec_kwargs(namespace: argparse.Namespace) -> Dict[str, Any]:
    """The execution keywords encoded in a parsed namespace.

    ``--workers`` only means something to the distributed executor, so
    a namespace carrying it turns the executor *name* into a prebuilt
    :class:`~repro.exec.distributed.DistributedExecutor` instance --
    the runner accepts either form.
    """
    executor: Any = getattr(namespace, "executor", None)
    workers = getattr(namespace, "workers", None)
    if workers is not None and executor == DistributedExecutor.name:
        executor = DistributedExecutor(workers=workers)
    return {
        "parallel": namespace.parallel,
        "cache_dir": namespace.cache_dir,
        "executor": executor,
    }


def supported_exec_kwargs(fn: Callable,
                          kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of ``kwargs`` that ``fn``'s signature accepts."""
    parameters = inspect.signature(fn).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in parameters.values()):
        return dict(kwargs)
    return {key: value for key, value in kwargs.items()
            if key in parameters}
