"""Command-line glue for sweep execution.

Adds the standard execution flags to an ``argparse`` parser and turns
the parsed namespace back into the ``parallel=...``/``cache_dir=...``
keyword arguments that runner-aware experiment entry points accept.
Entry points that predate the runner (single-run tables and figures)
simply don't take the keywords; :func:`supported_exec_kwargs` filters
them out so one dispatcher can drive both kinds.
"""

from __future__ import annotations

import argparse
import inspect
from typing import Any, Callable, Dict


def _worker_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (0 means one worker per CPU)"
        )
    return value


def add_exec_arguments(parser: argparse.ArgumentParser) -> None:
    """Install ``--parallel`` and ``--cache-dir`` on ``parser``."""
    parser.add_argument(
        "--parallel", type=_worker_count, default=1, metavar="N",
        help="worker-pool size for sweep points "
             "(1 = serial, 0 = one per CPU; results are identical)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache finished sweep points here, keyed by config hash "
             "+ code version; re-runs are near-instant",
    )


def exec_kwargs(namespace: argparse.Namespace) -> Dict[str, Any]:
    """The execution keywords encoded in a parsed namespace."""
    return {
        "parallel": namespace.parallel,
        "cache_dir": namespace.cache_dir,
    }


def supported_exec_kwargs(fn: Callable,
                          kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of ``kwargs`` that ``fn``'s signature accepts."""
    parameters = inspect.signature(fn).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in parameters.values()):
        return dict(kwargs)
    return {key: value for key, value in kwargs.items()
            if key in parameters}
