"""Deterministic per-point seed derivation for sweep execution.

Every sweep point gets its simulation seed from a stable hash of the
point's configuration (plus the spec name and the sweep's base seed), so
the seed a point runs under depends only on *what* the point is -- never
on worker identity, scheduling order, or the degree of parallelism.
Parallel execution is therefore bit-identical to serial execution.

The canonical form is JSON with sorted keys; enums are encoded as
``ClassName.MEMBER`` so renaming an enum *value* string does not silently
shift every seed while renaming the member (a semantic change) does.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Any, Mapping

#: Seeds are folded into 63 bits so they stay positive and fit any
#: downstream integer-seeded RNG.
_SEED_MASK = (1 << 63) - 1


def canonicalize(value: Any) -> Any:
    """Reduce a config value to a JSON-stable structure.

    Supports the plain data types sweep configs are built from: ``None``,
    ``bool``, ``int``, ``float``, ``str``, enums, and (nested) lists,
    tuples and string-keyed mappings.  Anything else is rejected loudly
    rather than hashed by repr, which would not be stable across runs.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips floats exactly and avoids json's locale-free
        # but version-dependent float formatting concerns.
        return {"__float__": repr(value)}
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, Mapping):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"config keys must be strings, got {key!r}"
                )
            out[key] = canonicalize(value[key])
        return out
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} value {value!r}; "
        "sweep configs must be plain data (None/bool/int/float/str/enum/"
        "list/tuple/dict)"
    )


def config_blob(config: Mapping[str, Any]) -> bytes:
    """The canonical byte serialization of a point config."""
    return json.dumps(
        canonicalize(config), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def config_hash(config: Mapping[str, Any]) -> str:
    """Stable hex digest of a point config (cache-key material)."""
    return hashlib.sha256(config_blob(config)).hexdigest()


def derive_seed(
    experiment: str,
    config: Mapping[str, Any],
    base_seed: int = 0,
) -> int:
    """The deterministic simulation seed for one sweep point.

    A pure function of ``(experiment, base_seed, config)``: re-running
    the same sweep -- serially, in parallel, or across processes -- gives
    every point the same seed.
    """
    digest = hashlib.sha256(
        b"\x00".join([
            experiment.encode("utf-8"),
            str(int(base_seed)).encode("ascii"),
            config_blob(config),
        ])
    ).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK
