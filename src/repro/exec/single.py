"""Single-run experiments on the sweep runner: caching without sweeping.

The figure/table experiments (T1/T2, F1-F4) are one deployment each, so
they gain nothing from fan-out -- but they gain exactly as much from the
on-disk cache as any sweep point: ``python -m repro.experiments`` with no
selection re-simulates all of them on every invocation.
:func:`run_cached_single` wraps one such run as a one-point
:class:`~repro.exec.spec.SweepSpec` and executes it through
:func:`~repro.exec.runner.run_sweep`, so the result flows through (and
is invalidated by) the same config-hash + code-fingerprint cache keys.

The experiment's own ``seed`` travels *inside* the config -- point
functions ignore the runner-derived seed -- so porting an experiment onto
the cache changes none of its output.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Union

from repro.exec.backends import Executor
from repro.exec.runner import run_sweep
from repro.exec.spec import PointFunction, SweepSpec

#: Label of the single point in a wrapped single-run spec.
POINT_LABEL = "run"


def run_cached_single(
    name: str,
    run_point: PointFunction,
    config: Dict[str, Any],
    cache_dir: Optional[os.PathLike] = None,
    executor: Union[Executor, str, None] = None,
) -> Any:
    """Run one single-run experiment through the runner/cache.

    ``name`` keys the cache (use a stable per-experiment identifier);
    ``config`` must be plain data (it is hashed into the cache key) and
    should carry everything the run depends on, including its seed.
    ``executor`` rides through to :func:`~repro.exec.runner.run_sweep`
    unchanged -- a single point still exercises the selected transport.
    """
    spec = SweepSpec(name=name, run_point=run_point)
    spec.add(POINT_LABEL, **config)
    return run_sweep(spec, parallel=1, cache_dir=cache_dir,
                     executor=executor)[POINT_LABEL]
