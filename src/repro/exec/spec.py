"""Declarative sweep descriptions: what to run, not how.

A :class:`SweepSpec` names a sweep, lists its :class:`SweepPoint`\\ s and
carries the pure ``run_point(config, seed)`` function that evaluates one
point.  The runner (:mod:`repro.exec.runner`) decides execution order,
parallelism and caching; the spec stays a plain description, so the same
spec can run serially, on a worker pool, or straight out of the cache.

``run_point`` must be a module-level function (workers import it by
reference) and must return a picklable value built only from the config
and the seed -- no ambient state -- so that parallel execution is
bit-identical to serial.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.exec.seeding import config_blob, derive_seed

#: Evaluates one sweep point: ``run_point(config, seed) -> result``.
PointFunction = Callable[[Dict[str, Any], int], Any]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One point in a sweep: a display label plus its config."""

    label: Hashable
    config: Dict[str, Any]

    def __post_init__(self) -> None:
        # Fail at declaration time, not inside a worker process.
        config_blob(self.config)


@dataclasses.dataclass
class SweepSpec:
    """A named set of independent points sharing one point function.

    ``paired=True`` gives every point the *same* derived seed, so
    variants run against identical workload realizations -- the right
    design when the sweep compares policies on one workload (a paired
    comparison) rather than sampling independent replications.
    """

    name: str
    run_point: PointFunction
    points: List[SweepPoint] = dataclasses.field(default_factory=list)
    base_seed: int = 0
    paired: bool = False

    def add(self, label: Hashable, **config: Any) -> "SweepPoint":
        """Declare one point and return it."""
        if any(point.label == label for point in self.points):
            raise ValueError(
                f"duplicate point label {label!r} in sweep {self.name!r}"
            )
        point = SweepPoint(label=label, config=config)
        self.points.append(point)
        return point

    def add_grid(self, _fixed: Optional[Dict[str, Any]] = None,
                 **axes: Sequence[Any]) -> List[SweepPoint]:
        """Declare the dense cross product of ``axes`` as points.

        Each keyword names one axis and supplies its values; one point is
        declared per combination, iterated with the *last* axis varying
        fastest (row-major, like nested loops in keyword order).  A
        point's label is the tuple of its axis values in the same order
        (a single-axis grid keeps tuple labels, so the label shape does
        not change when axes are added).  ``_fixed`` merges constant
        config entries into every point without widening the labels.

        Returns the declared points in declaration order.
        """
        if not axes:
            raise ValueError("add_grid needs at least one axis")
        # Materialize up front: one-shot iterables would otherwise be
        # exhausted by the emptiness guard and yield zero points.
        materialized = {name: tuple(values) for name, values in axes.items()}
        empty = [name for name, values in materialized.items() if not values]
        if empty:
            raise ValueError(
                f"grid axes must be non-empty, got no values for "
                f"{', '.join(sorted(empty))}"
            )
        fixed = dict(_fixed or {})
        overlap = sorted(set(fixed) & set(axes))
        if overlap:
            raise ValueError(
                f"fixed config and axes overlap on {', '.join(overlap)}"
            )
        points = []
        for combo in itertools.product(*materialized.values()):
            config = dict(fixed)
            config.update(zip(materialized.keys(), combo))
            points.append(self.add(tuple(combo), **config))
        return points

    def seed_for(self, point: SweepPoint) -> int:
        """The deterministic seed this spec assigns ``point``.

        A stable hash either way: of the point's config (independent
        replications) or, when ``paired``, of the spec name alone
        (one shared workload realization for every point).
        """
        if self.paired:
            return derive_seed(self.name, {}, base_seed=self.base_seed)
        return derive_seed(self.name, point.config, base_seed=self.base_seed)

    def labels(self) -> List[Hashable]:
        """Point labels in declaration order."""
        return [point.label for point in self.points]
