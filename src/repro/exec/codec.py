"""Compact binary codec for sweep-point payloads.

Per-point results travel twice: through the worker pool's result pipe
and into the on-disk :class:`~repro.exec.cache.ResultCache`.  Both paths
used to pay generic pickling for every value; this codec gives the large
artifacts sweep points actually produce -- traces, coherence records,
per-metric sample arrays -- a dense, deterministic binary form:

- plain data (``None``/``bool``/``int``/``float``/``str``/``bytes`` and
  nested ``list``/``tuple``/``dict``) is encoded natively with
  fixed-width tags;
- homogeneous numeric sequences (the per-metric sample arrays) are
  packed as one contiguous ``struct`` block -- eight bytes per element,
  no per-item tags -- which is where the pipe and disk bytes go;
- anything else (e.g. a ``RunMetrics`` dataclass) falls back to an
  embedded pickle frame, so the codec is universal without giving up
  the fast paths.

Encoding is deterministic: the same value always produces the same
bytes (dict insertion order is preserved through a round trip), which
is what lets the golden tests assert cache-entry *byte* equality across
executors.  :func:`decode_result` is strict -- any malformed, truncated
or trailing input raises :class:`CodecError` rather than returning a
partial value, so a corrupt cache entry or shared-memory segment is
always detected.
"""

from __future__ import annotations

import pickle
import struct
import sys
from array import array
from typing import Any, Tuple

#: Leading magic of every encoded payload ("Repro eXec Codec v1").
MAGIC = b"RXC1"

#: Minimum element count before a homogeneous numeric sequence is packed
#: as one contiguous block; shorter sequences stay per-item (the header
#: would not pay for itself).
_ARRAY_MIN = 4

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

#: Packed arrays are defined little-endian (the common native order, so
#: ``array`` conversion is one C memcpy); big-endian hosts byteswap.
_ARRAY_SWAP = sys.byteorder == "big"

#: Element sizes of the packed-array storage widths; integer arrays pick
#: the narrowest width that fits (version counters take one byte per
#: element instead of a fixed eight).
_ARRAY_ITEM_SIZE = {"b": 1, "h": 2, "i": 4, "q": 8, "d": 8}


def _pack_array(values, typecode: str) -> bytes:
    """One contiguous little-endian block for a homogeneous sequence."""
    packed = array(typecode, values)
    if _ARRAY_SWAP:
        packed.byteswap()
    return packed.tobytes()


class CodecError(ValueError):
    """An encoded payload is malformed, truncated, or has trailing data."""


def _encode_into(out: bytearray, value: Any) -> None:
    """Append the encoding of one value to ``out``."""
    # bool must be tested before int (it is an int subclass).
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out += b"i"
            out += _I64.pack(value)
        else:
            width = (value.bit_length() + 8) // 8
            out += b"I"
            out += _U32.pack(width)
            out += value.to_bytes(width, "big", signed=True)
    elif type(value) is float:
        out += b"d"
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out += b"s"
        out += _U32.pack(len(raw))
        out += raw
    elif type(value) is bytes:
        # bytearray deliberately falls through to the pickle frame:
        # tagging it as bytes would decode to the wrong (immutable)
        # type and break round-trip fidelity.
        out += b"b"
        out += _U32.pack(len(value))
        out += value
    elif type(value) in (list, tuple):
        container = b"l" if type(value) is list else b"t"
        if len(value) >= _ARRAY_MIN:
            # set(map(type, ...)) is one C pass; it decides homogeneity
            # (and excludes bool, a distinct type) without a slow
            # per-item python loop.
            kinds = set(map(type, value))
            if kinds == {float}:
                out += b"A" + b"d" + container + _U32.pack(len(value))
                out += _pack_array(value, "d")
                return
            if kinds == {int}:
                # Width selection by attempted C conversion, narrowest
                # first: ``array`` raises OverflowError on the first
                # out-of-range element, so the common case (all values
                # fit the first width tried) is a single C pass with no
                # python-level min/max scan.
                for typecode in ("b", "h", "i", "q"):
                    try:
                        packed = array(typecode, value)
                    except OverflowError:
                        continue
                    if _ARRAY_SWAP:
                        packed.byteswap()
                    out += (b"A" + typecode.encode("ascii")
                            + container + _U32.pack(len(value)))
                    out += packed.tobytes()
                    return
                # Falls through for bignums outside 64 bits.
        out += container
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is dict:
        out += b"m"
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        # Anything with behaviour (dataclasses, enums, user types) rides
        # an embedded pickle frame; the fast paths above stay exact.
        frame = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        out += b"P"
        out += _U32.pack(len(frame))
        out += frame


def encode_result(value: Any) -> bytes:
    """Encode one sweep-point payload to its canonical byte form."""
    out = bytearray(MAGIC)
    _encode_into(out, value)
    return bytes(out)


# Integer tag constants: comparing small ints in the decode hot loop is
# measurably cheaper than one-byte bytes objects.
_T_NONE, _T_TRUE, _T_FALSE = ord("N"), ord("T"), ord("F")
_T_I64, _T_BIG, _T_F64 = ord("i"), ord("I"), ord("d")
_T_STR, _T_BYTES = ord("s"), ord("b")
_T_LIST, _T_TUPLE, _T_DICT = ord("l"), ord("t"), ord("m")
_T_ARRAY, _T_PICKLE = ord("A"), ord("P")


def _slice(blob: bytes, offset: int, count: int) -> int:
    """Bounds-check a ``count``-byte slice; return its end offset."""
    end = offset + count
    if end > len(blob):
        raise CodecError(
            f"truncated payload: needed {count} bytes at offset {offset}, "
            f"have {len(blob) - offset}"
        )
    return end


def _decode_from(blob: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one value starting at ``offset``; return (value, end).

    Ordered by payload frequency (dicts and strings dominate trace
    records); uses ``unpack_from`` so the hot path never slices.
    """
    tag = blob[offset]
    offset += 1
    if tag == _T_DICT:
        (count,) = _U32.unpack_from(blob, offset)
        offset += 4
        decode = _decode_from
        mapping = {}
        for _ in range(count):
            key, offset = decode(blob, offset)
            mapping[key], offset = decode(blob, offset)
        return mapping, offset
    if tag == _T_STR:
        (size,) = _U32.unpack_from(blob, offset)
        end = _slice(blob, offset + 4, size)
        try:
            return blob[offset + 4:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string payload: {exc}")
    if tag == _T_I64:
        value = _I64.unpack_from(blob, offset)[0]
        return value, offset + 8
    if tag == _T_F64:
        value = _F64.unpack_from(blob, offset)[0]
        return value, offset + 8
    if tag == _T_LIST or tag == _T_TUPLE:
        (count,) = _U32.unpack_from(blob, offset)
        offset += 4
        decode = _decode_from
        items = []
        append = items.append
        for _ in range(count):
            item, offset = decode(blob, offset)
            append(item)
        return (items if tag == _T_LIST else tuple(items)), offset
    if tag == _T_ARRAY:
        typecode = chr(blob[offset])
        container = blob[offset + 1]
        offset += 2
        item_size = _ARRAY_ITEM_SIZE.get(typecode)
        if item_size is None or container not in (_T_LIST, _T_TUPLE):
            raise CodecError(
                f"unknown array header {typecode!r}/{chr(container)!r}"
            )
        (count,) = _U32.unpack_from(blob, offset)
        end = _slice(blob, offset + 4, item_size * count)
        unpacked = array(typecode)
        unpacked.frombytes(blob[offset + 4:end])
        if _ARRAY_SWAP:
            unpacked.byteswap()
        items = unpacked.tolist()
        return (items if container == _T_LIST else tuple(items)), end
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_BIG:
        (size,) = _U32.unpack_from(blob, offset)
        end = _slice(blob, offset + 4, size)
        return int.from_bytes(blob[offset + 4:end], "big",
                              signed=True), end
    if tag == _T_BYTES:
        (size,) = _U32.unpack_from(blob, offset)
        end = _slice(blob, offset + 4, size)
        return blob[offset + 4:end], end
    if tag == _T_PICKLE:
        (size,) = _U32.unpack_from(blob, offset)
        end = _slice(blob, offset + 4, size)
        try:
            return pickle.loads(blob[offset + 4:end]), end
        except Exception as exc:  # unpickling can raise nearly anything
            raise CodecError(f"embedded pickle frame failed to load: {exc}")
    raise CodecError(f"unknown tag {chr(tag)!r} at offset {offset - 1}")


def decode_result(blob: bytes) -> Any:
    """Decode a payload produced by :func:`encode_result` (strict)."""
    blob = bytes(blob)
    if blob[:4] != MAGIC:
        raise CodecError(
            f"bad magic {blob[:4]!r}; not a {MAGIC.decode()} payload"
        )
    try:
        value, offset = _decode_from(blob, 4)
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated or malformed payload: {exc}")
    if offset != len(blob):
        raise CodecError(
            f"{len(blob) - offset} trailing bytes after the root value"
        )
    return value
