"""Distributed sweep executor: fan points out to worker daemons.

The fourth :class:`~repro.exec.backends.Executor`: the hub (this
module) serves a *pull-based work queue* over the codec-framed wire
layer (:mod:`repro.runtime.wire`); worker daemons
(``python -m repro.exec.worker``) request the next task whenever they
have a free slot.  Pull dispatch is natural work-stealing -- a slow
point occupies exactly one worker while every other worker keeps
draining the queue, so stragglers cannot stall the sweep.

Layers, mirroring the queue-based-load-leveling / retry-with-backoff
patterns the ROADMAP names:

- :class:`SweepHub` is the pure state machine: pending queue,
  per-worker assignments, bounded retry-with-backoff on worker loss,
  duplicate-result suppression.  It never touches a socket, which is
  what makes the wire protocol unit-testable.
- :class:`DistributedExecutor` is the I/O shell: it binds a listener
  (a Unix socket in a throwaway run directory by default, or any
  ``unix:``/``tcp:`` address for multi-host use), spawns localhost
  workers through a :class:`WorkerSupervisor` when asked, runs one
  reader thread per worker connection, sweeps heartbeat liveness
  through the shared :class:`~repro.runtime.registry.Registry`, and
  streams result triples back to the runner as they arrive.

Determinism is inherited, not engineered: point functions are pure and
seeds derive from configs, so any worker may compute any point -- even
twice, when a presumed-dead worker turns out to be merely slow -- and
the codec bytes that come back are identical.  Results therefore land
in the :class:`~repro.exec.cache.ResultCache` byte-identical to the
serial executor's, regardless of worker count, completion order, or
mid-sweep worker crashes (the executor-parity goldens pin this).

Worker loss is detected two ways: the worker's socket EOF (instant, the
SIGKILL path) and heartbeat expiry (a hung-but-connected worker).
Either way its in-flight tasks are requeued with exponential backoff,
at most :attr:`DistributedExecutor.max_retries` times per task before
the point is reported as failed.
"""

from __future__ import annotations

import os
import queue
import shutil
import sys
import tempfile
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.exec.backends import (
    EXECUTORS,
    Executor,
    PointTask,
    PointTelemetry,
    TaskResult,
    TelemetryEnvelope,
    _payload_digest,
    default_parallelism,
)
from repro.exec.codec import CodecError, decode_result
from repro.exec.worker import WORKER_ENV, function_reference
from repro.runtime.registry import Registry
from repro.runtime.supervisor import NodeSupervisor
from repro.runtime.wire import (
    Address,
    FrameChannel,
    WireError,
    listen,
    parse_address,
)

#: Environment variable naming the worker-daemon count for the
#: distributed executor (the ``--workers`` CLI flag overrides it).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable naming the hub bind address (``unix:<path>`` or
#: ``tcp:<host>:<port>``) for multi-host sweeps; unset means a private
#: Unix socket plus localhost auto-spawned workers.
HUB_BIND_ENV = "REPRO_HUB_BIND"


class WorkerSupervisor(NodeSupervisor):
    """Spawn/kill/reap ``repro.exec.worker`` daemons (localhost mode).

    Reuses the node supervisor's lifecycle machinery wholesale -- only
    the command line and the log-redirect variable differ.  Worker
    stdout/stderr lands in ``<name>.log`` under the log directory
    (``REPRO_WORKER_LOG_DIR`` redirects it; the CI distributed-sweep
    job uploads those logs on failure).
    """

    log_env = "REPRO_WORKER_LOG_DIR"

    def __init__(
        self,
        run_dir: str,
        hub_address: Address,
        log_dir: str = "",
        slots: int = 1,
    ) -> None:
        super().__init__(run_dir, hub_address, log_dir=log_dir)
        self.slots = max(1, int(slots))

    def build_argv(self, name: str, restore: bool = False) -> List[str]:
        """The worker-daemon command line (``restore`` is meaningless here)."""
        return [
            sys.executable,
            "-m",
            "repro.exec.worker",
            "--hub",
            _format_connect_address(self.hub_address),
            "--name",
            name,
            "--slots",
            str(self.slots),
        ]


def _format_connect_address(address: Address) -> str:
    """Render the address workers should *connect* to.

    A hub bound to the TCP wildcard is reachable locally via loopback;
    everything else formats as-is.
    """
    if isinstance(address, tuple):
        host, port = address
        if host in ("", "0.0.0.0", "::"):
            host = "127.0.0.1"
        return f"tcp:{host}:{int(port)}"
    return f"unix:{address}"


def _coerce_address(address: Union[Address, str, None]) -> Optional[Address]:
    """Accept ``unix:``/``tcp:`` strings, raw paths, or tuples."""
    if address is None or isinstance(address, tuple):
        return address
    if address.startswith(("unix:", "tcp:")):
        return parse_address(address)
    return address  # a bare Unix-socket path


class SweepHub:
    """The hub's dispatch state machine (no I/O, fully lock-guarded).

    Tracks the pending queue, per-worker in-flight assignments, per-task
    attempt counts and retry backoff deadlines; produces the reply for
    every ``next`` request and absorbs every ``result``/loss event.
    """

    def __init__(
        self,
        tasks: List[PointTask],
        max_retries: int = 3,
        retry_base_delay: float = 0.05,
        retry_max_delay: float = 1.0,
    ) -> None:
        self.tasks: Dict[int, PointTask] = {t.index: t for t in tasks}
        self.max_retries = max(0, int(max_retries))
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self.queue: deque = deque(sorted(self.tasks))
        self.not_before: Dict[int, float] = {}
        self.attempts: Dict[int, int] = {i: 0 for i in self.tasks}
        self.assigned: Dict[str, Set[int]] = {}
        self.completed: Set[int] = set()
        self.slots: Dict[str, int] = {}
        self.lost: Set[str] = set()
        self._lock = threading.Lock()

    # -- introspection -------------------------------------------------------

    @property
    def done(self) -> bool:
        """Every task delivered (computed, or failed out of retries)."""
        with self._lock:
            return len(self.completed) == len(self.tasks)

    def capacity(self) -> int:
        """Advertised-slot capacity of the currently registered workers."""
        with self._lock:
            slots = list(self.slots.values())
        return default_parallelism(len(self.tasks), remote_slots=slots)

    def inflight(self) -> Dict[str, List[int]]:
        """Worker name -> sorted in-flight task indices (for tests/kill)."""
        with self._lock:
            return {
                name: sorted(indices)
                for name, indices in self.assigned.items() if indices
            }

    # -- protocol events -----------------------------------------------------

    def register(self, name: str, slots: int) -> None:
        """A worker said hello (re-registration replaces the old entry)."""
        with self._lock:
            self.slots[name] = max(1, int(slots))
            self.lost.discard(name)
            self.assigned.setdefault(name, set())

    def next_task(self, name: str, now: float
                  ) -> Tuple[str, Dict[str, Any]]:
        """Answer one ``next`` request: ``task``, ``wait`` or ``bye``."""
        with self._lock:
            if name in self.lost:
                # The registry declared this worker dead and its tasks
                # were requeued; a zombie asking for more work is told
                # to go away rather than silently re-admitted.
                return "bye", {}
            if len(self.completed) == len(self.tasks):
                return "bye", {}
            soonest: Optional[float] = None
            for _ in range(len(self.queue)):
                index = self.queue.popleft()
                if index in self.completed:
                    continue  # stale entry left by a duplicate result
                deadline = self.not_before.get(index, 0.0)
                if deadline > now:
                    self.queue.append(index)
                    soonest = (deadline if soonest is None
                               else min(soonest, deadline))
                    continue
                self.assigned.setdefault(name, set()).add(index)
                task = self.tasks[index]
                return "task", {
                    "index": index,
                    "label": task.label,
                    "config": task.config,
                    "seed": task.seed,
                    "fn": function_reference(task.run_point),
                    "attempt": self.attempts[index],
                }
            delay = 0.05 if soonest is None else max(0.01, soonest - now)
            return "wait", {"delay": round(min(delay, 0.25), 4)}

    def complete(self, name: str, body: Dict[str, Any]
                 ) -> Optional[Tuple[TaskResult, Optional[bytes]]]:
        """Absorb one ``result`` frame; ``None`` for duplicates.

        Returns the runner-facing result triple plus the canonical
        codec bytes (for the cache's no-re-encode path).  A torn blob
        (digest mismatch) or undecodable payload raises
        :class:`~repro.exec.codec.CodecError`; the caller treats the
        worker as faulty and requeues, exactly like a connection loss.
        """
        index = int(body["index"])
        ok = bool(body.get("ok"))
        blob: Optional[bytes] = None
        payload: Any
        if ok:
            blob = bytes(body.get("blob") or b"")
            if _payload_digest(blob) != body.get("digest"):
                raise CodecError(
                    f"task {index}: result payload digest mismatch from "
                    f"worker {name!r}"
                )
            payload = decode_result(blob)
        else:
            payload = str(body.get("error", ""))
        with self._lock:
            if index not in self.tasks or index in self.completed:
                return None  # duplicate after a spurious requeue
            self.completed.add(index)
            self.assigned.get(name, set()).discard(index)
            retries = self.attempts[index]
        telemetry = PointTelemetry(
            wall_s=float(body.get("wall_s", 0.0)),
            peak_rss_kb=int(body.get("peak_rss_kb", 0)),
            events=int(body.get("events", 0)),
            worker=name,
            retries=retries,
        )
        return (index, ok, TelemetryEnvelope(payload, telemetry)), blob

    def lose(self, name: str, now: float
             ) -> Tuple[List[TaskResult], int]:
        """A worker died: requeue its in-flight tasks with backoff.

        Returns ``(failure triples, requeued count)`` -- failures are
        tasks whose retry budget is exhausted; they complete the sweep
        as attributable point failures rather than hanging it.
        """
        failures: List[TaskResult] = []
        requeued = 0
        with self._lock:
            if name in self.lost:
                return [], 0
            self.lost.add(name)
            self.slots.pop(name, None)
            indices = sorted(self.assigned.pop(name, ()))
            for index in indices:
                if index in self.completed:
                    continue
                self.attempts[index] += 1
                if self.attempts[index] > self.max_retries:
                    self.completed.add(index)
                    label = self.tasks[index].label
                    telemetry = PointTelemetry(
                        wall_s=0.0, worker=name,
                        retries=self.attempts[index] - 1,
                    )
                    failures.append((index, False, TelemetryEnvelope(
                        f"point {label!r} lost with worker {name!r}; "
                        f"{self.max_retries} retries exhausted",
                        telemetry,
                    )))
                else:
                    delay = min(
                        self.retry_base_delay
                        * (2 ** (self.attempts[index] - 1)),
                        self.retry_max_delay,
                    )
                    self.not_before[index] = now + delay
                    self.queue.append(index)
                    requeued += 1
        return failures, requeued


class DistributedExecutor(Executor):
    """Evaluate points on worker daemons over the wire layer.

    ``workers`` is the localhost auto-spawn count (``None`` consults
    the ``REPRO_WORKERS`` environment variable, then falls back to the
    runner's worker count; ``0`` spawns nothing and requires
    ``address`` plus externally launched workers).  ``address`` binds
    the hub to a fixed ``unix:``/``tcp:`` endpoint for multi-host
    sweeps; by default the hub binds a private Unix socket in a
    throwaway run directory, so single-machine users get the
    multi-host-shaped path with zero setup.

    Transport accounting is always on: ``stats.wire_bytes`` (framed
    socket bytes, both directions), ``stats.retries`` (task
    re-dispatches after worker loss), and per-worker attribution in
    :attr:`worker_points` / :attr:`worker_retries` and each point's
    :class:`~repro.exec.backends.PointTelemetry`.
    """

    name = "distributed"

    def __init__(
        self,
        collect_stats: bool = False,
        workers: Optional[int] = None,
        address: Union[Address, str, None] = None,
        max_retries: int = 3,
        retry_base_delay: float = 0.05,
        heartbeat_ttl: float = 2.0,
        worker_timeout: float = 60.0,
        slots_per_worker: int = 1,
    ) -> None:
        super().__init__(collect_stats)
        if workers is None:
            env = os.environ.get(WORKERS_ENV)
            workers = int(env) if env else None
        if address is None:
            env_bind = os.environ.get(HUB_BIND_ENV)
            address = parse_address(env_bind) if env_bind else None
        self.workers = workers
        self.address = _coerce_address(address)
        if self.workers == 0 and self.address is None:
            raise ValueError(
                "DistributedExecutor(workers=0) needs an address for "
                "external workers to connect to"
            )
        self.max_retries = max_retries
        self.retry_base_delay = retry_base_delay
        self.heartbeat_ttl = heartbeat_ttl
        self.worker_timeout = worker_timeout
        self.slots_per_worker = max(1, int(slots_per_worker))
        #: Per-worker delivered-point and retry counts of the last run.
        self.worker_points: Dict[str, int] = {}
        self.worker_retries: Dict[str, int] = {}
        #: Advertised-slot capacity observed during the last run.
        self.remote_capacity = 0
        # Per-run I/O state (rebuilt by _serve).
        self._hub: Optional[SweepHub] = None
        self._supervisor: Optional[WorkerSupervisor] = None

    # -- run -----------------------------------------------------------------

    def run(self, tasks: List[PointTask], workers: int = 1
            ) -> Iterator[TaskResult]:
        """Serve the sweep's work queue; yield results as they land."""
        if os.environ.get(WORKER_ENV):
            # A worker resolving a point function imports the sweep
            # script's module; without this refusal an unguarded script
            # would re-run its sweep on import, forking without bound.
            raise RuntimeError(
                "refusing to start a distributed sweep inside a sweep "
                "worker; put the sweep behind 'if __name__ == "
                "\"__main__\":' in the script that defines it"
            )
        self._reset_stats(tasks)
        self.worker_points = {}
        self.worker_retries = {}
        self.remote_capacity = 0
        if not tasks:
            return iter(())
        if workers == 0:
            workers = default_parallelism(len(tasks))
        spawn = self.workers if self.workers is not None else workers
        spawn = max(0, min(spawn, len(tasks)))
        if self.address is None and spawn == 0:
            spawn = 1  # a private-socket hub with no workers would hang
        return self._serve(list(tasks), spawn)

    # -- test/kill introspection ---------------------------------------------

    def inflight(self) -> Dict[str, List[int]]:
        """Worker name -> in-flight task indices (empty when not running)."""
        hub = self._hub
        return hub.inflight() if hub is not None else {}

    def worker_pid(self, name: str) -> int:
        """PID of an auto-spawned worker (KeyError when unknown)."""
        if self._supervisor is None:
            raise KeyError(name)
        return self._supervisor.pid(name)

    # -- serving -------------------------------------------------------------

    def _serve(self, tasks: List[PointTask], spawn: int
               ) -> Iterator[TaskResult]:
        hub = SweepHub(tasks, max_retries=self.max_retries,
                       retry_base_delay=self.retry_base_delay)
        registry = Registry(ttl=self.heartbeat_ttl)
        results: "queue.Queue" = queue.Queue()
        stop = threading.Event()
        channels: List[FrameChannel] = []
        channel_by_name: Dict[str, FrameChannel] = {}
        lock = threading.Lock()
        run_dir = tempfile.mkdtemp(prefix="repro-sweep-hub-")
        address: Address = (
            os.path.join(run_dir, "hub.sock")
            if self.address is None else self.address
        )
        state = {
            "last_progress": time.monotonic(),
            "respawns": spawn,  # replacement budget in auto-spawn mode
            "next_worker": spawn,
        }
        self._hub = hub

        def lose_worker(name: str) -> None:
            now = time.monotonic()
            failures, requeued = hub.lose(name, now)
            registry.deregister(name)
            with lock:
                channel_by_name.pop(name, None)
                self.stats.retries += requeued
                if requeued:
                    self.worker_retries[name] = (
                        self.worker_retries.get(name, 0) + requeued
                    )
            for triple in failures:
                results.put(("triple", triple, None))

        def reader(channel: FrameChannel) -> None:
            name: Optional[str] = None
            try:
                while not stop.is_set():
                    frame = channel.recv()
                    if frame is None:
                        break
                    kind, body = frame
                    if kind == "hello":
                        name = str(body["node"])
                        slots = int(body.get("slots", 1))
                        hub.register(name, slots)
                        registry.register(
                            name, int(body.get("pid", 0)), conn=channel,
                            now=time.monotonic(), slots=slots,
                        )
                        with lock:
                            channel_by_name[name] = channel
                            state["last_progress"] = time.monotonic()
                            self.remote_capacity = hub.capacity()
                        channel.send(
                            "welcome", node=name,
                            paths=[p or os.getcwd() for p in sys.path],
                        )
                    elif name is None:
                        continue  # pre-hello chatter from a confused peer
                    elif kind == "heartbeat":
                        registry.beat(name, time.monotonic())
                    elif kind == "next":
                        kind_out, body_out = hub.next_task(
                            name, time.monotonic()
                        )
                        channel.send(kind_out, **body_out)
                    elif kind == "result":
                        registry.beat(name, time.monotonic())
                        delivered = hub.complete(name, body)
                        if delivered is None:
                            continue
                        triple, blob = delivered
                        with lock:
                            state["last_progress"] = time.monotonic()
                            self.worker_points[name] = (
                                self.worker_points.get(name, 0) + 1
                            )
                            if blob is not None:
                                self.stats.payload_bytes += len(blob)
                        results.put(("triple", triple, blob))
                    elif kind == "bye":
                        break
            except (WireError, CodecError, KeyError, TypeError, ValueError):
                # A faulty or corrupt worker is handled like a dead one:
                # drop the connection, requeue its tasks.
                pass
            finally:
                if name is not None:
                    lose_worker(name)
                channel.close()

        def accept_loop(listener) -> None:
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket_timeout_errors:
                    continue
                except OSError:
                    return  # listener closed during shutdown
                channel = FrameChannel(conn)
                with lock:
                    channels.append(channel)
                threading.Thread(
                    target=reader, args=(channel,),
                    name="repro-hub-reader", daemon=True,
                ).start()

        import socket as _socket
        socket_timeout_errors = (_socket.timeout, TimeoutError)

        listener = listen(address)
        listener.settimeout(0.2)
        if isinstance(address, tuple):
            address = listener.getsockname()[:2]  # resolve port 0
        supervisor: Optional[WorkerSupervisor] = None
        if spawn:
            supervisor = WorkerSupervisor(
                run_dir, address, slots=self.slots_per_worker
            )
            self._supervisor = supervisor
            for i in range(spawn):
                supervisor.spawn(f"w{i}")
        acceptor = threading.Thread(
            target=accept_loop, args=(listener,),
            name="repro-hub-accept", daemon=True,
        )
        acceptor.start()

        def tick() -> None:
            """Idle-loop maintenance: expiry, respawn, hang detection."""
            now = time.monotonic()
            for name in registry.expire(now):
                with lock:
                    channel = channel_by_name.get(name)
                if channel is not None:
                    channel.close()  # unblocks its reader -> lose_worker
                else:
                    lose_worker(name)
            if hub.done:
                return
            if supervisor is not None and not registry.names():
                if not supervisor.live_pids():
                    with lock:
                        budget = state["respawns"]
                        state["respawns"] = max(0, budget - 1)
                        worker_id = state["next_worker"]
                        state["next_worker"] += 1
                    if budget <= 0:
                        raise WireError(
                            "distributed sweep: every spawned worker "
                            f"exited (logs under {supervisor.log_dir!r})"
                        )
                    supervisor.spawn(f"w{worker_id}")
                    with lock:
                        state["last_progress"] = time.monotonic()
            with lock:
                stalled = now - state["last_progress"]
            if not registry.names() and stalled > self.worker_timeout:
                raise WireError(
                    f"distributed sweep: no workers connected for "
                    f"{self.worker_timeout:.0f}s"
                )

        try:
            delivered = 0
            while delivered < len(tasks):
                try:
                    _, triple, blob = results.get(timeout=0.1)
                except queue.Empty:
                    tick()
                    continue
                index = triple[0]
                if blob is not None and self.retain_encoded:
                    self.encoded_payloads[index] = blob
                delivered += 1
                yield self._count(triple)
        finally:
            stop.set()
            with lock:
                open_channels = list(channels)
            for channel in open_channels:
                try:
                    channel.send("bye")
                except WireError:
                    pass
            try:
                listener.close()
            except OSError:
                pass
            if supervisor is not None:
                supervisor.shutdown()
            for channel in open_channels:
                channel.close()
            acceptor.join(timeout=1.0)
            with lock:
                self.stats.wire_bytes = sum(
                    ch.sent_bytes + ch.recv_bytes for ch in channels
                )
            self._hub = None
            self._supervisor = None
            if isinstance(address, str) and os.path.exists(address):
                try:
                    os.unlink(address)
                except OSError:
                    pass
            shutil.rmtree(run_dir, ignore_errors=True)


#: Registered on import (``repro.exec`` imports this module), so the
#: name is selectable wherever the serial/pool executors are.
EXECUTORS[DistributedExecutor.name] = DistributedExecutor
