"""Pluggable sweep executors: how a sweep's points actually run.

The runner (:mod:`repro.exec.runner`) decides *what* to run -- which
points are pending after the cache is consulted -- and hands the
resulting :class:`PointTask` list to an :class:`Executor`, which decides
*how*: in process, over a worker pool with results pickled through the
pool pipe, over a worker pool with results staged in
``multiprocessing.shared_memory`` segments so only a tiny
``(label, segment name, length, digest)`` descriptor crosses the pipe,
or fanned out to remote worker daemons over the codec-framed wire layer
(:class:`~repro.exec.distributed.DistributedExecutor`, registered on
import of :mod:`repro.exec`).

Because every point's seed is derived from its config and point
functions are pure, the executors are pure mechanism: they return
bit-identical results and leave bit-identical cache entries whichever
one runs a sweep, at any worker count, in any completion order.

Selection: ``run_sweep(executor=...)`` / the ``--executor`` CLI flag
name an entry of :data:`EXECUTORS`; when neither is given, the
``REPRO_EXECUTOR`` environment variable is consulted, and failing that
the runner picks ``serial`` for one worker and ``process-pool``
otherwise (the historical behaviour).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import sys
import time
import traceback
import zlib
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.exec.codec import CodecError, decode_result, encode_result
from repro.obs import tracer as _obs

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

#: Environment variable naming the default executor when the caller
#: does not pass one explicitly (the CI shared-memory job sets it).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: One executor result: ``(task index, success, payload-or-traceback)``.
TaskResult = Tuple[int, bool, Any]


@dataclasses.dataclass(frozen=True)
class PointTask:
    """One unit of executor work: evaluate ``run_point(config, seed)``.

    Carries the point's label so fan-out failures (and shared-memory
    descriptors) stay attributable without a trip back to the spec.
    """

    run_point: Callable[[Dict[str, Any], int], Any]
    index: int
    label: Hashable
    config: Dict[str, Any]
    seed: int


@dataclasses.dataclass
class ExecutorStats:
    """Transport accounting for one :meth:`Executor.run` call.

    ``pipe_bytes`` is what crossed the worker pool's pickle pipe;
    ``payload_bytes`` is the encoded size of the payloads themselves
    (for the shared-memory executor, the bytes that *bypassed* the
    pipe).  Filled in only when the executor was built with
    ``collect_stats=True`` -- measuring the pool pipe requires
    re-serializing results, which is benchmark work, not sweep work.

    The distributed executor additionally fills ``wire_bytes`` (framed
    bytes that crossed worker sockets, headers included) and
    ``retries`` (task re-dispatches after a worker loss), always --
    both are free byproducts of serving the queue.
    """

    points: int = 0
    failures: int = 0
    pipe_bytes: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    retries: int = 0


def default_parallelism(
    task_count: Optional[int] = None,
    remote_slots: Optional[Iterable[int]] = None,
) -> int:
    """Worker count used when the caller asks for ``parallel=0``.

    Clamped to ``task_count`` when known: a four-point sweep on a
    64-core host should fork four workers, not 64 idle ones.

    ``remote_slots`` -- the per-worker slot counts remote daemons
    advertise in their hello/welcome handshake -- replaces the local
    ``cpu_count`` when given: a sweep served by remote workers has
    exactly as much capacity as those workers advertise, which has
    nothing to do with how many cores the *hub* machine happens to
    have.  An empty iterable means no capacity is known yet and
    degrades to one worker.
    """
    if remote_slots is not None:
        workers = max(1, sum(max(0, int(slots)) for slots in remote_slots))
    else:
        workers = max(1, os.cpu_count() or 1)
    if task_count is not None:
        workers = max(1, min(workers, task_count))
    return workers


@dataclasses.dataclass(frozen=True)
class PointTelemetry:
    """Per-point resource telemetry, measured inside the worker.

    ``peak_rss_kb`` is the *process* high-water mark (``ru_maxrss``), so
    under a reused pool worker it is an upper bound for the point, not
    an exact attribution.  ``events`` counts traced events and is zero
    unless the :data:`~repro.obs.tracer.TRACE_ENV` variable is set.
    ``worker`` and ``retries`` attribute a point to the remote worker
    daemon that computed it and count how often it was re-dispatched
    after a worker loss; both stay at their defaults under the local
    executors, where neither concept exists.
    """

    wall_s: float
    peak_rss_kb: int = 0
    events: int = 0
    worker: str = ""
    retries: int = 0


class TelemetryEnvelope:
    """Pairs one result payload with its telemetry for the trip back.

    :meth:`Executor._count` -- the single point every yielded triple
    passes through -- unwraps it, so nothing outside this module ever
    sees an envelope in a result triple.
    """

    __slots__ = ("payload", "telemetry")

    def __init__(self, payload: Any, telemetry: PointTelemetry) -> None:
        self.payload = payload
        self.telemetry = telemetry


def _peak_rss_kb() -> int:
    """The process's peak resident set size in kilobytes (0 if unknown)."""
    if _resource is None:
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


def _evaluate(task: PointTask) -> TaskResult:
    """Evaluate one point; never raises (failures are data).

    Raising inside a pool worker would surface in the parent stripped of
    the point's identity, so failures travel back as
    ``(index, False, traceback text)``.  Success and failure payloads
    alike travel wrapped in a :class:`TelemetryEnvelope` carrying the
    point's wall time and peak RSS; with :data:`~repro.obs.tracer.TRACE_ENV`
    set, the point runs under a fresh tracer and the envelope also
    carries the traced-event count.
    """
    started = time.perf_counter()
    events = 0
    try:
        if _obs.env_trace_requested():
            with _obs.trace_run() as run_tracer:
                payload = task.run_point(task.config, task.seed)
                events = len(run_tracer)
            _obs.env_trace_write(task.label, run_tracer)
        else:
            payload = task.run_point(task.config, task.seed)
    except Exception:
        # KeyboardInterrupt/SystemExit propagate: a user interrupt must
        # abort the sweep, not masquerade as a failed point.
        telemetry = PointTelemetry(
            wall_s=time.perf_counter() - started,
            peak_rss_kb=_peak_rss_kb(), events=events,
        )
        return task.index, False, TelemetryEnvelope(
            traceback.format_exc(), telemetry
        )
    telemetry = PointTelemetry(
        wall_s=time.perf_counter() - started,
        peak_rss_kb=_peak_rss_kb(), events=events,
    )
    return task.index, True, TelemetryEnvelope(payload, telemetry)


def _pool_context():
    """The ``multiprocessing`` context pool executors build on.

    Prefers ``fork`` (cheap, inherits the imported package), then
    ``forkserver``, then ``spawn`` -- an explicit preference order
    rather than whatever the platform default happens to be.
    """
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "forkserver", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()


class Executor:
    """How a list of :class:`PointTask`\\ s is evaluated.

    Subclasses implement :meth:`run`, which yields result triples as
    they become available, in any order (the runner reassembles by
    index).  Streaming matters: the caller consumes each result -- and
    releases its transport resources -- while later points are still
    computing, so peak memory stays flat over a large sweep.
    ``collect_stats=True`` makes :attr:`stats` meaningful once a
    :meth:`run` has been fully consumed.
    """

    #: Registry / CLI name; subclasses override.
    name = "abstract"

    def __init__(self, collect_stats: bool = False):
        self.collect_stats = collect_stats
        self.stats = ExecutorStats()
        #: Canonical codec bytes per task index, for executors whose
        #: transport already produced them; the runner drains this so
        #: cache writes can skip re-encoding (see ResultCache.put_encoded).
        #: Populated only while ``retain_encoded`` is set -- holding
        #: every blob of a cacheless sweep would just be dead weight.
        self.encoded_payloads: Dict[int, bytes] = {}
        self.retain_encoded = False
        #: Per-task-index :class:`PointTelemetry`, filled as results are
        #: consumed; the runner drains this into the run manifest.
        self.telemetry: Dict[int, PointTelemetry] = {}

    def run(self, tasks: List[PointTask], workers: int = 1
            ) -> Iterator[TaskResult]:
        """Evaluate every task; yield one result triple per task."""
        raise NotImplementedError

    def _reset_stats(self, tasks: List[PointTask]) -> None:
        self.stats = ExecutorStats(points=len(tasks))
        self.encoded_payloads = {}
        self.telemetry = {}

    def _count(self, triple: TaskResult) -> TaskResult:
        """Fold one yielded triple into the failure count.

        Also the single telemetry-unwrap point: a payload still wrapped
        in a :class:`TelemetryEnvelope` is recorded and unwrapped here,
        so consumers always see bare payloads.
        """
        index, ok, payload = triple
        if isinstance(payload, TelemetryEnvelope):
            self.telemetry[index] = payload.telemetry
            payload = payload.payload
        if not ok:
            self.stats.failures += 1
        return index, ok, payload


class SerialExecutor(Executor):
    """Evaluate every point in the calling process, in order.

    No serialization happens at all, so ``pipe_bytes`` and
    ``payload_bytes`` stay zero; this is both the one-worker fast path
    and the fallback when process spawning is unavailable.
    """

    name = "serial"

    def run(self, tasks: List[PointTask], workers: int = 1
            ) -> Iterator[TaskResult]:
        """Evaluate tasks in declaration order, in process."""
        self._reset_stats(tasks)
        return self._iterate(tasks)

    def _iterate(self, tasks: List[PointTask]) -> Iterator[TaskResult]:
        for task in tasks:
            yield self._count(_evaluate(task))


class _PoolExecutor(Executor):
    """Shared pool plumbing: context choice, clamping, serial fallback.

    Results stream back through ``imap_unordered`` and are yielded as
    they are collected, so the parent's per-result work (decoding a
    shared-memory segment, writing the cache entry in the runner)
    overlaps the workers still computing -- the same pipelining the
    classic pool gets from unpickling in its result thread -- and no
    more than one undelivered payload is held at a time.
    """

    #: Module-level worker function (must be picklable by reference).
    _worker: Callable[[PointTask], TaskResult] = staticmethod(_evaluate)

    def run(self, tasks: List[PointTask], workers: int = 1
            ) -> Iterator[TaskResult]:
        """Fan tasks out over a worker pool; stream through transport."""
        self._reset_stats(tasks)
        if not tasks:
            return iter(())
        if workers == 0:
            workers = default_parallelism(len(tasks))
        workers = max(1, min(workers, len(tasks)))
        # Only pool *creation* falls back to serial (sandboxes without
        # process-spawn rights); an error after workers exist -- a
        # killed worker, a torn segment -- must surface, not silently
        # recompute everything.
        try:
            pool = _pool_context().Pool(processes=workers)
        except OSError as exc:
            # Determinism makes the serial results identical.  stderr,
            # so rendered tables stay byte-identical regardless.
            print(f"repro.exec: worker pool unavailable ({exc}); "
                  "falling back to serial execution", file=sys.stderr)
            return self._iterate_serial(tasks)
        return self._consume(pool, tasks)

    def _iterate_serial(self, tasks: List[PointTask]
                        ) -> Iterator[TaskResult]:
        for task in tasks:
            yield self._count(_evaluate(task))

    def _consume(self, pool, tasks: List[PointTask]
                 ) -> Iterator[TaskResult]:
        with pool:
            failure: Optional[BaseException] = None
            for triple in pool.imap_unordered(type(self)._worker, tasks):
                if failure is not None:
                    # Keep draining so every staged segment is
                    # released before the error surfaces.
                    self._discard(triple)
                    continue
                try:
                    collected = self._collect_one(triple)
                except CodecError as exc:
                    failure = exc
                    continue
                yield self._count(collected)
            if failure is not None:
                raise failure

    def _collect_one(self, triple: TaskResult) -> TaskResult:
        """Turn one pipe-crossing result back into a result triple."""
        return triple

    def _discard(self, triple: TaskResult) -> None:
        """Release any transport resources of an abandoned result."""


class PicklePipeExecutor(_PoolExecutor):
    """The classic pool: whole payloads pickled through the result pipe.

    This is the historical ``parallel=N`` behaviour, now one pluggable
    mechanism among several.  (Deliberately *not* named after stdlib's
    ``concurrent.futures.ProcessPoolExecutor`` -- the registry name
    ``process-pool`` describes the mechanism, the class name the
    transport.)
    """

    name = "process-pool"

    def _collect_one(self, triple: TaskResult) -> TaskResult:
        """Account for pipe traffic when stats are requested."""
        if self.collect_stats:
            # Re-pickling costs what the pipe cost; only under stats.
            size = len(
                pickle.dumps(triple, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self.stats.pipe_bytes += size
            self.stats.payload_bytes += size
        return triple


@dataclasses.dataclass(frozen=True)
class SegmentRef:
    """What the shared-memory executor sends through the pool pipe.

    The payload itself stays in the named ``multiprocessing``
    shared-memory segment; only this descriptor is pickled.  ``digest``
    (a crc32 of the encoded payload -- transport integrity, not
    cryptography) lets the parent detect a torn or corrupted segment
    before decoding.
    """

    label: Hashable
    segment: Optional[str]
    length: int
    digest: str
    #: Inline fallback used when segment allocation failed in a worker
    #: (e.g. ``/dev/shm`` unavailable); the encoded payload rides the
    #: pipe instead, still codec-framed and digest-checked.
    blob: Optional[bytes] = None
    #: Worker-side telemetry; rides the descriptor (not the segment) so
    #: the parent records it even for results it later fails to decode.
    telemetry: Optional[PointTelemetry] = None


def _payload_digest(blob: bytes) -> str:
    """Digest protecting one encoded payload in transit (crc32)."""
    return f"{zlib.crc32(blob):08x}"


def _evaluate_to_segment(task: PointTask) -> TaskResult:
    """Worker side of the shared-memory transport.

    Encodes the payload with the codec, stages it in a fresh segment,
    and returns only a :class:`SegmentRef`.  Failures (traceback text)
    are small and travel the pipe directly -- including encoding
    failures (e.g. an unpicklable payload member), which must surface
    as attributable point failures, not abort the whole pool.
    """
    from multiprocessing import shared_memory

    index, ok, payload = _evaluate(task)
    if not ok:
        # The failure envelope (traceback + telemetry) is small; it
        # travels the pipe directly and _count unwraps it as usual.
        return index, False, payload
    telemetry = None
    if isinstance(payload, TelemetryEnvelope):
        telemetry, payload = payload.telemetry, payload.payload
    try:
        blob = encode_result(payload)
    except Exception:
        failure = traceback.format_exc()
        if telemetry is not None:
            return index, False, TelemetryEnvelope(failure, telemetry)
        return index, False, failure
    digest = _payload_digest(blob)
    try:
        segment = shared_memory.SharedMemory(create=True, size=len(blob))
    except OSError:
        return index, True, SegmentRef(task.label, None, len(blob),
                                       digest, blob=blob,
                                       telemetry=telemetry)
    try:
        segment.buf[:len(blob)] = blob
        name = segment.name
    finally:
        segment.close()
    return index, True, SegmentRef(task.label, name, len(blob), digest,
                                   telemetry=telemetry)


def _read_segment(ref: SegmentRef) -> bytes:
    """Drain (and unlink) one shared-memory segment in the parent."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=ref.segment)
    try:
        return bytes(segment.buf[:ref.length])
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


class SharedMemoryExecutor(_PoolExecutor):
    """Pool execution with results staged in shared-memory segments.

    Workers codec-encode each payload into a
    ``multiprocessing.shared_memory`` segment and send only the
    ``(label, segment name, length, digest)`` descriptor through the
    pipe; the parent attaches, verifies the digest, decodes, and
    unlinks.  Serialization of the large artifacts thus leaves the
    pool-pipe critical path entirely.
    """

    name = "shared-memory"

    _worker = staticmethod(_evaluate_to_segment)

    def run(self, tasks: List[PointTask], workers: int = 1
            ) -> Iterator[TaskResult]:
        """Fan out over a pool with segments pre-tracked by the parent.

        The resource tracker must exist *before* the pool forks:
        workers then register their segments with the parent's tracker,
        and the parent's ``unlink`` unregisters from that same tracker.
        Otherwise each worker spawns its own tracker, which warns about
        (already-unlinked) "leaked" segments at shutdown.
        """
        if tasks:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except (ImportError, AttributeError, OSError):
                pass  # tracking is best-effort; transport still works
        return super().run(tasks, workers=workers)

    def _collect_one(self, triple: TaskResult) -> TaskResult:
        """Attach, verify and decode one staged result.

        The segment is unlinked as soon as its bytes are drained, so a
        digest or decode failure never leaks it.
        """
        index, ok, payload = triple
        if not ok or not isinstance(payload, SegmentRef):
            return triple
        if payload.segment is None:
            blob = payload.blob
        else:
            try:
                blob = _read_segment(payload)
            except OSError as exc:
                raise CodecError(
                    f"point {payload.label!r}: shared-memory segment "
                    f"{payload.segment!r} unreadable ({exc})"
                )
        if _payload_digest(blob) != payload.digest:
            raise CodecError(
                f"point {payload.label!r}: shared-memory payload "
                f"digest mismatch (segment {payload.segment!r})"
            )
        if self.collect_stats:
            self.stats.pipe_bytes += len(pickle.dumps(
                triple, protocol=pickle.HIGHEST_PROTOCOL,
            ))
            self.stats.payload_bytes += len(blob)
        if self.retain_encoded:
            self.encoded_payloads[index] = blob
        decoded: Any = decode_result(blob)
        if payload.telemetry is not None:
            # Re-wrap so _count stays the single telemetry-unwrap point.
            decoded = TelemetryEnvelope(decoded, payload.telemetry)
        return index, ok, decoded

    def _discard(self, triple: TaskResult) -> None:
        """Unlink an abandoned segment without decoding it."""
        _, ok, payload = triple
        if (ok and isinstance(payload, SegmentRef)
                and payload.segment is not None):
            try:
                _read_segment(payload)
            except OSError:
                pass


#: Registry of selectable executors, keyed by CLI name.
EXECUTORS: Dict[str, type] = {
    SerialExecutor.name: SerialExecutor,
    PicklePipeExecutor.name: PicklePipeExecutor,
    SharedMemoryExecutor.name: SharedMemoryExecutor,
}


def resolve_executor(
    executor: Union[Executor, str, None] = None,
    parallel: int = 1,
) -> Executor:
    """Turn an executor selection into a live :class:`Executor`.

    Precedence: an explicit instance, an explicit registry name, the
    ``REPRO_EXECUTOR`` environment variable, then the parallelism-based
    default (``serial`` for one worker, ``process-pool`` otherwise).
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        executor = os.environ.get(EXECUTOR_ENV) or None
    if executor is None:
        executor = (SerialExecutor.name if parallel <= 1
                    else PicklePipeExecutor.name)
    try:
        factory = EXECUTORS[executor]
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; "
            f"registered: {', '.join(EXECUTORS)}"
        ) from None
    return factory()
