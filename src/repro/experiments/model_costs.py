"""Experiment X4: the cost ladder of object-based coherence models.

Section 3.2.1 orders the models by strength and argues the stronger ones
cost more to implement.  This experiment runs one identical multi-client
workload under every model and measures what each level costs (messages,
latency) and what the weaker levels give up (checker violations against
the stronger models' guarantees).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.coherence import checkers
from repro.coherence.models import CoherenceModel
from repro.exec import SweepSpec, run_sweep
from repro.experiments.harness import ExperimentResult, measure
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    ReplicationPolicy,
    WriteSet,
)
from repro.sim.process import Process
from repro.workload.generator import ReaderWorkload, WriterWorkload
from repro.workload.scenarios import build_tree

PAGES = {f"doc-{i}.html": "seed" for i in range(4)}

#: Strong-to-weak order used in the report.
MODEL_ORDER = [
    CoherenceModel.SEQUENTIAL,
    CoherenceModel.CAUSAL,
    CoherenceModel.PRAM,
    CoherenceModel.FIFO,
    CoherenceModel.EVENTUAL,
]


def run_x4_point(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One X4 point: the full multi-writer workload under one model."""
    model = CoherenceModel(config["model"])
    n_caches = config["n_caches"]
    policy = ReplicationPolicy(
        model=model,
        write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
    )
    deployment = build_tree(
        policy=policy,
        n_caches=n_caches,
        n_readers_per_cache=1,
        pages=dict(PAGES),
        seed=seed,
        designated_writer=None,
    )
    sim = deployment.sim
    rng = sim.rng.fork("x4")
    # Writers bound to caches: under the strong models their writes are
    # forwarded up to the primary (two round trips); eventual accepts
    # them locally at the cache (one) -- the write-latency ladder.
    writers = []
    for index in range(config["n_writers"]):
        browser = deployment.site.bind_browser(
            f"space-writer-{index}",
            f"writer-{index}",
            read_store=deployment.caches[index % n_caches].address,
            write_store=deployment.caches[index % n_caches].address,
        )
        deployment.browsers[f"writer-{index}"] = browser
        writers.append(
            WriterWorkload(
                browser,
                pages=list(PAGES),
                rng=rng.fork(f"writer-{index}"),
                interval=0.8,
                operations=config["writes_per_writer"],
                incremental=(model is not CoherenceModel.FIFO
                             and model is not CoherenceModel.EVENTUAL),
            )
        )
    readers: List[ReaderWorkload] = [
        ReaderWorkload(
            browser,
            pages=list(PAGES),
            rng=rng.fork(name),
            mean_think=0.7,
            operations=config["reads_per_client"],
        )
        for name, browser in deployment.browsers.items()
        if name.startswith("reader")
    ]
    for index, workload in enumerate(writers + readers):
        Process(sim, workload.run(), name=f"x4-{index}")
    sim.run_until_idle()
    sim.run(until=sim.now + 2 * policy.lazy_interval)

    trace = deployment.site.trace
    pram_violations = checkers.check_pram(
        trace, require_gapless=(model in (
            CoherenceModel.SEQUENTIAL, CoherenceModel.CAUSAL,
            CoherenceModel.PRAM,
        )),
    )
    seq_violations = checkers.check_sequential(trace)
    return {
        "metrics": measure(deployment),
        "pram_violations": len(pram_violations),
        "seq_violations": len(seq_violations),
        "dropped": sum(
            engine.ordering.dropped for engine in deployment.engines
        ),
        "converged": content_converged(deployment),
    }


def run_model_costs(
    seed: int = 0,
    writes_per_writer: int = 12,
    n_writers: int = 3,
    n_caches: int = 3,
    reads_per_client: int = 10,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """Measure every model under the same multi-writer workload."""
    result = ExperimentResult(
        name="X4: Coherence-model cost ladder",
        headers=[
            "model", "msgs", "bytes", "mean write lat (s)",
            "mean read lat (s)", "PRAM viol.", "dropped", "converged",
        ],
    )
    spec = SweepSpec(name="x4-model-costs", run_point=run_x4_point,
                     base_seed=seed, paired=True)
    for model in MODEL_ORDER:
        spec.add(
            model.value,
            model=model,
            writes_per_writer=writes_per_writer,
            n_writers=n_writers,
            n_caches=n_caches,
            reads_per_client=reads_per_client,
        )
    measured = run_sweep(spec, parallel=parallel, cache_dir=cache_dir,
                         executor=executor)
    for label, point in measured.items():
        metrics = point["metrics"]
        result.add_row(
            label,
            metrics.traffic.datagrams_sent,
            metrics.traffic.bytes_sent,
            f"{metrics.mean_write_latency:.4f}",
            f"{metrics.mean_read_latency:.4f}",
            point["pram_violations"],
            point["dropped"],
            point["converged"],
        )
    result.data["measured"] = measured
    result.note(
        "Writers are bound to caches: strong models forward writes to the "
        "primary (extra round trip) while eventual accepts them locally.  "
        "FIFO and eventual legitimately drop superseded writes.  "
        "Convergence is content-subset convergence: every page a partial "
        "replica holds (and has not been told is stale) matches the "
        "primary's copy."
    )
    return result


def content_converged(deployment) -> bool:
    """Content-subset convergence against the primary.

    Caches are partial replicas, so full-state equality is the wrong
    test; instead every valid page a store holds must match the primary's
    copy *by content*.  Version counters and last-modified stamps are
    replica-local bookkeeping and excluded.
    """
    reference = deployment.store("server").state()
    for store in deployment.site.stores():
        state = store.state()
        invalid = store.engine.invalid_keys
        for key, page in state.items():
            if key in invalid:
                continue
            if key not in reference:
                return False
            if reference[key]["content"] != page["content"]:
                return False
    return True
