"""Common experiment plumbing: results, rendering, metric collection."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.coherence.trace import TraceRecorder
from repro.metrics.staleness import staleness_summary
from repro.metrics.tables import render_table
from repro.metrics.traffic import TrafficSummary, collect_traffic
from repro.workload.scenarios import Deployment


@dataclasses.dataclass
class ExperimentResult:
    """Rows + free-form measured data for one experiment.

    ``rows``/``headers`` are what the harness prints (the paper-table
    analog); ``data`` carries the raw measurements assertions run against.
    """

    name: str
    headers: List[str]
    rows: List[List[Any]] = dataclasses.field(default_factory=list)
    notes: List[str] = dataclasses.field(default_factory=list)
    data: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        """Append one result row."""
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        """Attach a free-form note printed under the table."""
        self.notes.append(text)

    def render(self) -> str:
        """The printable experiment report."""
        parts = [render_table(self.headers, self.rows, title=self.name)]
        parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)


@dataclasses.dataclass
class RunMetrics:
    """Metrics extracted from one deployment run."""

    traffic: TrafficSummary
    stale_fraction: float
    mean_version_lag: float
    mean_time_lag: float
    mean_read_latency: float
    mean_write_latency: float
    reads: int


def measure(deployment: Deployment,
            trace: Optional[TraceRecorder] = None) -> RunMetrics:
    """Collect the standard metric set from a finished deployment run."""
    trace = trace if trace is not None else deployment.site.trace
    stale = staleness_summary(trace)
    read_latencies: List[float] = []
    write_latencies: List[float] = []
    for browser in deployment.browsers.values():
        for kind, value in browser.bound.replication.op_latencies:
            if kind == "read":
                read_latencies.append(value)
            else:
                write_latencies.append(value)
    return RunMetrics(
        traffic=collect_traffic(deployment.network, deployment.engines),
        stale_fraction=stale.stale_fraction,
        mean_version_lag=stale.version_lag.mean,
        mean_time_lag=stale.time_lag.mean,
        mean_read_latency=(
            sum(read_latencies) / len(read_latencies) if read_latencies else 0.0
        ),
        mean_write_latency=(
            sum(write_latencies) / len(write_latencies)
            if write_latencies else 0.0
        ),
        reads=stale.reads,
    )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, 0.0 for empty input."""
    return sum(values) / len(values) if values else 0.0
