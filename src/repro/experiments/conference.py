"""Experiments F3 and F4: the paper's conference-home-page prototype.

Reproduces Section 4 end to end: the Fig. 3 topology (client M writing
directly to the Web server and reading from cache M with read-your-writes;
client U reading from cache U with no client-based model), the Table 2
policy, and the Fig. 4 protocol mechanics (WiD sequencing, buffered
out-of-order updates, demand-update on RYW misses).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.coherence import checkers
from repro.exec import run_cached_single
from repro.experiments.harness import ExperimentResult, measure
from repro.sim.process import Delay, Process, WaitFor
from repro.workload.scenarios import Deployment, conference_deployment


def _master_script(deployment: Deployment, updates: int,
                   read_back: bool) -> Generator:
    """The web master: incremental updates, verifying each write landed."""
    master = deployment.browsers["master"]
    for index in range(updates):
        yield Delay(1.0)
        yield WaitFor(
            master.append_to_page("program.html", f"<li>talk {index}</li>")
        )
        if read_back:
            # The paper's RYW use case: "he must be able to check whether
            # the write has been done correctly" -- a read via cache M.
            page = yield WaitFor(master.read_page("program.html"))
            assert f"talk {index}" in page["content"], (
                "read-your-writes returned a copy missing the master's own "
                f"update {index}"
            )


def _user_script(deployment: Deployment, reads: int) -> Generator:
    """An interested participant polling the program page."""
    user = deployment.browsers["user"]
    for _ in range(reads):
        yield Delay(1.5)
        yield WaitFor(user.read_page("program.html"))


def _conference_point(config: Dict[str, Any], seed: int) -> ExperimentResult:
    """Cacheable F3 point; scenario parameters ride in the config."""
    del seed
    return _conference(**config)


def run_conference(
    seed: int = 0,
    updates: int = 10,
    reads: int = 12,
    lazy_interval: float = 5.0,
    read_back: bool = True,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """Run the prototype scenario and validate its coherence claims."""
    return run_cached_single(
        "f3-conference", _conference_point,
        {"seed": seed, "updates": updates, "reads": reads,
         "lazy_interval": lazy_interval, "read_back": read_back},
        cache_dir=cache_dir, executor=executor,
    )


def _conference(
    seed: int,
    updates: int,
    reads: int,
    lazy_interval: float,
    read_back: bool,
) -> ExperimentResult:
    deployment = conference_deployment(seed=seed, lazy_interval=lazy_interval)
    sim = deployment.sim
    Process(sim, _master_script(deployment, updates, read_back), "master")
    Process(sim, _user_script(deployment, reads), "user")
    sim.run_until_idle()
    # Let the final lazy push drain so caches converge.
    sim.run(until=sim.now + 2 * lazy_interval)

    trace = deployment.site.trace
    pram = checkers.check_pram(trace)
    ryw = checkers.check_read_your_writes(trace, clients=["master"])
    metrics = measure(deployment)
    cache_m = deployment.store("cache-0").engine
    cache_u = deployment.store("cache-1").engine

    result = ExperimentResult(
        name="F3/F4: Conference home page under PRAM + Read-Your-Writes",
        headers=["Measure", "Value"],
    )
    result.add_row("master updates", updates)
    result.add_row("user reads", reads)
    result.add_row("PRAM violations (all stores)", len(pram))
    result.add_row("RYW violations (master)", len(ryw))
    result.add_row("demand-updates from cache M", cache_m.counters["tx:demand"])
    result.add_row("demand-updates from cache U", cache_u.counters["tx:demand"])
    result.add_row("push updates received by cache M",
                   cache_m.counters["rx:update"])
    result.add_row("push updates received by cache U",
                   cache_u.counters["rx:update"])
    result.add_row("coherence messages", metrics.traffic.coherence_messages)
    result.add_row("stale read fraction", f"{metrics.stale_fraction:.3f}")
    server_state = deployment.store("server").state()
    result.add_row(
        "final program.html version",
        server_state["program.html"]["version"],
    )
    result.data.update(
        pram_violations=pram,
        ryw_violations=ryw,
        demand_from_cache_m=cache_m.counters["tx:demand"],
        demand_from_cache_u=cache_u.counters["tx:demand"],
        metrics=metrics,
        converged=_converged(deployment),
    )
    result.note(
        "RYW is enforced at cache M via demand-update; cache U, with no "
        "client-based model, waits for periodic pushes (Table 2: "
        "object-outdate reaction 'wait', client-outdate reaction 'demand')."
    )
    return result


def _converged(deployment: Deployment) -> bool:
    """Content convergence against the server.

    Local version counters and last-modified stamps are replica-local
    bookkeeping; convergence means every page a store holds carries the
    server's content.
    """
    states = deployment.site.store_states()
    reference = states["server"]
    for state in states.values():
        for name, page in state.items():
            if name not in reference:
                return False
            if page["content"] != reference[name]["content"]:
                return False
    return True


def _fig4_point(config: Dict[str, Any], seed: int) -> ExperimentResult:
    """Cacheable F4 point; the scenario seed rides in the config."""
    del seed
    return _fig4_wid_flow(seed=config["seed"])


def run_fig4_wid_flow(seed: int = 0,
                      cache_dir: Optional[str] = None,
                      executor: Optional[str] = None) -> ExperimentResult:
    """Trace the Fig. 4 mechanics explicitly: WiDs and expected-write state.

    Issues three incremental writes, captures the per-store expected-write
    vectors after each propagation round, and verifies the buffered
    out-of-order path by checking the final vectors agree.
    """
    return run_cached_single("f4-wid-flow", _fig4_point, {"seed": seed},
                             cache_dir=cache_dir, executor=executor)


def _fig4_wid_flow(seed: int) -> ExperimentResult:
    deployment = conference_deployment(seed=seed, lazy_interval=2.0)
    sim = deployment.sim
    master = deployment.browsers["master"]
    vectors: List[tuple] = []

    def script() -> Generator:
        for index in range(3):
            yield WaitFor(master.append_to_page("index.html", f"<p>{index}</p>"))
            yield Delay(2.5)  # beyond the lazy interval: push lands
            vectors.append(
                (
                    deployment.store("server").version().get("master", 0),
                    deployment.store("cache-0").version().get("master", 0),
                    deployment.store("cache-1").version().get("master", 0),
                )
            )

    Process(sim, script(), "fig4")
    sim.run_until_idle()
    sim.run(until=sim.now + 5.0)

    result = ExperimentResult(
        name="F4: WiD flow and expected-write vectors",
        headers=["After write #", "server expects", "cache M expects",
                 "cache U expects"],
    )
    for index, (server_v, cm, cu) in enumerate(vectors, start=1):
        result.add_row(index, server_v, cm, cu)
    result.data["vectors"] = vectors
    result.data["pram_violations"] = checkers.check_pram(deployment.site.trace)
    return result
