"""Experiments F1 and F2: the paper's architecture figures, executable.

- **F1** (Fig. 1): one distributed shared object spanning four address
  spaces, each hosting a local object composed of the four sub-objects;
  verified structurally and by exercising an invocation through each
  composition.
- **F2** (Fig. 2): the layered store system model -- permanent,
  object-initiated and client-initiated stores -- with the object model
  enforced down to the store-scope layer and eventual coherence below it,
  measured as per-layer staleness.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.coherence.models import CoherenceModel
from repro.core.interfaces import Role
from repro.exec import run_cached_single
from repro.experiments.harness import ExperimentResult
from repro.metrics.staleness import staleness_summary
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    ReplicationPolicy,
    StoreScope,
    TransferInstant,
)
from repro.sim.process import Delay, Process, WaitFor
from repro.stores.hierarchy import describe_hierarchy
from repro.workload.scenarios import build_tree


def _fig1_point(config: Dict[str, Any], seed: int) -> ExperimentResult:
    """Cacheable F1 point; the scenario seed rides in the config."""
    del seed
    return _fig1(seed=config["seed"])


def run_fig1(seed: int = 0,
             cache_dir: Optional[str] = None,
             executor: Optional[str] = None) -> ExperimentResult:
    """F1: one Web object distributed across four address spaces."""
    return run_cached_single("f1-architecture", _fig1_point,
                             {"seed": seed}, cache_dir=cache_dir,
                             executor=executor)


def _fig1(seed: int) -> ExperimentResult:
    deployment = build_tree(
        policy=ReplicationPolicy(),
        n_mirrors=1,
        n_caches=1,
        n_readers_per_cache=1,
        seed=seed,
    )
    sim = deployment.sim
    site = deployment.site

    def script() -> Generator:
        master = deployment.browsers["master"]
        reader = deployment.browsers["reader-0-0"]
        yield WaitFor(master.write_page("index.html", "<h1>fig1</h1>"))
        yield Delay(1.0)
        page = yield WaitFor(reader.read_page("index.html"))
        assert page["content"] == "<h1>fig1</h1>"

    Process(sim, script(), "fig1")
    sim.run_until_idle()

    result = ExperimentResult(
        name="F1: One object distributed across four address spaces",
        headers=["address space", "role", "semantics", "replication",
                 "communication", "control"],
    )
    spaces = list(site.dso.stores.values()) + [
        c.local for c in site.dso.clients
    ]
    for entry in spaces:
        local = entry.local if hasattr(entry, "local") else entry
        result.add_row(
            local.address,
            local.role.value,
            type(local.semantics).__name__ if local.semantics else "-",
            type(local.replication).__name__,
            type(local.comm).__name__,
            type(local.control).__name__,
        )
    result.data["n_spaces"] = len(spaces)
    result.data["store_roles"] = sorted(
        store.role.value for store in site.dso.stores.values()
    )
    result.note(
        "Store address spaces hold the full four-component composition; "
        "pure clients hold no semantics object and translate method calls "
        "to messages, exactly as in Fig. 1."
    )
    return result


def _fig2_point(config: Dict[str, Any], seed: int) -> ExperimentResult:
    """Cacheable F2 point; scenario parameters ride in the config."""
    del seed
    return _fig2(
        seed=config["seed"],
        scope=StoreScope(config["scope"]),
        writes=config["writes"],
    )


def run_fig2(
    seed: int = 0,
    scope: StoreScope = StoreScope.PERMANENT_AND_OBJECT_INITIATED,
    writes: int = 12,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """F2: layered stores; guarantee weakening below the scope layer."""
    return run_cached_single(
        "f2-store-layers", _fig2_point,
        {"seed": seed, "scope": scope, "writes": writes},
        cache_dir=cache_dir, executor=executor,
    )


def _fig2(seed: int, scope: StoreScope, writes: int) -> ExperimentResult:
    policy = ReplicationPolicy(
        model=CoherenceModel.PRAM,
        store_scope=scope,
        transfer_instant=TransferInstant.LAZY,
        lazy_interval=3.0,
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
    )
    deployment = build_tree(
        policy=policy,
        n_mirrors=2,
        n_caches=4,
        n_readers_per_cache=1,
        seed=seed,
    )
    sim = deployment.sim
    # Readers at the upper layers too, so per-layer staleness is populated.
    for store_address in ("server", "mirror-0", "mirror-1"):
        client_id = f"reader-at-{store_address}"
        deployment.browsers[client_id] = deployment.site.bind_browser(
            f"space-{client_id}", client_id, read_store=store_address,
        )

    def master_script() -> Generator:
        master = deployment.browsers["master"]
        for index in range(writes):
            yield Delay(0.8)
            yield WaitFor(
                master.append_to_page("index.html", f"<li>{index}</li>")
            )

    def reader_script(name: str) -> Generator:
        browser = deployment.browsers[name]
        for _ in range(10):
            yield Delay(1.1)
            try:
                yield WaitFor(browser.read_page("index.html"))
            except Exception:
                pass

    Process(sim, master_script(), "master")
    for name in list(deployment.browsers):
        if name.startswith("reader"):
            Process(sim, reader_script(name), name)
    sim.run_until_idle()
    sim.run(until=sim.now + 2 * policy.lazy_interval)

    view = describe_hierarchy(deployment.site.dso)
    trace = deployment.site.trace
    result = ExperimentResult(
        name="F2: Layered store system model",
        headers=["layer", "stores", "model enforced", "stale read fraction",
                 "mean time lag (s)"],
    )
    layer_stats = {}
    for role in (Role.PERMANENT, Role.OBJECT_INITIATED, Role.CLIENT_INITIATED):
        infos = view.layer(role)
        if not infos:
            continue
        addresses = [info.address for info in infos]
        stale = staleness_summary(trace, stores=addresses)
        enforced = all(info.enforced for info in infos)
        layer_stats[role.value] = {
            "stores": addresses,
            "enforced": enforced,
            "stale_fraction": stale.stale_fraction,
            "time_lag": stale.time_lag.mean,
        }
        result.add_row(
            role.value,
            ", ".join(addresses),
            policy.model.value if enforced else "eventual (weakened)",
            f"{stale.stale_fraction:.3f}" if stale.reads else "n/a",
            f"{stale.time_lag.mean:.3f}" if stale.reads else "n/a",
        )
    result.data["layers"] = layer_stats
    result.data["hierarchy"] = view
    result.data["scope"] = scope.value
    result.note(
        "The store-scope parameter bounds the layers that enforce the "
        "object model; client-initiated stores below it run eventual "
        "coherence -- 'weaker coherence, but perhaps offering the benefit "
        "of higher performance'."
    )
    return result
