"""Experiment X3: per-object strategies vs one global caching strategy.

The paper's central claim (Section 1): "it would be better to use
different caching and replication strategies for different Web pages,
depending on their characteristics".  This experiment runs three documents
with deliberately different characteristics

- a **personal home page**: one writer, a handful of readers, updated
  occasionally (best served by invalidation + fetch-on-demand);
- a **popular event page**: one master updating incrementally, many
  readers (best served by pushed partial updates -- the conference
  policy);
- a **shared bibliography**: several writers appending records, moderate
  readership (needs PRAM ordering, pushed updates);

under (a) the framework with a per-object policy each, and (b) the
classical single global strategies: validation caching, TTL caching, and
no caching.  Metrics: origin load, staleness, read latency.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Generator, List, Optional, Tuple

from repro.baselines.browser import HttpBrowser
from repro.baselines.origin import HttpOrigin
from repro.baselines.proxy import CacheMode, HttpProxy
from repro.coherence.models import CoherenceModel, SessionGuarantee
from repro.exec import SweepSpec, run_sweep
from repro.experiments.harness import ExperimentResult, mean
from repro.metrics.staleness import staleness_summary
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    OutdateReaction,
    Propagation,
    ReplicationPolicy,
    TransferInstant,
    WriteSet,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Delay, Process, WaitFor
from repro.web.webobject import WebObject


@dataclasses.dataclass(frozen=True)
class DocumentSpec:
    """Characteristics of one document in the mixed workload."""

    name: str
    pages: Dict[str, str]
    n_readers: int
    reads_per_reader: int
    read_think: float
    n_writers: int
    writes_per_writer: int
    write_interval: float
    incremental: bool


SPECS: List[DocumentSpec] = [
    DocumentSpec(
        name="home",
        pages={"me.html": "<h1>about me</h1>" + "h" * 512},
        n_readers=2, reads_per_reader=4, read_think=4.0,
        n_writers=1, writes_per_writer=2, write_interval=10.0,
        incremental=False,
    ),
    DocumentSpec(
        name="event",
        pages={"news.html": "<h1>event</h1>" + "e" * 512},
        n_readers=8, reads_per_reader=8, read_think=1.0,
        n_writers=1, writes_per_writer=8, write_interval=2.0,
        incremental=True,
    ),
    DocumentSpec(
        name="biblio",
        pages={"refs.html": "<h1>bibliography</h1>" + "b" * 512},
        n_readers=3, reads_per_reader=6, read_think=2.0,
        n_writers=2, writes_per_writer=5, write_interval=3.0,
        incremental=True,
    ),
]


def per_object_policy(spec: DocumentSpec) -> ReplicationPolicy:
    """The per-object strategy the framework assigns each document."""
    if spec.name == "home":
        # Rarely read: invalidate and refetch on demand; no pushes of
        # content nobody is reading.
        return ReplicationPolicy(
            model=CoherenceModel.FIFO,
            propagation=Propagation.INVALIDATE,
            coherence_transfer=CoherenceTransfer.PARTIAL,
            access_transfer=AccessTransfer.PARTIAL,
            object_outdate_reaction=OutdateReaction.WAIT,
        )
    if spec.name == "event":
        # Hot and incrementally updated: the conference policy -- pushed,
        # aggregated partial updates.
        policy = ReplicationPolicy.conference_example()
        policy.lazy_interval = 2.0
        return policy
    # biblio: multi-writer incremental updates need PRAM ordering with
    # immediate pushes.
    return ReplicationPolicy(
        model=CoherenceModel.PRAM,
        write_set=WriteSet.MULTIPLE,
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
        transfer_instant=TransferInstant.IMMEDIATE,
    )


# --------------------------------------------------------------------------
# framework side
# --------------------------------------------------------------------------


def _framework_run(seed: int) -> Tuple[float, float, float]:
    """Run the mixed workload on per-object policies.

    Returns (origin messages, stale read fraction, mean read latency).
    """
    sim = Simulator(seed=seed)
    network = Network(sim, latency=ConstantLatency(0.05))
    sites: Dict[str, WebObject] = {}
    total_reads = 0
    for spec in SPECS:
        site = WebObject(
            sim, network,
            policy=per_object_policy(spec),
            pages=dict(spec.pages),
            object_id=f"obj-{spec.name}",
            designated_writer=None,
        )
        site.create_server(f"server-{spec.name}")
        site.create_cache(f"cache-{spec.name}", parent=f"server-{spec.name}")
        sites[spec.name] = site

    def reader_script(site: WebObject, spec: DocumentSpec, index: int) -> Generator:
        browser = site.bind_browser(
            f"space-{spec.name}-r{index}", f"{spec.name}-reader-{index}",
            read_store=f"cache-{spec.name}",
        )
        rng = sim.rng.fork(f"{spec.name}-r{index}")
        page = next(iter(spec.pages))
        for _ in range(spec.reads_per_reader):
            yield Delay(rng.exponential(spec.read_think))
            yield WaitFor(browser.read_page(page))

    def writer_script(site: WebObject, spec: DocumentSpec, index: int) -> Generator:
        browser = site.bind_browser(
            f"space-{spec.name}-w{index}", f"{spec.name}-writer-{index}",
            read_store=f"cache-{spec.name}",
            write_store=f"server-{spec.name}",
            guarantees=(SessionGuarantee.READ_YOUR_WRITES,),
        )
        rng = sim.rng.fork(f"{spec.name}-w{index}")
        page = next(iter(spec.pages))
        for op in range(spec.writes_per_writer):
            yield Delay(rng.exponential(spec.write_interval))
            if spec.incremental:
                yield WaitFor(browser.append_to_page(page, f"<li>{index}/{op}</li>"))
            else:
                yield WaitFor(browser.write_page(page, f"<h1>rev {op}</h1>" + "h" * 512))

    for spec in SPECS:
        site = sites[spec.name]
        for index in range(spec.n_readers):
            Process(sim, reader_script(site, spec, index),
                    f"{spec.name}-reader-{index}")
            total_reads += spec.reads_per_reader
        for index in range(spec.n_writers):
            Process(sim, writer_script(site, spec, index),
                    f"{spec.name}-writer-{index}")
    sim.run_until_idle()
    sim.run(until=sim.now + 10.0)

    origin_messages = sum(
        sum(count for kind, count in
            sites[spec.name].dso.stores[f"server-{spec.name}"].engine.counters.items()
            if kind.startswith("rx:"))
        for spec in SPECS
    )
    stale_fractions = []
    latencies: List[float] = []
    for spec in SPECS:
        site = sites[spec.name]
        summary = staleness_summary(site.trace)
        if summary.reads:
            stale_fractions.append(summary.stale_fraction)
        for client in site.dso.clients:
            for kind, value in client.replication.op_latencies:
                if kind == "read":
                    latencies.append(value)
    return float(origin_messages), mean(stale_fractions), mean(latencies)


# --------------------------------------------------------------------------
# baseline side
# --------------------------------------------------------------------------


def _baseline_run(seed: int, mode: CacheMode, ttl: float = 8.0
                  ) -> Tuple[float, float, float]:
    """Run the same logical workload on a single global caching strategy."""
    sim = Simulator(seed=seed)
    network = Network(sim, latency=ConstantLatency(0.05))
    all_pages: Dict[str, str] = {}
    for spec in SPECS:
        all_pages.update(spec.pages)
    origin = HttpOrigin(sim, network, "origin", pages=all_pages)
    proxy = HttpProxy(sim, network, "proxy", upstream="origin",
                      mode=mode, ttl=ttl)
    stale_reads = 0
    total_reads = 0
    latencies: List[float] = []

    def reader_script(spec: DocumentSpec, index: int) -> Generator:
        nonlocal stale_reads, total_reads
        browser = HttpBrowser(sim, network, f"b-{spec.name}-r{index}", "proxy")
        rng = sim.rng.fork(f"{spec.name}-r{index}")
        page = next(iter(spec.pages))
        for _ in range(spec.reads_per_reader):
            yield Delay(rng.exponential(spec.read_think))
            fetched = yield WaitFor(browser.get(page))
            total_reads += 1
            latencies.append(fetched.latency)
            if fetched.version < origin.current_version(page):
                stale_reads += 1

    def writer_script(spec: DocumentSpec, index: int) -> Generator:
        browser = HttpBrowser(sim, network, f"b-{spec.name}-w{index}", "origin")
        rng = sim.rng.fork(f"{spec.name}-w{index}")
        page = next(iter(spec.pages))
        for op in range(spec.writes_per_writer):
            yield Delay(rng.exponential(spec.write_interval))
            if spec.incremental:
                yield WaitFor(browser.put(page, f"<li>{index}/{op}</li>",
                                          append=True))
            else:
                yield WaitFor(browser.put(page, f"<h1>rev {op}</h1>" + "h" * 512))

    for spec in SPECS:
        for index in range(spec.n_readers):
            Process(sim, reader_script(spec, index), f"r-{spec.name}-{index}")
        for index in range(spec.n_writers):
            Process(sim, writer_script(spec, index), f"w-{spec.name}-{index}")
    sim.run_until_idle()

    origin_messages = float(
        origin.counters["get"] + origin.counters["put"]
    )
    stale_fraction = stale_reads / total_reads if total_reads else 0.0
    return origin_messages, stale_fraction, mean(latencies)


def run_x3_point(config: Dict[str, object], seed: int
                 ) -> Tuple[float, float, float]:
    """One X3 point: the framework or one global caching baseline."""
    if config["strategy"] == "framework":
        return _framework_run(seed)
    return _baseline_run(seed, CacheMode(config["mode"]),
                         ttl=config["ttl"])


def run_per_object(seed: int = 0, parallel: int = 1,
                   cache_dir: Optional[str] = None,
                   executor: Optional[str] = None) -> ExperimentResult:
    """X3: compare per-object policies against each global strategy."""
    result = ExperimentResult(
        name="X3: Per-object strategies vs a single global strategy",
        headers=[
            "strategy", "origin messages", "stale read fraction",
            "mean read latency (s)",
        ],
    )
    spec = SweepSpec(name="x3-per-object", run_point=run_x3_point,
                     base_seed=seed, paired=True)
    spec.add("per-object (framework)", strategy="framework")
    for label, mode in (
        ("global validation", CacheMode.VALIDATE),
        ("global TTL (8s)", CacheMode.TTL),
        ("no caching", CacheMode.NONE),
    ):
        spec.add(label, strategy="baseline", mode=mode, ttl=8.0)
    measured = run_sweep(spec, parallel=parallel, cache_dir=cache_dir,
                         executor=executor)
    for label, run in measured.items():
        result.add_row(label, int(run[0]), f"{run[1]:.3f}", f"{run[2]:.4f}")
    result.data["measured"] = measured
    result.note(
        "Validation and no-caching are fresh but hammer the origin and pay "
        "a wide-area round trip per read; TTL relieves the origin but "
        "serves stale pages.  Per-object policies push hot content and "
        "invalidate cold content, getting the best of both."
    )
    return result
