"""Experiments X11 and X12: fault scenarios as a first-class axis.

X11 runs a fault grid (strategy x fault plan x tree size) through the
cached runner and summarizes the partition-aware metrics; the full
per-metric tables and heat maps are rendered by
``python -m repro.report --grid x11-faults``, sharing cache entries.

X12 is the live-backend fault soak smoke: the scripted
partition/heal/crash/restart scenario of :mod:`repro.faults.scenario`
executed on all three substrates (sim, live threads, live sockets --
where the crash is a real SIGKILL), comparing time-free coherence
signatures -- the fault-layer analog of X9's portability claim.  The CI
job wraps it in a wall-clock timeout so a hung heal fails fast.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import ExperimentResult
from repro.faults.scenario import run_fault_soak as execute_fault_soak
from repro.report.aggregate import aggregate
from repro.report.grid import get_grid, run_grid


def run_fault_grid(
    grid: str = "x11-faults",
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """X11: run a fault grid and summarize it per (strategy, fault plan).

    The summary shows each cell at the grid's largest tree size; cache
    entries are shared with ``python -m repro.report --grid``.
    """
    grid_def = get_grid(grid)
    if not grid_def.is_fault_grid:
        raise ValueError(f"{grid!r} is not a fault grid")
    results = run_grid(grid_def, parallel=parallel, cache_dir=cache_dir,
                       executor=executor)
    tables = aggregate(grid_def, results)
    largest = max(grid_def.sizes)
    result = ExperimentResult(
        name=(
            f"X11: Fault grid ({grid_def.name}, "
            f"{grid_def.point_count()} points; at {largest} caches)"
        ),
        headers=[
            "strategy", "fault plan", "unavailable", "stale under part (s)",
            "recovery lag (s)", "stale fraction",
        ],
    )
    for protocol in grid_def.protocols:
        for plan in grid_def.fault_plans:
            col = (plan, largest)
            result.add_row(
                protocol,
                plan,
                f"{tables['unavailable_fraction'].cell(protocol, col).mean:.3f}",
                f"{tables['partition_stale_lag'].cell(protocol, col).mean:.3f}",
                f"{tables['recovery_lag'].cell(protocol, col).mean:.3f}",
                f"{tables['stale_fraction'].cell(protocol, col).mean:.3f}",
            )
    result.data["grid"] = grid_def.name
    result.data["measured"] = results
    result.note(
        "Fault plans are declarative (repro.faults.catalog) and run "
        "identically on the sim and live transports; the workload is "
        f"fixed at {grid_def.workloads[0]!r}.  Full tables: "
        f"python -m repro.report --grid {grid_def.name}."
    )
    return result


def run_fault_soak(
    seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """X12: fault soak smoke -- one fault plan, three substrates, same behaviour.

    Runs the scripted partition/heal/crash/restart scenario on the
    deterministic simulator, on the wall-clock thread runtime, and on
    the multi-process socket runtime (where CrashNode SIGKILLs a real
    node process and RestartNode re-spawns it from its checkpoint)
    through the sweep runner, then compares the time-free coherence
    signatures.
    """
    measured = execute_fault_soak(
        backends=("sim", "live", "live-socket"), seed=seed,
        parallel=parallel, cache_dir=cache_dir, executor=executor,
    )
    result = ExperimentResult(
        name="X12: Fault soak smoke -- the same fault plan in virtual and "
             "wall-clock time",
        headers=["backend", "stale under cut", "unavailable reads",
                 "demand refresh", "recovered", "dropped (crash)",
                 "signature"],
    )
    reference = measured["sim"]["signature"]
    for label, point in measured.items():
        recovered = (
            point["recovered_after_heal"]
            and point["recovered_after_restart"]
        )
        result.add_row(
            label,
            "yes" if point["stale_read_under_partition"] else "NO",
            point["unavailable_reads"],
            "yes" if point["demand_refresh_ok"] else "NO",
            "yes" if recovered else "NO",
            point["dropped_crashed"],
            "= sim" if point["signature"] == reference else "DIVERGED",
        )
    result.data["measured"] = measured
    result.data["parity"] = all(
        point["signature"] == reference for point in measured.values()
    )
    result.note(
        "The plan (partition 2s -> heal, one crash/restart) is applied "
        "at convergence barriers via FaultInjector.step, so both "
        "substrates make identical protocol decisions; the signature "
        "column compares the time-free coherence histories."
    )
    return result
