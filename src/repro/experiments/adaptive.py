"""Experiment X8 (paper §5 future work): self-adaptive policies.

A magazine-like object lives through two phases: an *editing* phase
(writes dominate, few reads) and a *publication* phase (reads dominate,
occasional corrections).  A static policy must pick one point in the
Table-1 space for both phases; the adaptive controller retunes propagation
(update vs invalidate) and transfer instant (immediate vs lazy) as the
mix shifts.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.exec import SweepSpec, run_sweep
from repro.experiments.harness import ExperimentResult, measure
from repro.replication.adaptive import AdaptiveConfig, AdaptivePolicyController
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    ReplicationPolicy,
)
from repro.sim.process import Delay, Process, WaitFor
from repro.workload.scenarios import Deployment, build_tree

PAGE = "issue.html"


def _editor(deployment: Deployment, edits: int) -> Generator:
    master = deployment.browsers["master"]
    for index in range(edits):
        yield Delay(0.4)
        yield WaitFor(master.append_to_page(PAGE, f"<p>draft {index}</p>"))


def _audience(deployment: Deployment, name: str, start: float,
              reads: int) -> Generator:
    browser = deployment.browsers[name]
    yield Delay(start)
    for _ in range(reads):
        yield Delay(0.8)
        try:
            yield WaitFor(browser.read_page(PAGE))
        except Exception:
            pass


def _run(seed: int, adaptive: bool, edits: int, reads: int,
         n_caches: int) -> Tuple[Deployment, Optional[list]]:
    policy = ReplicationPolicy(
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
        lazy_interval=2.0,
    )
    deployment = build_tree(
        policy=policy, n_caches=n_caches, n_readers_per_cache=1,
        pages={PAGE: "<h1>magazine</h1>"}, seed=seed,
    )
    sim = deployment.sim
    events = None
    if adaptive:
        controller = AdaptivePolicyController(
            policy=policy,
            primary=deployment.server.engine,
            schedule=lambda delay, fn, daemon=False: sim.schedule(
                delay, fn, daemon=daemon),
            now=lambda: sim.now,
            config=AdaptiveConfig(interval=2.0, lazy_at_writes=4),
            observers=deployment.engines,
        )
        controller.start()
        events = controller.events
    # Phase 1: editing burst, no audience yet.
    Process(sim, _editor(deployment, edits), "editor")
    # Phase 2: the audience arrives once editing winds down.
    publication_time = edits * 0.4 + 2.0
    for name in list(deployment.browsers):
        if name.startswith("reader"):
            Process(sim, _audience(deployment, name, publication_time, reads),
                    name)
    sim.run_until_idle()
    sim.run(until=sim.now + 2 * policy.lazy_interval + 1.0)
    return deployment, events


def run_x8_point(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One X8 point: the two-phase workload, static or adaptive."""
    deployment, events = _run(
        seed, config["adaptive"], config["edits"], config["reads"],
        config["n_caches"],
    )
    return {"metrics": measure(deployment), "events": events or []}


def run_adaptive(seed: int = 0, edits: int = 20, reads: int = 10,
                 n_caches: int = 4, parallel: int = 1,
                 cache_dir: Optional[str] = None,
                 executor: Optional[str] = None) -> ExperimentResult:
    """X8: static policy vs the self-adaptive controller."""
    result = ExperimentResult(
        name="X8: Self-adaptive policies (paper §5 future work)",
        headers=["variant", "bytes on wire", "coherence msgs",
                 "stale read fraction", "mean read latency (s)",
                 "adaptations"],
    )
    spec = SweepSpec(name="x8-adaptive", run_point=run_x8_point,
                     base_seed=seed, paired=True)
    for label, adaptive in (("static (update/immediate)", False),
                            ("adaptive", True)):
        spec.add(label, adaptive=adaptive, edits=edits, reads=reads,
                 n_caches=n_caches)
    measured = run_sweep(spec, parallel=parallel, cache_dir=cache_dir,
                         executor=executor)
    for label, point in measured.items():
        metrics = point["metrics"]
        result.add_row(
            label,
            metrics.traffic.bytes_sent,
            metrics.traffic.coherence_messages,
            f"{metrics.stale_fraction:.3f}",
            f"{metrics.mean_read_latency:.4f}",
            len(point["events"]),
        )
    result.data["measured"] = measured
    adaptations = measured["adaptive"]["events"]
    if adaptations:
        for event in adaptations:
            result.note(
                f"t={event.time:.1f}s: {event.parameter} "
                f"{event.old} -> {event.new} "
                f"(window: {event.reads} reads / {event.writes} writes)"
            )
    result.note(
        "During the editing burst the controller switches to lazy "
        "aggregation (and, if reads stay rare, invalidation); when the "
        "audience arrives it returns to immediate updates."
    )
    return result
