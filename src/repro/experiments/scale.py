"""Experiment X13: the scale matrix -- schedulers and cohorts at work.

Drives one read-heavy Fig. 2 scenario across the simulation core's scale
knobs (``scheduler="heap"|"calendar"``, per-client vs cohorted readers)
at a configurable population, reporting clients-simulated/sec and
events/sec per configuration plus the weighted-metrics sanity row: the
cohorted run must account for exactly as many client reads as its
population.  This is the in-tree, cached companion to
``benchmarks/bench_sim.py`` (which adds subprocess RSS isolation and the
raw queue microbenchmark and writes ``BENCH_sim.json``).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.experiments.harness import ExperimentResult
from repro.metrics.staleness import staleness_summary
from repro.replication.policy import ReplicationPolicy
from repro.workload.profiles import WorkloadProfile, run_profile

#: The X13 traffic mix: a few master writes under a large reader fan-out.
SCALE_PROFILE = WorkloadProfile(
    name="scale",
    writes=5,
    reads_per_client=3,
    write_interval=2.0,
    read_think=1.0,
)


def run_scale(
    seed: int = 7,
    n_caches: int = 8,
    readers_per_cache: int = 50,
    cohort_size: int = 50,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """X13: scheduler x cohort scale matrix (defaults: 400 clients)."""
    del cache_dir  # timing experiment: caching wall-clock runs is wrong
    population = n_caches * readers_per_cache
    result = ExperimentResult(
        name="X13: Simulation-core scale matrix -- "
             f"{population} clients, scheduler x cohort",
        headers=["configuration", "processes", "events", "seconds",
                 "clients/sec", "weighted reads"],
    )
    expected_reads = population * SCALE_PROFILE.reads_per_client
    rates = {}
    for scheduler in ("heap", "calendar"):
        for cohort in (1, cohort_size):
            label = (
                f"{scheduler}+"
                f"{'cohort' if cohort > 1 else 'per-client'}"
            )
            started = time.perf_counter()
            deployment = run_profile(
                ReplicationPolicy.conference_example(),
                SCALE_PROFILE,
                n_caches=n_caches,
                seed=seed,
                n_readers_per_cache=readers_per_cache,
                cohort_size=cohort,
                scheduler=scheduler,
            )
            elapsed = time.perf_counter() - started
            reads = staleness_summary(deployment.site.trace).reads
            rates[label] = population / elapsed
            result.add_row(
                label,
                1 + (len(deployment.cohorts) or population),
                deployment.sim.events_fired,
                round(elapsed, 3),
                round(rates[label], 1),
                f"{reads} ({'ok' if reads == expected_reads else 'MISSING'})",
            )
    result.data["population"] = population
    result.data["speedup"] = round(
        rates["calendar+cohort"] / rates["heap+per-client"], 2
    )
    result.note(
        f"calendar+cohort vs heap+per-client: "
        f"{result.data['speedup']}x clients/sec.  Every configuration "
        f"accounts for the same {expected_reads} weighted client reads; "
        f"the committed BENCH_sim.json tracks the 10^4-client version of "
        f"this matrix."
    )
    return result
