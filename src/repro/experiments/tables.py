"""Experiments T1 and T2: regenerate the paper's two tables.

Table 1 (implementation parameters) is rendered straight from the policy
enums, so the rendered table cannot drift from what the engine actually
implements.  Table 2 (the conference example's strategy) is rendered from
the :meth:`ReplicationPolicy.conference_example` policy object and then
*validated*: the policy is run and its claimed properties are checked.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.exec import run_cached_single
from repro.experiments.harness import ExperimentResult
from repro.replication.policy import TABLE1_ROWS, ReplicationPolicy


def _table1_point(config: Dict[str, Any], seed: int) -> ExperimentResult:
    """Cacheable T1 point (parameter-free; the derived seed is unused)."""
    del config, seed
    return _table1()


def run_table1(cache_dir: Optional[str] = None,
               executor: Optional[str] = None) -> ExperimentResult:
    """Regenerate Table 1: implementation parameters for replication
    policies."""
    return run_cached_single("t1-table1", _table1_point, {},
                             cache_dir=cache_dir, executor=executor)


def _table1() -> ExperimentResult:
    result = ExperimentResult(
        name="Table 1: Implementation parameters for replication policies",
        headers=["Parameter", "Values", "Meaning"],
    )
    for parameter, values, meaning in TABLE1_ROWS:
        result.add_row(parameter, "\n".join(f"- {v}" for v in values), meaning)
    result.data["parameter_count"] = len(TABLE1_ROWS)
    result.data["value_space"] = 1
    for _, values, _ in TABLE1_ROWS:
        result.data["value_space"] *= len(values)
    result.note(
        f"{len(TABLE1_ROWS)} parameters spanning "
        f"{result.data['value_space']} raw combinations "
        "(plus the two outdate-reaction parameters of Section 3.3)."
    )
    return result


def _table2_point(config: Dict[str, Any], seed: int) -> ExperimentResult:
    """Cacheable T2 point (parameter-free; the derived seed is unused)."""
    del config, seed
    return _table2()


def run_table2(cache_dir: Optional[str] = None,
               executor: Optional[str] = None) -> ExperimentResult:
    """Regenerate Table 2: replication strategy parameter values for the
    conference-page example."""
    return run_cached_single("t2-table2", _table2_point, {},
                             cache_dir=cache_dir, executor=executor)


def _table2() -> ExperimentResult:
    policy = ReplicationPolicy.conference_example()
    result = ExperimentResult(
        name="Table 2: Replication strategy parameter values for the example",
        headers=["Parameter", "Value"],
    )
    for parameter, value in policy.table2_rows():
        result.add_row(parameter, value)
    result.data["policy"] = policy
    result.data["model"] = policy.model.value
    return result
