"""Experiment X9: one protocol stack, three substrates, same behaviour.

Runs the identical scripted smoke scenario on the deterministic
simulator, on the wall-clock thread runtime, and on the multi-process
socket runtime through the sweep runner (:mod:`repro.exec.live`), then
compares the time-free coherence signatures.  This is the paper's
portability claim made operational: the replication strategy is a
property of the object, not of the runtime it happens to execute on.
"""

from __future__ import annotations

from typing import Optional

from repro.exec.live import run_live_smoke
from repro.experiments.harness import ExperimentResult


def run_backend_smoke(
    seed: int = 0,
    writes: int = 3,
    n_caches: int = 2,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """X9: sim/live/live-socket backend parity smoke (~2s wall-clock)."""
    measured = run_live_smoke(
        backends=("sim", "live", "live-socket"), writes=writes,
        n_caches=n_caches, seed=seed, parallel=parallel,
        cache_dir=cache_dir, executor=executor,
    )
    result = ExperimentResult(
        name="X9: Backend parity -- the same stack in virtual and wall-clock "
             "time",
        headers=["backend", "writes", "converged", "reads ok",
                 "datagrams delivered", "signature"],
    )
    reference = measured["sim"]["signature"]
    for label, point in measured.items():
        result.add_row(
            label,
            point["writes"],
            "yes" if point["converged"] else "NO",
            point["reads_ok"],
            point["datagrams_delivered"],
            "= sim" if point["signature"] == reference else "DIVERGED",
        )
    result.data["measured"] = measured
    result.data["parity"] = all(
        point["signature"] == reference for point in measured.values()
    )
    result.note(
        "All rows ran the identical Deployment scenario; the signature "
        "column compares per-store apply/install sequences and per-client "
        "read/write observations with all timestamps stripped.  The "
        "live-socket row runs every store in its own OS process."
    )
    return result
