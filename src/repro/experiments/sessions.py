"""Experiment X7: what enforcing session guarantees costs (and buys).

Design decision D2: unlike Bayou, which only *checks* session guarantees,
our stores *enforce* them.  This experiment runs the lazy-push conference
workload twice per guarantee set -- enforcement ON (the store blocks or
demand-updates) and OFF (requests carry no requirement; the checker then
counts what would have gone wrong) -- and reports violations avoided vs
extra messages and latency paid.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, Optional, Tuple

from repro.coherence import checkers
from repro.coherence.models import SessionGuarantee
from repro.exec import SweepSpec, run_sweep
from repro.experiments.harness import ExperimentResult, mean
from repro.replication.policy import ReplicationPolicy
from repro.sim.process import Delay, Process, WaitFor
from repro.workload.scenarios import Deployment, build_tree

PAGE = "program.html"


def _master(deployment: Deployment, updates: int) -> Generator:
    """Write at the server, immediately read back through the cache."""
    master = deployment.browsers["master"]
    for index in range(updates):
        yield Delay(1.0)
        yield WaitFor(master.append_to_page(PAGE, f"<li>{index}</li>"))
        yield WaitFor(master.read_page(PAGE))


def _roamer(deployment: Deployment, reads: int) -> Generator:
    """Alternate reads between two caches (the monotonic-reads hazard)."""
    roamer_a = deployment.browsers["roamer-a"]
    roamer_b = deployment.browsers["roamer-b"]
    for index in range(reads):
        yield Delay(0.9)
        browser = roamer_a if index % 2 == 0 else roamer_b
        yield WaitFor(browser.read_page(PAGE))


def _run(
    seed: int,
    guarantees: Iterable[SessionGuarantee],
    enforce: bool,
    updates: int,
) -> Tuple[Deployment, Dict[str, int]]:
    policy = ReplicationPolicy.conference_example()
    policy.lazy_interval = 4.0
    deployment = build_tree(
        policy=policy,
        n_caches=2,
        n_readers_per_cache=0,
        pages={PAGE: "<h2>program</h2>"},
        seed=seed,
        master_guarantees=tuple(guarantees) if enforce else (),
    )
    site = deployment.site
    # A roaming client with two identities... no: one session, two stubs
    # bound to different caches, sharing the session object so monotonic
    # reads spans stores (the Bayou scenario).
    roamer_a = site.bind_browser(
        "space-roamer-a", "roamer",
        read_store="cache-0",
        guarantees=tuple(guarantees) if enforce else (),
    )
    roamer_b = site.bind_browser(
        "space-roamer-b", "roamer",
        read_store="cache-1",
        guarantees=tuple(guarantees) if enforce else (),
    )
    # Share one session state across both bindings: same client roaming.
    roamer_b.bound.replication.session = roamer_a.bound.replication.session
    deployment.browsers["roamer-a"] = roamer_a
    deployment.browsers["roamer-b"] = roamer_b

    sim = deployment.sim
    Process(sim, _master(deployment, updates), "master")
    Process(sim, _roamer(deployment, updates + 2), "roamer")
    sim.run_until_idle()
    sim.run(until=sim.now + 2 * policy.lazy_interval)

    trace = site.trace
    violations = {
        "ryw": len(checkers.check_read_your_writes(trace, clients=["master"])),
        "mr": len(checkers.check_monotonic_reads(trace, clients=["roamer"])),
    }
    return deployment, violations


def run_x7_point(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One X7 point: the roaming workload with enforcement on or off."""
    deployment, violations = _run(
        seed=seed,
        guarantees=(
            SessionGuarantee.READ_YOUR_WRITES,
            SessionGuarantee.MONOTONIC_READS,
        ),
        enforce=config["enforce"],
        updates=config["updates"],
    )
    demands = sum(
        engine.counters["tx:demand"] for engine in deployment.engines
    )
    latencies = [
        value
        for browser in deployment.browsers.values()
        for kind, value in browser.bound.replication.op_latencies
        if kind == "read"
    ]
    return {
        "violations": violations,
        "demands": demands,
        "read_latency": mean(latencies),
    }


def run_sessions(seed: int = 0, updates: int = 8, parallel: int = 1,
                 cache_dir: Optional[str] = None,
                 executor: Optional[str] = None) -> ExperimentResult:
    """X7: enforcement on/off for RYW (master) and MR (roaming reader)."""
    result = ExperimentResult(
        name="X7: Session-guarantee enforcement -- cost and effect",
        headers=[
            "enforcement", "RYW violations", "MR violations",
            "demand-updates", "mean read latency (s)",
        ],
    )
    spec = SweepSpec(name="x7-sessions", run_point=run_x7_point,
                     base_seed=seed, paired=True)
    spec.add("off (check only)", enforce=False, updates=updates)
    spec.add("on (RYW + MR enforced)", enforce=True, updates=updates)
    measured = run_sweep(spec, parallel=parallel, cache_dir=cache_dir,
                         executor=executor)
    for label, point in measured.items():
        result.add_row(
            label,
            point["violations"]["ryw"],
            point["violations"]["mr"],
            point["demands"],
            f"{point['read_latency']:.4f}",
        )
    result.data["measured"] = measured
    result.note(
        "With enforcement off, the lazy 4s push window leaves the master "
        "reading pages missing its own writes and the roaming client "
        "seeing time run backwards across caches; enforcement converts "
        "those violations into demand-update traffic and added latency."
    )
    return result
