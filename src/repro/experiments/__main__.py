"""Regenerate every paper table, figure and experiment in one command.

Usage::

    python -m repro.experiments                     # everything, serial
    python -m repro.experiments t1 f3 x5            # a selection
    python -m repro.experiments --only t1,f3,x5     # the same, flag form
    python -m repro.experiments x1 --parallel 4     # fan sweep points out
    python -m repro.experiments --parallel 0 --cache-dir .sweep-cache
    python -m repro.experiments x10 --parallel 0 --executor shared-memory
    python -m repro.experiments --cache-dir .sweep-cache --cache-clear

Experiment ids match DESIGN.md section 4 (t1 t2 f1 f2 f3 f4 x1..x13).
Every experiment accepts ``--cache-dir`` (on-disk result cache keyed by
config hash + code version; stale code-fingerprint trees are evicted on
startup, ``--cache-clear`` wipes the cache entirely); sweep-shaped
experiments also accept ``--parallel`` (worker-pool size; 0 means one
worker per CPU), ``--executor`` (serial, process-pool, shared-memory,
or distributed -- the result-transport mechanism) and ``--workers``
(daemon count for the distributed executor).  Results are bit-identical
at any parallelism under every executor.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.exec import (
    add_exec_arguments,
    apply_cache_maintenance,
    exec_kwargs,
    supported_exec_kwargs,
)
from repro.experiments.adaptive import run_adaptive
from repro.experiments.backends import run_backend_smoke
from repro.experiments.conference import run_conference, run_fig4_wid_flow
from repro.experiments.endtoend import run_endtoend
from repro.experiments.faults import run_fault_grid, run_fault_soak
from repro.experiments.figures import run_fig1, run_fig2
from repro.experiments.model_costs import run_model_costs
from repro.experiments.per_object import run_per_object
from repro.experiments.scale import run_scale
from repro.experiments.sessions import run_sessions
from repro.experiments.sweeps import (
    run_initiative_and_transfer,
    run_propagation,
    run_transfer_instant,
)
from repro.experiments.table1_grid import run_table1_grid
from repro.experiments.tables import run_table1, run_table2

RUNNERS: Dict[str, Callable] = {
    "t1": run_table1,
    "t2": run_table2,
    "f1": run_fig1,
    "f2": run_fig2,
    "f3": run_conference,
    "f4": run_fig4_wid_flow,
    "x1": run_transfer_instant,
    "x2": run_propagation,
    "x3": run_per_object,
    "x4": run_model_costs,
    "x5": run_endtoend,
    "x6": run_initiative_and_transfer,
    "x7": run_sessions,
    "x8": run_adaptive,
    "x9": run_backend_smoke,
    "x10": run_table1_grid,
    "x11": run_fault_grid,
    "x12": run_fault_soak,
    "x13": run_scale,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate paper tables, figures and experiments.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help=f"experiment ids to run (default: all of {', '.join(RUNNERS)})",
    )
    parser.add_argument(
        "--only", default=None, metavar="IDS",
        help="comma-separated experiment ids to run (e.g. --only x5,f2); "
             "combined with any positional ids",
    )
    add_exec_arguments(parser)
    return parser


def main(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    requested = [exp.lower() for exp in args.experiments]
    if args.only:
        requested += [
            exp.strip().lower()
            for exp in args.only.split(",") if exp.strip()
        ]
    requested = list(dict.fromkeys(requested)) or list(RUNNERS)
    unknown = [exp for exp in requested if exp not in RUNNERS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}")
        print(f"available: {', '.join(RUNNERS)}")
        return 2
    maintenance = apply_cache_maintenance(args)
    if maintenance:
        print(maintenance)
    options = exec_kwargs(args)
    for exp_id in requested:
        runner = RUNNERS[exp_id]
        result = runner(**supported_exec_kwargs(runner, options))
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
