"""Experiments X1, X2, X6: sweeps over the Table-1 parameter axes.

The paper argues qualitatively (Section 3.3) that the right setting of
each implementation parameter depends on the object's usage; these sweeps
measure it:

- **X1** transfer instant: immediate vs lazy aggregation for a hot,
  frequently-written object ("it may be more efficient to implement a
  periodic update in which several updates are aggregated");
- **X2** consistency propagation: update vs invalidate across read/write
  ratios;
- **X6** transfer initiative (push vs pull) and transfer types
  (partial vs full).

Each sweep declares its points as a :class:`~repro.exec.SweepSpec` and a
pure module-level point function, so :func:`repro.exec.run_sweep` can fan
the points out over a worker pool and cache finished results.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.exec import SweepSpec, run_sweep
from repro.experiments.harness import ExperimentResult, RunMetrics, measure
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    Propagation,
    ReplicationPolicy,
    TransferInitiative,
    TransferInstant,
)
from repro.workload.profiles import WorkloadProfile, default_pages, run_profile
from repro.workload.scenarios import Deployment

#: A ten-page document with ~1 KiB pages, so partial-vs-full differences
#: are visible in the byte counts.
PAGES = default_pages()


def _run_deployment(
    policy: ReplicationPolicy,
    seed: int,
    n_caches: int,
    writes: int,
    reads_per_client: int,
    write_interval: float = 0.5,
    read_think: float = 0.5,
    incremental: bool = False,
    horizon: Optional[float] = None,
) -> Deployment:
    profile = WorkloadProfile(
        name="sweep",
        writes=writes,
        reads_per_client=reads_per_client,
        write_interval=write_interval,
        read_think=read_think,
        incremental=incremental,
        payload_bytes=1024,
    )
    return run_profile(policy, profile, n_caches=n_caches, seed=seed,
                       pages=dict(PAGES), horizon=horizon)


# --------------------------------------------------------------------------
# X1: transfer instant
# --------------------------------------------------------------------------


def run_x1_point(config: Dict[str, Any], seed: int) -> RunMetrics:
    """One X1 point: one transfer-instant setting, measured."""
    interval = config["interval"]
    policy = ReplicationPolicy(
        transfer_instant=(
            TransferInstant.IMMEDIATE if interval is None
            else TransferInstant.LAZY
        ),
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
    )
    if interval is not None:
        policy.lazy_interval = interval
    deployment = _run_deployment(
        policy, seed=seed, n_caches=config["n_caches"],
        writes=config["writes"], reads_per_client=10, incremental=False,
    )
    return measure(deployment)


def run_transfer_instant(
    seed: int = 0,
    writes: int = 40,
    n_caches: int = 8,
    lazy_intervals: tuple = (1.0, 5.0, 20.0),
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """X1: immediate vs lazy update propagation for a hot object."""
    result = ExperimentResult(
        name="X1: Transfer instant -- immediate vs lazy (aggregated) updates",
        headers=[
            "Setting", "coherence msgs", "total wire KB",
            "stale read fraction", "mean time lag (s)",
        ],
    )
    spec = SweepSpec(name="x1-transfer-instant", run_point=run_x1_point,
                     base_seed=seed, paired=True)
    spec.add("immediate", interval=None, writes=writes, n_caches=n_caches)
    for interval in lazy_intervals:
        spec.add(f"lazy ({interval:g}s)", interval=interval, writes=writes,
                 n_caches=n_caches)
    measured = run_sweep(spec, parallel=parallel, cache_dir=cache_dir,
                         executor=executor)
    for label, metrics in measured.items():
        result.add_row(
            label,
            metrics.traffic.coherence_messages,
            f"{metrics.traffic.bytes_sent / 1024:.1f}",
            f"{metrics.stale_fraction:.3f}",
            f"{metrics.mean_time_lag:.3f}",
        )
    result.data["measured"] = measured
    result.note(
        "Lazy aggregation trades coherence traffic for staleness; the "
        "longer the window, the fewer messages and the staler the reads "
        "(Section 3.3's aggregation argument, measured)."
    )
    return result


# --------------------------------------------------------------------------
# X2: consistency propagation
# --------------------------------------------------------------------------


def run_x2_point(config: Dict[str, Any], seed: int) -> RunMetrics:
    """One X2 point: one (read ratio, propagation) cell, measured."""
    policy = ReplicationPolicy(
        propagation=Propagation(config["propagation"]),
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
    )
    writes, n_caches = config["writes"], config["n_caches"]
    reads_per_client = max(1, int(writes * config["ratio"] / n_caches))
    deployment = _run_deployment(
        policy, seed=seed, n_caches=n_caches, writes=writes,
        reads_per_client=reads_per_client, incremental=False,
    )
    return measure(deployment)


def run_propagation(
    seed: int = 0,
    writes: int = 30,
    read_ratios: tuple = (0.2, 1.0, 5.0),
    n_caches: int = 4,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """X2: update vs invalidate across read/write ratios."""
    result = ExperimentResult(
        name="X2: Consistency propagation -- update vs invalidate",
        headers=[
            "reads per write", "propagation", "bytes on wire",
            "coherence msgs", "mean read latency (s)",
        ],
    )
    spec = SweepSpec(name="x2-propagation", run_point=run_x2_point,
                     base_seed=seed, paired=True)
    # The (ratio x propagation) cross is exactly a dense grid; the
    # derived reads-per-client count moves into the point function so
    # the axes stay pure.
    spec.add_grid(
        _fixed={"writes": writes, "n_caches": n_caches},
        ratio=read_ratios,
        propagation=[
            p.value for p in (Propagation.UPDATE, Propagation.INVALIDATE)
        ],
    )
    measured = run_sweep(spec, parallel=parallel, cache_dir=cache_dir,
                         executor=executor)
    for (ratio, propagation), metrics in measured.items():
        result.add_row(
            f"{ratio:g}",
            propagation,
            metrics.traffic.bytes_sent,
            metrics.traffic.coherence_messages,
            f"{metrics.mean_read_latency:.4f}",
        )
    result.data["measured"] = measured
    result.note(
        "Invalidation sends tiny invalidations and pays a refetch only on "
        "the next read, so it wins on bytes when reads are rare; update "
        "propagation wins read latency when reads dominate."
    )
    return result


# --------------------------------------------------------------------------
# X6: transfer initiative and transfer types
# --------------------------------------------------------------------------


def run_x6_point(config: Dict[str, Any], seed: int) -> RunMetrics:
    """One X6 point: one (initiative, instant, transfers) variant."""
    initiative = TransferInitiative(config["initiative"])
    policy = ReplicationPolicy(
        transfer_initiative=initiative,
        transfer_instant=TransferInstant(config["instant"]),
        coherence_transfer=CoherenceTransfer(config["coherence"]),
        access_transfer=AccessTransfer(config["access"]),
        lazy_interval=2.0,
    )
    horizon = 60.0 if initiative is TransferInitiative.PULL else None
    deployment = _run_deployment(
        policy, seed=seed, n_caches=config["n_caches"],
        writes=config["writes"], reads_per_client=10, incremental=False,
        horizon=horizon,
    )
    return measure(deployment)


def run_initiative_and_transfer(
    seed: int = 0,
    writes: int = 20,
    n_caches: int = 4,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """X6: push vs pull initiative, partial vs full transfer types."""
    result = ExperimentResult(
        name="X6: Transfer initiative and transfer types",
        headers=[
            "initiative", "instant", "coherence transfer", "access transfer",
            "bytes on wire", "coherence msgs", "stale fraction",
            "mean read latency (s)",
        ],
    )
    variants = [
        (TransferInitiative.PUSH, TransferInstant.IMMEDIATE,
         CoherenceTransfer.PARTIAL, AccessTransfer.PARTIAL),
        (TransferInitiative.PUSH, TransferInstant.IMMEDIATE,
         CoherenceTransfer.FULL, AccessTransfer.FULL),
        (TransferInitiative.PULL, TransferInstant.IMMEDIATE,
         CoherenceTransfer.PARTIAL, AccessTransfer.PARTIAL),
        (TransferInitiative.PULL, TransferInstant.LAZY,
         CoherenceTransfer.PARTIAL, AccessTransfer.PARTIAL),
    ]
    spec = SweepSpec(name="x6-initiative-transfer", run_point=run_x6_point,
                     base_seed=seed, paired=True)
    for initiative, instant, coherence, access in variants:
        spec.add(
            (initiative.value, instant.value, coherence.value, access.value),
            initiative=initiative,
            instant=instant,
            coherence=coherence,
            access=access,
            writes=writes,
            n_caches=n_caches,
        )
    measured = run_sweep(spec, parallel=parallel, cache_dir=cache_dir,
                         executor=executor)
    for (initiative, instant, coherence, access), metrics in measured.items():
        result.add_row(
            initiative,
            instant,
            coherence,
            access,
            metrics.traffic.bytes_sent,
            metrics.traffic.coherence_messages,
            f"{metrics.stale_fraction:.3f}",
            f"{metrics.mean_read_latency:.4f}",
        )
    result.data["measured"] = measured
    result.note(
        "Partial transfer ships only modified pages; full transfer ships "
        "the whole ten-page document each time.  Pull-on-access pays a "
        "validation round trip per read (the IMS pattern); periodic pull "
        "trades that for staleness."
    )
    return result
