"""Experiment X5: reliability as a side effect of the coherence model.

Section 4.2's end-to-end argument: the prototype used TCP "for the sake of
simplicity", but since PRAM ordering is enforced at the replication layer
with WiDs, UDP would do -- "simply by changing the object-outdate reaction
parameter from wait to demand, reliability comes as a side-effect of the
coherence model".

This experiment runs the same single-master workload over:

1. the reliable FIFO transport (TCP) with reaction *wait*;
2. the lossy unordered transport (UDP) with reaction *wait* -- pushes can
   be lost forever, replicas stall;
3. the lossy unordered transport (UDP) with reaction *demand* -- gap
   detection triggers demand-updates that recover the missing writes.

It verifies that (3) converges like (1) while (2) does not, and counts the
recovery traffic.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.coherence import checkers
from repro.exec import SweepSpec, run_sweep
from repro.experiments.harness import ExperimentResult, measure
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    OutdateReaction,
    ReplicationPolicy,
)
from repro.sim.process import Delay, Process, WaitFor
from repro.workload.scenarios import Deployment, build_tree

PAGE = "live.html"


def _writer(deployment: Deployment, writes: int,
            heartbeats: int = 6) -> Generator:
    master = deployment.browsers["master"]
    for index in range(writes):
        yield Delay(0.5)
        yield WaitFor(master.write_page(PAGE, f"<p>rev {index}</p>"))
    # WiD gap detection needs a successor: a lost push of the *final*
    # write is invisible until another write arrives.  Real masters keep
    # writing; these heartbeats play that role so the demand variant gets
    # its recovery opportunity for trailing losses.
    for index in range(heartbeats):
        yield Delay(1.0)
        yield WaitFor(master.write_page("heartbeat.html", f"<p>{index}</p>"))


def _reader(deployment: Deployment, name: str, reads: int) -> Generator:
    browser = deployment.browsers[name]
    for _ in range(reads):
        yield Delay(0.7)
        try:
            yield WaitFor(browser.read_page(PAGE))
        except Exception:
            pass


def _run_variant(
    seed: int,
    reliable: bool,
    reaction: OutdateReaction,
    loss_rate: float,
    writes: int,
    horizon: float,
) -> Dict[str, object]:
    policy = ReplicationPolicy(
        coherence_transfer=CoherenceTransfer.PARTIAL,
        access_transfer=AccessTransfer.PARTIAL,
        object_outdate_reaction=reaction,
    )
    deployment = build_tree(
        policy=policy,
        n_caches=3,
        n_readers_per_cache=1,
        pages={PAGE: "<p>rev -1</p>"},
        seed=seed,
        loss_rate=loss_rate if not reliable else 0.0,
        reliable_transport=reliable,
    )
    sim = deployment.sim
    # Writes go over a request with timeout+retry so the master makes
    # progress even when its own messages are lost.
    deployment.browsers["master"].bound.replication.request_timeout = 1.0
    deployment.browsers["master"].bound.replication.request_retries = 10
    for name, browser in deployment.browsers.items():
        if name != "master":
            browser.bound.replication.request_timeout = 1.0
            browser.bound.replication.request_retries = 10
    Process(sim, _writer(deployment, writes), "writer")
    for name in deployment.browsers:
        if name != "master":
            Process(sim, _reader(deployment, name, 10), name)
    sim.run(until=horizon)

    server_version = deployment.store("server").version().get("master", 0)
    cache_versions = [
        cache.version().get("master", 0) for cache in deployment.caches
    ]
    metrics = measure(deployment)
    demand_total = sum(
        engine.counters["tx:demand"] for engine in deployment.engines
    )
    # WiD gap detection can only fire when a *later* record arrives, so a
    # lost push of the final write is unrecoverable until the next write;
    # a lag of one is therefore the protocol's best possible at quiescence.
    lag = server_version - min(cache_versions) if cache_versions else 0
    return {
        "server_version": server_version,
        "cache_versions": cache_versions,
        "lag": lag,
        "caught_up": lag <= 1,
        "pram_violations": len(checkers.check_pram(deployment.site.trace)),
        "demands": demand_total,
        "dropped_datagrams": deployment.network.stats.datagrams_dropped_loss,
        "messages": metrics.traffic.datagrams_sent,
    }


def run_x5_point(config: Dict[str, Any], seed: int) -> Dict[str, object]:
    """One X5 point: one (transport, outdate-reaction) variant."""
    return _run_variant(
        seed=seed,
        reliable=config["reliable"],
        reaction=OutdateReaction(config["reaction"]),
        loss_rate=config["loss_rate"],
        writes=config["writes"],
        horizon=config["horizon"],
    )


def run_endtoend(
    seed: int = 0,
    loss_rate: float = 0.15,
    writes: int = 15,
    horizon: float = 60.0,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> ExperimentResult:
    """X5: TCP/wait vs UDP/wait vs UDP/demand."""
    result = ExperimentResult(
        name="X5: Reliability from the coherence model (end-to-end argument)",
        headers=[
            "variant", "server seq", "cache seqs", "caught up",
            "PRAM viol.", "demands", "datagrams lost", "msgs",
        ],
    )
    variants = [
        ("TCP + wait", True, OutdateReaction.WAIT),
        ("UDP + wait", False, OutdateReaction.WAIT),
        ("UDP + demand", False, OutdateReaction.DEMAND),
    ]
    spec = SweepSpec(name="x5-endtoend", run_point=run_x5_point,
                     base_seed=seed, paired=True)
    for label, reliable, reaction in variants:
        spec.add(label, reliable=reliable, reaction=reaction,
                 loss_rate=loss_rate, writes=writes, horizon=horizon)
    measured = run_sweep(spec, parallel=parallel, cache_dir=cache_dir,
                         executor=executor)
    for label, run in measured.items():
        result.add_row(
            label,
            run["server_version"],
            ",".join(str(v) for v in run["cache_versions"]),
            run["caught_up"],
            run["pram_violations"],
            run["demands"],
            run["dropped_datagrams"],
            run["messages"],
        )
    result.data["measured"] = measured
    result.note(
        "Changing the object-outdate reaction from wait to demand recovers "
        "lost pushes through WiD gap detection: reliability as a "
        "side-effect of PRAM, with no transport-level retransmission."
    )
    return result
