"""Experiment harness (S15): one module per paper table/figure + sweeps.

Every module exposes ``run(...) -> ExperimentResult`` (or several) and is
driven both by the benchmark suite (``benchmarks/``) and by integration
tests.  See DESIGN.md section 4 for the experiment index and
EXPERIMENTS.md for recorded paper-vs-measured outcomes.
"""

from repro.experiments.harness import ExperimentResult

__all__ = ["ExperimentResult"]
