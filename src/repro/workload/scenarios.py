"""Deployment builders: whole replicated-web-object systems in one call.

A :class:`Deployment` bundles the simulator, network, Web object, stores
and browsers of one experiment so harness code stays declarative.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.coherence.models import SessionGuarantee
from repro.core.dso import Store
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.network import Network
from repro.replication.policy import ReplicationPolicy
from repro.sim.kernel import Simulator
from repro.web.webobject import Browser, WebObject


@dataclasses.dataclass
class Deployment:
    """One assembled system under test."""

    sim: Simulator
    network: Network
    site: WebObject
    server: Store
    mirrors: List[Store]
    caches: List[Store]
    browsers: Dict[str, Browser]

    @property
    def engines(self) -> List[object]:
        """All store replication engines (for traffic collection)."""
        return [s.engine for s in [self.server, *self.mirrors, *self.caches]]

    def store(self, address: str) -> Store:
        """Find a store by address."""
        return self.site.dso.stores[address]


def build_tree(
    policy: ReplicationPolicy,
    n_mirrors: int = 0,
    n_caches: int = 2,
    n_readers_per_cache: int = 1,
    pages: Optional[Dict[str, str]] = None,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    reliable_transport: bool = True,
    designated_writer: Optional[str] = "master",
    master_guarantees=(SessionGuarantee.READ_YOUR_WRITES,),
    reader_guarantees=(),
) -> Deployment:
    """Build the canonical Fig. 2 tree.

    One permanent store (``server``); ``n_mirrors`` object-initiated
    stores under it; ``n_caches`` client-initiated stores distributed
    round-robin under the mirrors (or directly under the server when
    there are no mirrors); one master client writing to the server and
    reading from the first cache; ``n_readers_per_cache`` reader clients
    per cache.
    """
    sim = Simulator(seed=seed)
    network = Network(sim, latency=latency or ConstantLatency(0.05),
                      loss_rate=loss_rate)
    site = WebObject(
        sim,
        network,
        policy=policy,
        pages=pages or {"index.html": "<h1>home</h1>"},
        designated_writer=designated_writer,
        reliable_transport=reliable_transport,
    )
    server = site.create_server("server")
    mirrors = [
        site.create_mirror(f"mirror-{index}") for index in range(n_mirrors)
    ]
    caches = []
    for index in range(n_caches):
        parent = (
            mirrors[index % len(mirrors)].address if mirrors else "server"
        )
        caches.append(site.create_cache(f"cache-{index}", parent=parent))
    browsers: Dict[str, Browser] = {}
    master_read = caches[0].address if caches else "server"
    browsers["master"] = site.bind_browser(
        "space-master",
        "master",
        read_store=master_read,
        write_store="server",
        guarantees=master_guarantees,
    )
    for index, cache in enumerate(caches):
        for reader in range(n_readers_per_cache):
            client_id = f"reader-{index}-{reader}"
            browsers[client_id] = site.bind_browser(
                f"space-{client_id}",
                client_id,
                read_store=cache.address,
                guarantees=reader_guarantees,
            )
    return Deployment(
        sim=sim,
        network=network,
        site=site,
        server=server,
        mirrors=mirrors,
        caches=caches,
        browsers=browsers,
    )


def conference_deployment(seed: int = 0,
                          lazy_interval: float = 5.0) -> Deployment:
    """The paper's Section 4 system, exactly (Fig. 3).

    One Web server (permanent store), the master's cache and the user's
    cache (client-initiated stores), client M writing directly to the
    server with RYW, client U reading from its cache with no client-based
    model, Table 2 policy values.
    """
    policy = ReplicationPolicy.conference_example()
    policy.lazy_interval = lazy_interval
    pages = {
        "index.html": "<h1>ICDCS'98</h1>",
        "program.html": "<h2>Technical Program</h2>",
        "registration.html": "<h2>Registration</h2>",
        "authors.html": "<h2>Author Guidelines</h2>",
        "hotel.html": "<h2>Accommodations</h2>",
    }
    deployment = build_tree(
        policy=policy,
        n_mirrors=0,
        n_caches=2,
        n_readers_per_cache=0,
        pages=pages,
        seed=seed,
        designated_writer="master",
    )
    site = deployment.site
    deployment.browsers["user"] = site.bind_browser(
        "space-user",
        "user",
        read_store="cache-1",
        guarantees=(),
    )
    return deployment
