"""Deployment builders: whole replicated-web-object systems in one call.

A :class:`Deployment` bundles the runtime backend, network, Web object,
stores and browsers of one experiment so harness code stays declarative.
Builders take a ``backend`` parameter -- ``"sim"`` (deterministic virtual
time, the default) or ``"live"`` (wall-clock threads) -- and assemble the
identical protocol stack on either substrate; driving helpers
(:meth:`Deployment.call`, :meth:`Deployment.wait`, :meth:`Deployment.
run_for`, :meth:`Deployment.settle`) delegate to the backend so scripted
workloads run unchanged on both.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Union

from repro.coherence.models import SessionGuarantee
from repro.core.dso import Store
from repro.net.latency import ConstantLatency, LatencyModel
from repro.replication.policy import ReplicationPolicy
from repro.sim.future import Future
from repro.transport import (
    Backend,
    BackendError,
    LiveBackend,
    SimBackend,
    SocketBackend,
    make_backend,
)
from repro.web.webobject import Browser, WebObject
from repro.workload.cohort import cohort_sizes


@dataclasses.dataclass
class Deployment:
    """One assembled system under test."""

    sim: Any  # the backend's Clock (a Simulator under backend="sim")
    network: Any
    site: WebObject
    server: Store
    mirrors: List[Store]
    caches: List[Store]
    browsers: Dict[str, Browser]
    backend: Optional[Backend] = None
    #: The fault injector driving this run's fault plan, when one is
    #: attached (see :func:`repro.workload.profiles.run_profile`).
    faults: Optional[Any] = None
    #: Cohort weights by client id: each listed browser stands in for
    #: that many identical leaf clients (see :mod:`repro.workload.cohort`).
    cohorts: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Binding parameters per cohort, kept so :meth:`expand_cohort` can
    #: bind individual members with the identical store and guarantees.
    cohort_spec: Dict[str, Dict[str, Any]] = dataclasses.field(
        default_factory=dict
    )

    @property
    def engines(self) -> List[object]:
        """All store replication engines (for traffic collection)."""
        return [s.engine for s in [self.server, *self.mirrors, *self.caches]]

    def store(self, address: str) -> Store:
        """Find a store by address."""
        return self.site.dso.stores[address]

    # -- backend-agnostic driving ---------------------------------------------

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the protocol thread; return its value."""
        return self._backend().call(fn, *args)

    def wait(self, future: Future, timeout: Optional[float] = None) -> Any:
        """Drive the backend until ``future`` resolves; return its result."""
        return self._backend().wait(future, timeout=timeout)

    def run_for(self, seconds: float) -> None:
        """Let ``seconds`` of protocol time elapse (virtual or real)."""
        self._backend().advance(seconds)

    def settle(self, timeout: float = 5.0) -> None:
        """Drive until the protocol is quiescent."""
        self._backend().settle(timeout=timeout)

    def wait_until(
        self, predicate: Callable[[], bool], timeout: float = 5.0
    ) -> bool:
        """Drive until ``predicate()`` holds; ``False`` on timeout."""
        return self._backend().wait_until(predicate, timeout=timeout)

    def shutdown(self) -> None:
        """Stop the backend, then tear down every local object.

        Required for live deployments (the dispatcher is a real thread);
        harmless for simulated ones.  The backend stops *first* so no
        dispatcher callback races the teardown of the very objects it
        would run against -- destroy only cancels timers and unregisters
        handlers, which is safe once no protocol thread is executing.
        """
        if self.backend is not None:
            self.backend.stop()
        for store in self.site.dso.stores.values():
            store.local.destroy()
        for client in self.site.dso.clients:
            client.local.destroy()

    def expand_cohort(self, client_id: str) -> List[Browser]:
        """Bind one browser per member of cohort ``client_id``.

        Called (via :class:`~repro.workload.cohort.CohortReaderWorkload`'s
        ``expand`` hook) when a policy decision diverges within the
        cohort.  Members are named ``<client_id>.<k>``, bound to the same
        store with the same guarantees, and registered in
        :attr:`browsers` so metric collection sees them like any other
        client.
        """
        spec = self.cohort_spec[client_id]
        members: List[Browser] = []
        for member in range(self.cohorts[client_id]):
            member_id = f"{client_id}.{member}"
            browser = self.site.bind_browser(
                f"space-{member_id}",
                member_id,
                read_store=spec["read_store"],
                guarantees=spec["guarantees"],
                request_timeout=spec["request_timeout"],
                request_retries=spec["request_retries"],
            )
            self.browsers[member_id] = browser
            members.append(browser)
        return members

    def _backend(self) -> Backend:
        if self.backend is None:
            raise BackendError(
                "this deployment was assembled without a Backend; "
                "rebuild it through build_tree()/conference_deployment()"
            )
        return self.backend


def _resolve_backend(
    backend: Union[str, Backend],
    seed: int,
    latency: Optional[LatencyModel],
    live_latency: float,
    loss_rate: float,
    scheduler: Optional[str] = None,
) -> Backend:
    """Resolve the builder's backend argument into a Backend instance.

    A prebuilt :class:`Backend` is used as-is -- its own seed, latency
    and loss settings apply; the builder's are ignored.  ``scheduler``
    selects the simulator's event queue (``"heap"``/``"calendar"``) and
    only applies to the sim backend.
    """
    if isinstance(backend, Backend):
        return backend
    if backend == SimBackend.name:
        return make_backend(
            "sim",
            seed=seed,
            latency=latency or ConstantLatency(0.05),
            loss_rate=loss_rate,
            scheduler=scheduler,
        )
    if backend in (LiveBackend.name, SocketBackend.name):
        if latency is not None:
            raise BackendError(
                f"the {backend} backend takes live_latency (a constant "
                "delay in seconds), not a simulator LatencyModel"
            )
        return make_backend(backend, seed=seed, latency=live_latency,
                            loss_rate=loss_rate)
    return make_backend(backend)  # raises the canonical unknown-name error


def build_tree(
    policy: ReplicationPolicy,
    n_mirrors: int = 0,
    n_caches: int = 2,
    n_readers_per_cache: int = 1,
    pages: Optional[Dict[str, str]] = None,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    reliable_transport: bool = True,
    designated_writer: Optional[str] = "master",
    master_guarantees=(SessionGuarantee.READ_YOUR_WRITES,),
    reader_guarantees=(),
    backend: Union[str, Backend] = "sim",
    live_latency: float = 0.005,
    start_backend: bool = True,
    request_timeout: Optional[float] = None,
    request_retries: int = 0,
    scheduler: Optional[str] = None,
    cohort_size: int = 1,
) -> Deployment:
    """Build the canonical Fig. 2 tree.

    One permanent store (``server``); ``n_mirrors`` object-initiated
    stores under it; ``n_caches`` client-initiated stores distributed
    round-robin under the mirrors (or directly under the server when
    there are no mirrors); one master client writing to the server and
    reading from the first cache; ``n_readers_per_cache`` reader clients
    per cache.

    ``scheduler`` picks the simulator's event queue (``"heap"`` or
    ``"calendar"``; sim backend only) -- a throughput knob with no
    effect on seeded results.  ``cohort_size`` > 1 collapses the readers
    of each cache into weighted cohorts of (up to) that many identical
    clients: one ``cohort-<cache>-<j>`` browser per group, recorded in
    :attr:`Deployment.cohorts`, whose reads carry the group's weight
    (see :mod:`repro.workload.cohort`).  The default of 1 binds every
    reader individually, exactly as before.

    ``backend`` selects the substrate: ``"sim"`` assembles the system on
    the deterministic simulator, ``"live"`` on the wall-clock runtime
    (with ``live_latency`` seconds of in-process delivery delay); an
    already constructed :class:`~repro.transport.Backend` is used as-is
    (its own seed/latency/loss settings apply, not the builder's).  The
    live dispatcher is started before this function returns unless
    ``start_backend`` is false (builders that wire more address spaces
    on top pass ``False`` and start the backend themselves); callers own
    the teardown via :meth:`Deployment.shutdown`.

    ``request_timeout`` / ``request_retries`` apply to every browser
    bound here: fault scenarios set them so reads into a crashed store
    fail fast (and count as unavailable) instead of stalling the client.
    """
    if cohort_size < 1:
        raise ValueError(f"cohort_size must be >= 1, got {cohort_size!r}")
    backend_obj = _resolve_backend(backend, seed, latency, live_latency,
                                   loss_rate, scheduler=scheduler)
    clock, transport = backend_obj.clock, backend_obj.transport
    # The socket backend owns the deployment's shared trace recorder
    # (node processes stream events into it) and builds stores through a
    # factory that spawns real processes; in-process backends have
    # neither attribute and keep the historical assembly.
    site = WebObject(
        clock,
        transport,
        policy=policy,
        pages=pages or {"index.html": "<h1>home</h1>"},
        trace=getattr(backend_obj, "trace", None),
        designated_writer=designated_writer,
        reliable_transport=reliable_transport,
        store_factory=getattr(backend_obj, "store_factory", None),
    )
    server = site.create_server("server")
    mirrors = [
        site.create_mirror(f"mirror-{index}") for index in range(n_mirrors)
    ]
    caches = []
    for index in range(n_caches):
        parent = (
            mirrors[index % len(mirrors)].address if mirrors else "server"
        )
        caches.append(site.create_cache(f"cache-{index}", parent=parent))
    browsers: Dict[str, Browser] = {}
    master_read = caches[0].address if caches else "server"
    browsers["master"] = site.bind_browser(
        "space-master",
        "master",
        read_store=master_read,
        write_store="server",
        guarantees=master_guarantees,
        request_timeout=request_timeout,
        request_retries=request_retries,
    )
    cohorts: Dict[str, int] = {}
    cohort_spec: Dict[str, Dict[str, Any]] = {}
    for index, cache in enumerate(caches):
        if cohort_size <= 1:
            for reader in range(n_readers_per_cache):
                client_id = f"reader-{index}-{reader}"
                browsers[client_id] = site.bind_browser(
                    f"space-{client_id}",
                    client_id,
                    read_store=cache.address,
                    guarantees=reader_guarantees,
                    request_timeout=request_timeout,
                    request_retries=request_retries,
                )
            continue
        groups = cohort_sizes(n_readers_per_cache, cohort_size)
        for group, weight in enumerate(groups):
            client_id = f"cohort-{index}-{group}"
            browsers[client_id] = site.bind_browser(
                f"space-{client_id}",
                client_id,
                read_store=cache.address,
                guarantees=reader_guarantees,
                request_timeout=request_timeout,
                request_retries=request_retries,
            )
            cohorts[client_id] = weight
            cohort_spec[client_id] = {
                "read_store": cache.address,
                "guarantees": reader_guarantees,
                "request_timeout": request_timeout,
                "request_retries": request_retries,
            }
    # Start executing protocol events only once the whole tree is wired,
    # so live deployments assemble without racing their own traffic.
    if start_backend:
        backend_obj.start()
    return Deployment(
        sim=clock,
        network=transport,
        site=site,
        server=server,
        mirrors=mirrors,
        caches=caches,
        browsers=browsers,
        backend=backend_obj,
        cohorts=cohorts,
        cohort_spec=cohort_spec,
    )


def conference_deployment(
    seed: int = 0,
    lazy_interval: float = 5.0,
    backend: Union[str, Backend] = "sim",
) -> Deployment:
    """The paper's Section 4 system, exactly (Fig. 3).

    One Web server (permanent store), the master's cache and the user's
    cache (client-initiated stores), client M writing directly to the
    server with RYW, client U reading from its cache with no client-based
    model, Table 2 policy values.  Runs on either backend.
    """
    policy = ReplicationPolicy.conference_example()
    policy.lazy_interval = lazy_interval
    pages = {
        "index.html": "<h1>ICDCS'98</h1>",
        "program.html": "<h2>Technical Program</h2>",
        "registration.html": "<h2>Registration</h2>",
        "authors.html": "<h2>Author Guidelines</h2>",
        "hotel.html": "<h2>Accommodations</h2>",
    }
    deployment = build_tree(
        policy=policy,
        n_mirrors=0,
        n_caches=2,
        n_readers_per_cache=0,
        pages=pages,
        seed=seed,
        designated_writer="master",
        backend=backend,
        start_backend=False,
    )
    site = deployment.site
    deployment.browsers["user"] = site.bind_browser(
        "space-user",
        "user",
        read_store="cache-1",
        guarantees=(),
    )
    # All address spaces are wired; only now may protocol events execute.
    deployment.backend.start()
    return deployment
