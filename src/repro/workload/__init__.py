"""Workload generation (S13).

Synthetic but realistic Web traffic: Zipf page popularity, Poisson think
times, single-master incremental updates (the paper's conference page),
multi-writer overwrite streams (whiteboards), and scenario builders that
assemble whole deployments (server + mirrors + caches + browsers) in one
call.
"""

from repro.workload.cohort import CohortReaderWorkload, cohort_sizes
from repro.workload.generator import (
    ReaderWorkload,
    WriterWorkload,
    ZipfPagePicker,
    drive,
)
from repro.workload.profiles import (
    PROFILES,
    WorkloadProfile,
    get_profile,
    run_profile,
)
from repro.workload.scenarios import Deployment, build_tree, conference_deployment

__all__ = [
    "CohortReaderWorkload",
    "Deployment",
    "PROFILES",
    "ReaderWorkload",
    "WorkloadProfile",
    "WriterWorkload",
    "ZipfPagePicker",
    "build_tree",
    "cohort_sizes",
    "conference_deployment",
    "drive",
    "get_profile",
    "run_profile",
]
