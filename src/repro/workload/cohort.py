"""Client cohorts: many identical leaf clients as one weighted process.

At web scale most readers are *statistically identical*: same cache, same
session guarantees, same think-time and page-popularity distributions.
Simulating each one as its own process (address space, session, event
stream) is what caps populations in the tens.  A
:class:`CohortReaderWorkload` collapses ``weight`` such clients into one
process that issues **batched reads** -- a single protocol request
stamped with the cohort weight, which the store's read path, the trace
recorder and every metric then count as ``weight`` client reads (see
``weight=`` on :meth:`repro.web.webobject.Browser.read_page` and
``ReadEvent.weight``).

The collapse is exact as long as every member would have made the same
policy-visible decisions: they share one admission outcome (same store,
same session requirement), one replica choice (same binding) and one
served version.  The moment a decision can *diverge* -- a fault makes
the shared request fail, where real clients would individually retry,
time out, or hit different replicas -- the cohort **expands**: the
failed round is charged to every member (they all saw the same fault at
the same instant), and from the next round on the cohort issues
per-member weight-1 reads through individually bound browsers (the
``expand`` callback, typically
:meth:`repro.workload.scenarios.Deployment.expand_cohort`).  Without an
expand callback the cohort keeps batching and keeps charging errors at
full weight -- a documented coarsening, acceptable for fault-free
benchmarks.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from repro.replication.client import ReplicaError
from repro.sim.process import Delay, WaitFor
from repro.sim.rng import SeededRng
from repro.web.webobject import Browser
from repro.workload.generator import EPOCH, WorkloadStats, ZipfPagePicker


class CohortReaderWorkload:
    """``weight`` identical browsing clients driven as one process.

    Parameters
    ----------
    browser:
        The cohort's shared browser; its reads carry ``weight``.
    pages / skew:
        Page population and Zipf skew, as for
        :class:`~repro.workload.generator.ReaderWorkload`.
    rng:
        This cohort's random stream (think times; page picks use a
        ``"pages"`` fork, mirroring the per-client reader).
    weight:
        How many leaf clients this process stands in for.
    mean_think / operations:
        Think time and rounds *per member*; each round issues one batched
        read representing one read by every member.
    expand:
        Zero-argument callable returning the per-member browsers, bound
        lazily when a policy decision diverges.  ``None`` disables
        expansion.
    """

    def __init__(
        self,
        browser: Browser,
        pages: Sequence[str],
        rng: SeededRng,
        weight: int,
        mean_think: float = 1.0,
        operations: int = 50,
        skew: float = 1.0,
        expand: Optional[Callable[[], List[Browser]]] = None,
    ) -> None:
        if weight < 1:
            raise ValueError(f"cohort weight must be >= 1, got {weight!r}")
        self.browser = browser
        self.picker = ZipfPagePicker(pages, rng.fork("pages"), skew)
        self.rng = rng
        self.weight = weight
        self.mean_think = mean_think
        self.operations = operations
        self.expand = expand
        #: Individually bound member browsers once expanded, else ``None``.
        self.members: Optional[List[Browser]] = None
        self.stats = WorkloadStats()

    @property
    def expanded(self) -> bool:
        """Whether a diverging decision has split this cohort."""
        return self.members is not None

    def _expand(self) -> None:
        if self.members is not None or self.expand is None:
            return
        self.members = list(self.expand())

    def run(self) -> Generator:
        """Generator body for :class:`~repro.sim.process.Process`.

        Randomness is pre-drawn in epochs exactly like the per-client
        reader; each round is one batched (or, after expansion,
        per-member) read.
        """
        remaining = self.operations
        while remaining > 0:
            block = min(remaining, EPOCH)
            remaining -= block
            thinks = self.rng.exponential_block(self.mean_think, block)
            pages = self.picker.pick_block(block)
            for think, page in zip(thinks, pages):
                yield Delay(think)
                if self.members is None:
                    try:
                        yield WaitFor(
                            self.browser.read_page(page, weight=self.weight)
                        )
                    except ReplicaError:
                        self.stats.not_found += self.weight
                    except Exception:
                        # A fault hit the shared request: every member saw
                        # it (one wire request, one failure instant), so
                        # the round is charged at full weight -- then the
                        # cohort expands, because retries/timeouts from
                        # here on would diverge per client.
                        self.stats.errors += self.weight
                        self._expand()
                    self.stats.operations += self.weight
                    continue
                for member in self.members:
                    try:
                        yield WaitFor(member.read_page(page))
                    except ReplicaError:
                        self.stats.not_found += 1
                    except Exception:
                        self.stats.errors += 1
                    self.stats.operations += 1
        return self.stats


def cohort_sizes(population: int, cohort_size: int) -> List[int]:
    """Split ``population`` clients into cohort weights of ``cohort_size``.

    The last cohort takes the remainder, so weights always sum to the
    population: ``cohort_sizes(10, 4) == [4, 4, 2]``.
    """
    if population < 0:
        raise ValueError(f"population must be >= 0, got {population!r}")
    if cohort_size < 1:
        raise ValueError(f"cohort size must be >= 1, got {cohort_size!r}")
    full, rest = divmod(population, cohort_size)
    sizes = [cohort_size] * full
    if rest:
        sizes.append(rest)
    return sizes
