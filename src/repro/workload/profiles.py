"""Grid-parameterized workload profiles: named traffic mixes in one call.

The Table-1 sweeps compare replication strategies *under a workload*, so
the workload axis has to be as declarative as the policy axis.  A
:class:`WorkloadProfile` names one traffic mix (how often the master
writes, how eagerly the readers read); :data:`PROFILES` is the registry
the report grids draw their workload axis from; and :func:`run_profile`
assembles the Fig. 2 tree, drives the profile's writer and readers over
it, and returns the finished :class:`~repro.workload.scenarios.Deployment`
ready for measurement.

Profiles are plain data, so a profile *name* can travel through a sweep
config (and its cache key) while the expansion to writer/reader
parameters stays in exactly one place.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Union

from repro.replication.policy import ReplicationPolicy, TransferInstant
from repro.sim.process import Process
from repro.transport.backend import Backend, BackendError
from repro.workload.cohort import CohortReaderWorkload
from repro.workload.generator import ReaderWorkload, WriterWorkload, drive_live
from repro.workload.scenarios import Deployment, build_tree

def default_pages() -> Dict[str, str]:
    """A fresh copy of the standard profile document.

    Ten ~1 KiB pages, big enough that partial-vs-full transfer
    differences show up in the byte counts.
    """
    return {f"page-{i}.html": "c" * 1024 for i in range(10)}


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """One named traffic mix over the Fig. 2 tree.

    ``writes``/``write_interval`` shape the master's update stream;
    ``reads_per_client``/``read_think`` shape each reader;
    ``incremental`` selects append-style updates (the conference master)
    over whole-page overwrites; ``payload_bytes`` sizes each update.
    """

    name: str
    writes: int
    reads_per_client: int
    write_interval: float
    read_think: float
    incremental: bool = False
    payload_bytes: int = 1024

    def describe(self) -> str:
        """One-line human summary (used by the results book)."""
        return (
            f"{self.writes} writes every ~{self.write_interval:g}s, "
            f"{self.reads_per_client} reads/client with ~{self.read_think:g}s "
            f"think time"
        )


#: The standard profile axis: the same document under three read/write
#: mixes, spanning the regimes Section 3.3 argues pick different policies.
PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="read-heavy",
            writes=10, write_interval=1.0,
            reads_per_client=30, read_think=0.2,
        ),
        WorkloadProfile(
            name="balanced",
            writes=20, write_interval=0.5,
            reads_per_client=10, read_think=0.5,
        ),
        WorkloadProfile(
            name="write-heavy",
            writes=40, write_interval=0.25,
            reads_per_client=5, read_think=1.0,
        ),
    )
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a registered profile; raise ``KeyError`` with the catalog."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload profile {name!r}; "
            f"registered: {', '.join(sorted(PROFILES))}"
        ) from None


def run_profile(
    policy: ReplicationPolicy,
    profile: WorkloadProfile,
    n_caches: int,
    seed: int,
    pages: Optional[Dict[str, str]] = None,
    horizon: Optional[float] = None,
    fault_plan: Optional[str] = None,
    request_timeout: Optional[float] = None,
    request_retries: int = 0,
    n_readers_per_cache: int = 1,
    cohort_size: int = 1,
    scheduler: Optional[str] = None,
    backend: Union[str, Backend] = "sim",
    time_scale: float = 1.0,
) -> Deployment:
    """Drive ``profile`` over a fresh Fig. 2 tree under ``policy``.

    Builds the tree (one reader per cache plus the master), spawns the
    profile's writer and reader processes, runs the simulation to
    completion (or to ``horizon`` when set -- pull-based policies never
    quiesce on their own), drains the final lazy window, and returns the
    finished deployment for measurement.

    ``fault_plan`` names a registered :data:`repro.faults.FAULT_PLANS`
    entry; the plan is expanded against the tree's store addresses with
    an RNG forked from this run's seed (stable config-hash seeding) and
    executed by a timed :class:`~repro.faults.FaultInjector` attached as
    ``deployment.faults``.  ``request_timeout`` / ``request_retries``
    are passed to every browser so client operations survive outages.

    The scale knobs: ``n_readers_per_cache`` multiplies the reader
    population (historical default 1), ``cohort_size`` > 1 collapses
    each cache's readers into weighted cohort processes, and
    ``scheduler`` selects the simulator's event queue.  At the defaults
    the build and its fork order are byte-identical to the historical
    code path, so cached sweep results keep their keys.

    ``backend`` selects the substrate.  On ``"sim"`` (the default)
    everything above holds.  On a wall-clock backend (``"live"`` /
    ``"live-socket"``) the *same* workload generators -- same forked RNG
    streams, same operation sequences -- are driven by real threads via
    :func:`~repro.workload.generator.drive_live`, with every think time
    multiplied by ``time_scale`` so a profile calibrated in virtual
    seconds finishes quickly; ``horizon`` and ``fault_plan`` are
    virtual-time features and raise :class:`~repro.transport.backend.
    BackendError` there (fault plans on live backends run through the
    scenario scripts in :mod:`repro.faults.scenario`).  The caller owns
    live teardown via ``deployment.shutdown()``.
    """
    pages = pages if pages is not None else default_pages()
    backend_name = backend.name if isinstance(backend, Backend) else backend
    if backend_name != "sim":
        # Validate before building: a live build spawns threads (and, on
        # live-socket, real node processes) the caller would then leak.
        if horizon is not None:
            raise BackendError(
                "horizon is a virtual-time feature; live backends run "
                "the workload to completion"
            )
        if fault_plan is not None:
            raise BackendError(
                "timed fault plans are calibrated in virtual time; on "
                "live backends drive faults through repro.faults.scenario"
            )
    deployment = build_tree(
        policy=policy,
        n_caches=n_caches,
        n_readers_per_cache=n_readers_per_cache,
        pages=dict(pages),
        seed=seed,
        request_timeout=request_timeout,
        request_retries=request_retries,
        scheduler=scheduler,
        cohort_size=cohort_size,
        backend=backend,
    )
    sim = deployment.sim
    rng = sim.rng.fork("workload")
    writer = WriterWorkload(
        deployment.browsers["master"],
        pages=list(pages),
        rng=rng.fork("writer"),
        interval=profile.write_interval,
        operations=profile.writes,
        incremental=profile.incremental,
        payload_bytes=profile.payload_bytes,
    )
    workloads: List[object] = [writer]
    for name, browser in list(deployment.browsers.items()):
        if name == "master":
            continue
        if name in deployment.cohorts:
            workloads.append(
                CohortReaderWorkload(
                    browser,
                    pages=list(pages),
                    rng=rng.fork(name),
                    weight=deployment.cohorts[name],
                    mean_think=profile.read_think,
                    operations=profile.reads_per_client,
                    expand=(
                        lambda client_id=name:
                        deployment.expand_cohort(client_id)
                    ),
                )
            )
            continue
        workloads.append(
            ReaderWorkload(
                browser,
                pages=list(pages),
                rng=rng.fork(name),
                mean_think=profile.read_think,
                operations=profile.reads_per_client,
            )
        )
    if backend_name != "sim":
        drive_live(deployment, workloads, time_scale=time_scale)
        deployment.settle()
        if policy.transfer_instant is TransferInstant.LAZY:
            # Drain the final lazy window in real time, as the sim path
            # drains it in virtual time below.
            deployment.advance(2 * policy.lazy_interval)
            deployment.settle()
        return deployment
    if fault_plan is not None:
        # Forked *after* the workload RNG so fault-free sweeps keep their
        # historical fork order (and therefore their cached results).
        from repro.faults import FaultInjector, build_fault_plan

        plan = build_fault_plan(
            fault_plan,
            nodes=[store.address for store in deployment.site.stores()],
            rng=sim.rng.fork("faults"),
        )
        injector = FaultInjector(sim, deployment.network, plan)
        injector.start()
        deployment.faults = injector
    for index, workload in enumerate(workloads):
        Process(sim, workload.run(), name=f"wl-{index}")
    sim.run(until=horizon, max_events=10_000_000)
    if horizon is None:
        sim.run_until_idle()
        # Drain the final lazy window, if any.
        sim.run(until=sim.now + 2 * policy.lazy_interval)
    return deployment
