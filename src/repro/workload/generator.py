"""Client workload generators.

Workloads are :class:`~repro.sim.process.Process` generators driving
:class:`~repro.web.webobject.Browser` stubs: each operation is issued, its
future awaited, and the next operation follows after an exponential think
time.  All randomness comes from forked simulation RNGs (deterministic per
seed).
"""

from __future__ import annotations

import dataclasses
from typing import Generator, List, Optional, Sequence

from repro.replication.client import ReplicaError
from repro.sim.kernel import Simulator
from repro.sim.process import Delay, Process, WaitFor
from repro.sim.rng import SeededRng
from repro.web.webobject import Browser


class ZipfPagePicker:
    """Zipf-distributed page selection over a fixed page list."""

    def __init__(self, pages: Sequence[str], rng: SeededRng, skew: float = 1.0) -> None:
        if not pages:
            raise ValueError("pages must be non-empty")
        self.pages = list(pages)
        self.rng = rng
        self.weights = SeededRng.zipf_weights(len(self.pages), skew)

    def pick(self) -> str:
        """One page, rank-0 most popular."""
        return self.pages[self.rng.weighted_index(self.weights)]


@dataclasses.dataclass
class WorkloadStats:
    """What one workload process observed."""

    operations: int = 0
    errors: int = 0
    not_found: int = 0


class ReaderWorkload:
    """A browsing client: Zipf page reads with exponential think time."""

    def __init__(
        self,
        browser: Browser,
        pages: Sequence[str],
        rng: SeededRng,
        mean_think: float = 1.0,
        operations: int = 50,
        skew: float = 1.0,
    ) -> None:
        self.browser = browser
        self.picker = ZipfPagePicker(pages, rng.fork("pages"), skew)
        self.rng = rng
        self.mean_think = mean_think
        self.operations = operations
        self.stats = WorkloadStats()

    def run(self) -> Generator:
        """Generator body for :class:`~repro.sim.process.Process`."""
        for _ in range(self.operations):
            yield Delay(self.rng.exponential(self.mean_think))
            page = self.picker.pick()
            try:
                yield WaitFor(self.browser.read_page(page))
            except ReplicaError:
                self.stats.not_found += 1
            except Exception:
                self.stats.errors += 1
            self.stats.operations += 1
        return self.stats


class WriterWorkload:
    """A content master: periodic page updates.

    ``incremental=True`` appends (the paper's conference master, needing
    PRAM); ``False`` overwrites whole pages (the FIFO-friendly pattern).
    ``read_back`` makes the writer read after each write, which is what
    exercises read-your-writes.
    """

    def __init__(
        self,
        browser: Browser,
        pages: Sequence[str],
        rng: SeededRng,
        interval: float = 2.0,
        operations: int = 20,
        incremental: bool = True,
        read_back: bool = False,
        payload_bytes: int = 256,
    ) -> None:
        self.browser = browser
        self.pages = list(pages)
        self.rng = rng
        self.interval = interval
        self.operations = operations
        self.incremental = incremental
        self.read_back = read_back
        self.payload_bytes = payload_bytes
        self.stats = WorkloadStats()

    def _payload(self, index: int) -> str:
        filler = "x" * max(0, self.payload_bytes - 16)
        return f"<!--{index}-->{filler}"

    def run(self) -> Generator:
        """Generator body for :class:`~repro.sim.process.Process`."""
        for index in range(self.operations):
            yield Delay(self.rng.exponential(self.interval))
            page = self.rng.choice(self.pages)
            content = self._payload(index)
            try:
                if self.incremental:
                    yield WaitFor(self.browser.append_to_page(page, content))
                else:
                    yield WaitFor(self.browser.write_page(page, content))
                if self.read_back:
                    yield WaitFor(self.browser.read_page(page))
            except Exception:
                self.stats.errors += 1
            self.stats.operations += 1
        return self.stats


def drive(
    sim: Simulator,
    workloads: Sequence[object],
    until: Optional[float] = None,
    max_events: int = 10_000_000,
) -> List[Process]:
    """Spawn workload processes and run the simulation.

    Each workload must expose ``run()`` returning a generator.  With no
    deadline the simulation runs until all processes finish and the system
    quiesces.
    """
    processes = [
        Process(sim, workload.run(), name=f"workload-{index}")
        for index, workload in enumerate(workloads)
    ]
    sim.run(until=until, max_events=max_events)
    return processes
