"""Client workload generators.

Workloads are :class:`~repro.sim.process.Process` generators driving
:class:`~repro.web.webobject.Browser` stubs: each operation is issued, its
future awaited, and the next operation follows after an exponential think
time.  All randomness comes from forked simulation RNGs (deterministic per
seed).

Per-request randomness is drawn in vectorized per-epoch blocks
(:data:`EPOCH` operations at a time): think times via
:meth:`~repro.sim.rng.SeededRng.exponential_block`, page ranks via a
bisect over memoized cumulative Zipf weights.  Every block consumes its
RNG stream in exactly the order the historical one-draw-per-request code
did, so seeded results -- and therefore every cached sweep and golden --
are unchanged; only the per-request Python overhead is gone.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from bisect import bisect_right
from typing import Any, Generator, List, Optional, Sequence

from repro.replication.client import ReplicaError
from repro.sim.future import Future
from repro.sim.kernel import Simulator
from repro.sim.process import Delay, Process, WaitFor
from repro.sim.rng import SeededRng, zipf_cumulative

#: Operations whose randomness is pre-drawn in one block.  Bounds the
#: per-process buffer (a few hundred floats) while amortizing the
#: block-draw call overhead across an epoch of requests.
EPOCH = 256


class ZipfPagePicker:
    """Zipf-distributed page selection over a fixed page list.

    The cumulative weight table is memoized module-wide by
    ``(len(pages), skew)`` -- a population of identical clients shares
    one table instead of recomputing the harmonic sum per client.
    """

    def __init__(self, pages: Sequence[str], rng: SeededRng, skew: float = 1.0) -> None:
        if not pages:
            raise ValueError("pages must be non-empty")
        self.pages = list(pages)
        self.rng = rng
        self.skew = skew
        self.cumulative = zipf_cumulative(len(self.pages), skew)

    @property
    def weights(self) -> List[float]:
        """The (memoized) per-rank probabilities, rank 0 most popular."""
        return SeededRng.zipf_weights(len(self.pages), self.skew)

    def pick(self) -> str:
        """One page, rank-0 most popular.

        Draws one uniform variate and bisects the cumulative table --
        the same rank the historical linear scan produced from the same
        variate, in O(log n) instead of O(n).
        """
        last = len(self.pages) - 1
        target = self.rng.random() * self.cumulative[last]
        return self.pages[min(bisect_right(self.cumulative, target), last)]

    def pick_block(self, count: int) -> List[str]:
        """``count`` picks in one call (vectorized epoch draw).

        Stream-order identical to ``count`` single :meth:`pick` calls.
        """
        random = self.rng.random
        cumulative = self.cumulative
        pages = self.pages
        last = len(pages) - 1
        total = cumulative[last]
        return [
            pages[min(bisect_right(cumulative, random() * total), last)]
            for _ in range(count)
        ]


@dataclasses.dataclass
class WorkloadStats:
    """What one workload process observed."""

    operations: int = 0
    errors: int = 0
    not_found: int = 0


class ReaderWorkload:
    """A browsing client: Zipf page reads with exponential think time."""

    def __init__(
        self,
        browser: Browser,
        pages: Sequence[str],
        rng: SeededRng,
        mean_think: float = 1.0,
        operations: int = 50,
        skew: float = 1.0,
    ) -> None:
        self.browser = browser
        self.picker = ZipfPagePicker(pages, rng.fork("pages"), skew)
        self.rng = rng
        self.mean_think = mean_think
        self.operations = operations
        self.stats = WorkloadStats()

    def run(self) -> Generator:
        """Generator body for :class:`~repro.sim.process.Process`.

        Randomness is pre-drawn one epoch at a time.  Think times come
        from this workload's own stream and page picks from the picker's
        forked stream, so blocking each independently consumes both
        streams in the historical per-request order.
        """
        remaining = self.operations
        while remaining > 0:
            block = min(remaining, EPOCH)
            remaining -= block
            thinks = self.rng.exponential_block(self.mean_think, block)
            pages = self.picker.pick_block(block)
            for think, page in zip(thinks, pages):
                yield Delay(think)
                try:
                    yield WaitFor(self.browser.read_page(page))
                except ReplicaError:
                    self.stats.not_found += 1
                except Exception:
                    self.stats.errors += 1
                self.stats.operations += 1
        return self.stats


class WriterWorkload:
    """A content master: periodic page updates.

    ``incremental=True`` appends (the paper's conference master, needing
    PRAM); ``False`` overwrites whole pages (the FIFO-friendly pattern).
    ``read_back`` makes the writer read after each write, which is what
    exercises read-your-writes.
    """

    def __init__(
        self,
        browser: Browser,
        pages: Sequence[str],
        rng: SeededRng,
        interval: float = 2.0,
        operations: int = 20,
        incremental: bool = True,
        read_back: bool = False,
        payload_bytes: int = 256,
    ) -> None:
        self.browser = browser
        self.pages = list(pages)
        self.rng = rng
        self.interval = interval
        self.operations = operations
        self.incremental = incremental
        self.read_back = read_back
        self.payload_bytes = payload_bytes
        self.stats = WorkloadStats()

    def _payload(self, index: int) -> str:
        filler = "x" * max(0, self.payload_bytes - 16)
        return f"<!--{index}-->{filler}"

    def _draw_epoch(self, count: int) -> List[tuple]:
        """``count`` (think, page) pairs drawn in interleaved order.

        The writer historically alternated ``exponential`` and ``choice``
        on one stream per operation, so the pairs must be drawn
        interleaved -- not as two separate blocks -- to stay
        stream-identical.
        """
        exponential = self.rng.exponential
        choice = self.rng.choice
        interval = self.interval
        pages = self.pages
        return [(exponential(interval), choice(pages)) for _ in range(count)]

    def run(self) -> Generator:
        """Generator body for :class:`~repro.sim.process.Process`."""
        index = 0
        remaining = self.operations
        draws: List[tuple] = []
        while remaining > 0 or draws:
            if not draws:
                block = min(remaining, EPOCH)
                remaining -= block
                draws = self._draw_epoch(block)
                draws.reverse()  # consume via O(1) pops from the end
            think, page = draws.pop()
            yield Delay(think)
            content = self._payload(index)
            try:
                if self.incremental:
                    yield WaitFor(self.browser.append_to_page(page, content))
                else:
                    yield WaitFor(self.browser.write_page(page, content))
                if self.read_back:
                    yield WaitFor(self.browser.read_page(page))
            except Exception:
                self.stats.errors += 1
            self.stats.operations += 1
            index += 1
        return self.stats


def _drive_one_live(
    deployment: Any,
    generator: Generator,
    time_scale: float,
    op_timeout: float,
) -> Any:
    """Run one workload generator to completion on a live backend.

    The generator is resumed *on the dispatcher thread* (via
    ``deployment.call``) so every browser operation it issues originates
    from the protocol thread, exactly like scripted smoke traffic; this
    driver thread only sleeps out :class:`Delay` yields (scaled by
    ``time_scale``) and blocks on :class:`WaitFor` futures.
    """
    value: Any = None
    error: Optional[BaseException] = None
    while True:
        try:
            if error is not None:
                pending, error = error, None
                yielded = deployment.call(generator.throw, pending)
            else:
                yielded = deployment.call(generator.send, value)
        except StopIteration as stop:
            return stop.value
        value = None
        if isinstance(yielded, Future):
            yielded = WaitFor(yielded)
        if isinstance(yielded, Delay):
            time.sleep(max(0.0, yielded.seconds * time_scale))
        elif isinstance(yielded, WaitFor):
            try:
                value = deployment.wait(yielded.future, timeout=op_timeout)
            except Exception as exc:  # thrown into the generator, as in sim
                error = exc
        else:
            raise TypeError(
                f"workload generator yielded {yielded!r}; expected "
                f"Delay, WaitFor, or Future"
            )


def drive_live(
    deployment: Any,
    workloads: Sequence[object],
    time_scale: float = 1.0,
    op_timeout: float = 30.0,
) -> List[Any]:
    """Drive workload generators to completion on a wall-clock backend.

    The live counterpart of :func:`drive`: one driver thread per
    workload, each resuming its generator on the backend's dispatcher
    (see :func:`_drive_one_live`).  ``time_scale`` multiplies every
    ``Delay`` so a profile calibrated in virtual seconds can run in a
    fraction of the wall-clock time without changing its operation
    sequence; ``op_timeout`` bounds each individual ``WaitFor``.

    Returns the workloads' generator return values (their stats) in
    input order.  The first driver failure, if any, is re-raised after
    every thread has been joined.
    """
    results: List[Any] = [None] * len(workloads)
    errors: List[Optional[BaseException]] = [None] * len(workloads)

    def runner(index: int, workload: Any) -> None:
        """Thread body: drive one workload, box the result or error."""
        try:
            results[index] = _drive_one_live(
                deployment, workload.run(), time_scale, op_timeout
            )
        except BaseException as exc:  # re-raised by the joiner below
            errors[index] = exc

    threads = [
        threading.Thread(
            target=runner, args=(index, workload),
            name=f"wl-driver-{index}", daemon=True,
        )
        for index, workload in enumerate(workloads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for exc in errors:
        if exc is not None:
            raise exc
    return results


def drive(
    sim: Simulator,
    workloads: Sequence[object],
    until: Optional[float] = None,
    max_events: int = 10_000_000,
) -> List[Process]:
    """Spawn workload processes and run the simulation.

    Each workload must expose ``run()`` returning a generator.  With no
    deadline the simulation runs until all processes finish and the system
    quiesces.
    """
    processes = [
        Process(sim, workload.run(), name=f"workload-{index}")
        for index, workload in enumerate(workloads)
    ]
    sim.run(until=until, max_events=max_events)
    return processes
