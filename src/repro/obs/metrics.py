"""Named counters, gauges and histograms with plain-data snapshots.

A :class:`MetricsRegistry` is a flat namespace of metric instruments.
Instruments are cheap mutable cells (``__slots__``, no locks -- they
mutate on the protocol thread like the rest of the stack);
:meth:`MetricsRegistry.snapshot` renders the whole registry as plain
``{name: value}`` data that the :mod:`repro.exec.codec` serializes
as-is, so per-run metrics ride the sweep result transport and land in
the :class:`~repro.exec.ResultCache` next to the payloads they
describe.

The network transports' historical
:class:`~repro.net.network.NetworkStats` counters are mirrored into a
registry by :meth:`NetworkStats.bind`.  The mirror is *lazy*: counter
bumps are plain slotted-attribute writes, and the registry is brought
current by a collector callback when :meth:`MetricsRegistry.snapshot`
runs (see :meth:`add_collector`), so the per-datagram path pays nothing
for the export surface.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Union


class Counter:
    """A monotonically *intended* integer counter (resettable to zero)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the count (used by the NetworkStats mirror)."""
        self.value = value


class Gauge:
    """A point-in-time numeric value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Deliberately not a bucketed histogram: the sweep results already
    carry full sample arrays where distributions matter; this is the
    cheap always-on aggregate.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> Dict[str, float]:
        """The snapshot form of this histogram."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat namespace of named metric instruments.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterwards; asking for an existing name as
    a different instrument type is an error (silent aliasing would
    corrupt both series).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[[], None]] = []

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run before every :meth:`snapshot`.

        Collectors let hot-path components keep their counters in plain
        attributes (no per-increment mirroring) and publish them into the
        registry only when a snapshot is actually taken -- the
        :class:`~repro.net.network.NetworkStats` sync is the canonical
        user.  Registering the same callable twice is a no-op.
        """
        if collector not in self._collectors:
            self._collectors.append(collector)

    def _get(self, name: str, factory: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {factory.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def __contains__(self, name: str) -> bool:
        """Whether an instrument named ``name`` exists."""
        return name in self._metrics

    def __len__(self) -> int:
        """Number of registered instruments."""
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as plain, codec-serializable data.

        Counters and gauges map to their numeric value, histograms to
        their ``summary()`` dict.  Keys are sorted so the snapshot is a
        deterministic function of the registry contents.  Registered
        collectors run first, so lazily mirrored sources (the network
        stat counters) are current in the returned data.
        """
        for collector in self._collectors:
            collector()
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out
