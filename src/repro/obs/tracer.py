"""Structured event tracing, zero-cost when disabled.

One module-level slot, :data:`ACTIVE`, holds the installed tracer (or
``None``).  Every hook site in the stack guards its emission with
``if tracer.ACTIVE is not None`` -- one attribute load and an identity
check -- so an untraced run pays essentially nothing on its hot paths
(the bench gate in ``benchmarks/bench_obs.py`` pins this below 2%).

Timestamps are *passed in* by the hook site from its own
:class:`~repro.transport.interface.Clock`: virtual seconds under the
simulator, wall-clock seconds under the live loop.  The tracer never
reads a clock itself, which is what makes a seeded simulated run's
trace fully deterministic -- and therefore golden-pinnable and
bit-identical across sweep executors (the trace is built inside the
worker evaluating the point, wherever that worker runs).

Always check the live slot through the module (``tracer.ACTIVE``), not
through a ``from``-import -- the binding changes at install time.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional, Protocol

#: Environment variable enabling tracing inside sweep workers.  ``"1"``
#: (or any non-path truthy value) traces each point and records the
#: event count in the run manifest; a directory path additionally
#: writes one ``trace-<label>.jsonl`` file per point under it.
TRACE_ENV = "REPRO_TRACE"

#: The installed tracer; ``None`` means tracing is disabled and every
#: hook site short-circuits.  Mutate only through :func:`install` /
#: :func:`uninstall` / :func:`trace_run`.
ACTIVE: Optional["Tracer"] = None

#: Event keys reserved for the envelope; detail kwargs must not collide.
RESERVED_KEYS = ("t", "kind", "node", "obj")


class Tracer(Protocol):
    """What a hook site needs from an installed tracer."""

    def event(
        self,
        time: float,
        kind: str,
        node: Optional[str] = None,
        obj: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Record one structured event at ``time`` (the caller's clock)."""
        ...


def _plain(value: Any) -> Any:
    """Coerce one detail value to deterministic plain data.

    Scalars pass through; mappings and sequences recurse; anything else
    (enums, ids, records) becomes its ``str`` so traces serialize the
    same way under every executor and never hold object references.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=str) if isinstance(
            value, (set, frozenset)) else value
        return [_plain(item) for item in items]
    return str(value)


class RecordingTracer:
    """Collects events in memory as plain, JSONL-serializable dicts."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def event(
        self,
        time: float,
        kind: str,
        node: Optional[str] = None,
        obj: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Append one event; detail values are flattened to plain data."""
        record: Dict[str, Any] = {
            "t": float(time),
            "kind": kind,
            "node": node,
            "obj": obj,
        }
        for key, value in detail.items():
            record[key] = _plain(value)
        self.events.append(record)

    @contextlib.contextmanager
    def span(
        self,
        clock: Any,
        kind: str,
        node: Optional[str] = None,
        obj: Optional[str] = None,
        **detail: Any,
    ) -> Iterator[None]:
        """Record one event covering the enclosed block, with ``dur``.

        ``clock`` is anything with a ``now`` attribute (Simulator or
        LiveLoop); the event is stamped at entry time and carries the
        elapsed clock duration.
        """
        started = clock.now
        try:
            yield
        finally:
            self.event(started, kind, node=node, obj=obj,
                       dur=clock.now - started, **detail)

    def to_jsonl(self) -> str:
        """The whole trace as deterministic JSONL."""
        return events_jsonl(self.events)

    def write_jsonl(self, path: os.PathLike) -> None:
        """Persist the trace to ``path`` as JSONL."""
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.to_jsonl())

    def __len__(self) -> int:
        """Number of recorded events."""
        return len(self.events)


class NullTracer:
    """A tracer that drops everything (for API-compatible no-op wiring)."""

    def event(self, time: float, kind: str, node: Optional[str] = None,
              obj: Optional[str] = None, **detail: Any) -> None:
        """Discard the event."""

    @contextlib.contextmanager
    def span(self, clock: Any, kind: str, node: Optional[str] = None,
             obj: Optional[str] = None, **detail: Any) -> Iterator[None]:
        """Run the block; record nothing."""
        yield


def events_jsonl(events: List[Dict[str, Any]]) -> str:
    """Render a list of event dicts as canonical JSONL.

    Sorted keys and compact separators make the bytes a pure function
    of the event data -- the representation the golden trace test pins.
    """
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in events
    )


def install(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` as the active tracer (``None`` disables)."""
    global ACTIVE
    ACTIVE = tracer


def uninstall() -> None:
    """Disable tracing (hook sites return to the no-op fast path)."""
    install(None)


def enabled() -> bool:
    """Whether a tracer is currently installed."""
    return ACTIVE is not None


@contextlib.contextmanager
def trace_run() -> Iterator[RecordingTracer]:
    """Trace the enclosed block into a fresh :class:`RecordingTracer`.

    The previously installed tracer (usually ``None``) is restored on
    exit, so nested scopes compose: the innermost tracer owns the
    events emitted while it is active.
    """
    tracer = RecordingTracer()
    previous = ACTIVE
    install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


def env_trace_requested() -> bool:
    """Whether the :data:`TRACE_ENV` variable asks workers to trace."""
    return bool(os.environ.get(TRACE_ENV))


def env_trace_write(label: Any, tracer: RecordingTracer) -> None:
    """Persist one point's trace if :data:`TRACE_ENV` names a directory.

    With the variable set to a plain flag (``"1"``), only the event
    count is kept (it travels in the run manifest); a directory value
    gets one ``trace-<label>.jsonl`` per point.  Best-effort: telemetry
    must never fail a sweep point.
    """
    target = os.environ.get(TRACE_ENV, "")
    if target in ("", "0", "1", "true", "false"):
        return
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in str(label)
    )
    try:
        os.makedirs(target, exist_ok=True)
        tracer.write_jsonl(os.path.join(target, f"trace-{safe}.jsonl"))
    except OSError:
        pass
