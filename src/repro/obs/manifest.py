"""Run manifests: per-point sweep telemetry as JSONL under the cache.

Every cached :func:`~repro.exec.run_sweep` appends to one
``manifest.jsonl`` in the cache root: a ``point`` record per evaluated
point (wall time, peak RSS, cache hit/miss, executor name, traced-event
count, failure text) and a ``run`` record per sweep invocation with the
totals.  The file is telemetry, not results -- appends are best-effort,
wall times are nondeterministic, and nothing in the result-cache
keying touches it (entries live under per-fingerprint directories;
:meth:`~repro.exec.ResultCache.evict_stale` never removes it).

``python -m repro.obs summary`` renders the aggregation implemented by
:func:`summarize_manifest`; ``--check`` runs :func:`validate_manifest`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

#: File name of the manifest inside a result-cache root.
MANIFEST_NAME = "manifest.jsonl"

#: Required keys (and value types) of one ``point`` record.
_POINT_FIELDS = {
    "spec": str,
    "label": str,
    "status": str,
    "cache": str,
    "executor": str,
    "wall_s": (int, float),
    "peak_rss_kb": int,
    "events": int,
    "retries": int,
}

#: Required keys (and value types) of one ``run`` record.
_RUN_FIELDS = {
    "spec": str,
    "executor": str,
    "workers": int,
    "points": int,
    "computed": int,
    "hits": int,
    "failures": int,
    "wall_s": (int, float),
}


def point_record(
    spec: str,
    label: Any,
    status: str,
    cache: str,
    executor: str,
    wall_s: float,
    peak_rss_kb: int = 0,
    events: int = 0,
    retries: int = 0,
    worker: str = "",
    error: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one ``point`` manifest record (plain dict, JSON-ready).

    ``worker`` names the remote daemon that computed the point under
    the distributed executor; the key is emitted only when set, so
    local-executor manifests are unchanged.
    """
    record: Dict[str, Any] = {
        "rec": "point",
        "spec": spec,
        "label": str(label),
        "status": status,
        "cache": cache,
        "executor": executor,
        "wall_s": round(float(wall_s), 6),
        "peak_rss_kb": int(peak_rss_kb),
        "events": int(events),
        "retries": int(retries),
    }
    if worker:
        record["worker"] = str(worker)
    if error is not None:
        record["error"] = error
    return record


class RunManifest:
    """Append-only JSONL telemetry for sweep runs.

    Writes are best-effort (an unwritable manifest must never fail a
    sweep) and line-buffered-per-record, so concurrent sweeps sharing
    one cache interleave whole records rather than corrupt them.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)

    @classmethod
    def in_dir(cls, root: os.PathLike) -> "RunManifest":
        """The manifest living inside the cache root ``root``."""
        return cls(Path(root) / MANIFEST_NAME)

    def record(self, record: Dict[str, Any]) -> None:
        """Append one record as a JSON line (best-effort)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            pass

    def record_run(
        self,
        spec: str,
        executor: str,
        workers: int,
        points: int,
        computed: int,
        hits: int,
        failures: int,
        wall_s: float,
    ) -> None:
        """Append the per-invocation ``run`` totals record."""
        self.record({
            "rec": "run",
            "spec": spec,
            "executor": executor,
            "workers": int(workers),
            "points": int(points),
            "computed": int(computed),
            "hits": int(hits),
            "failures": int(failures),
            "wall_s": round(float(wall_s), 6),
        })

    def read(self) -> List[Dict[str, Any]]:
        """All records currently in the manifest (see :func:`load_manifest`)."""
        return load_manifest(self.path)


def load_manifest(path: os.PathLike) -> List[Dict[str, Any]]:
    """Parse a manifest file into its record dicts.

    Raises ``FileNotFoundError`` when the manifest does not exist;
    malformed lines surface as records tagged ``{"rec": "malformed"}``
    so :func:`validate_manifest` can report them with a line number.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                records.append(
                    {"rec": "malformed", "line": number, "detail": str(exc)}
                )
                continue
            if not isinstance(record, dict):
                record = {"rec": "malformed", "line": number,
                          "detail": "not a JSON object"}
            record.setdefault("line", number)
            records.append(record)
    return records


def _check_fields(record: Dict[str, Any], fields: Dict[str, Any]
                  ) -> List[str]:
    problems = []
    for key, types in fields.items():
        if key not in record:
            problems.append(f"missing key {key!r}")
        elif not isinstance(record[key], types) or isinstance(
                record[key], bool):
            problems.append(f"key {key!r} has wrong type "
                            f"{type(record[key]).__name__}")
    return problems


def validate_manifest(records: List[Dict[str, Any]]) -> List[str]:
    """Well-formedness errors of a loaded manifest (empty = valid).

    Every record must be a ``point`` or ``run`` record with the
    documented keys and types; ``python -m repro.obs summary --check``
    turns a non-empty return into exit code 1.
    """
    errors: List[str] = []
    for record in records:
        line = record.get("line", "?")
        kind = record.get("rec")
        if kind == "malformed":
            errors.append(f"line {line}: {record.get('detail')}")
        elif kind == "point":
            errors.extend(
                f"line {line}: {problem}"
                for problem in _check_fields(record, _POINT_FIELDS)
            )
            if record.get("status") not in ("ok", "failed"):
                errors.append(f"line {line}: bad status "
                              f"{record.get('status')!r}")
            if record.get("cache") not in ("hit", "miss"):
                errors.append(f"line {line}: bad cache tag "
                              f"{record.get('cache')!r}")
            if "worker" in record and not isinstance(record["worker"], str):
                errors.append(f"line {line}: key 'worker' has wrong type "
                              f"{type(record['worker']).__name__}")
        elif kind == "run":
            errors.extend(
                f"line {line}: {problem}"
                for problem in _check_fields(record, _RUN_FIELDS)
            )
        else:
            errors.append(f"line {line}: unknown record kind {kind!r}")
    return errors


def summarize_manifest(
    records: List[Dict[str, Any]],
    spec: Optional[str] = None,
    slowest: int = 5,
) -> Dict[str, Any]:
    """Aggregate manifest records into per-spec run-health statistics.

    Returns ``{"specs": {spec: stats}, "records": total}`` where each
    stats dict carries point counts (hits / computed / failed), wall
    time totals, peak RSS, traced-event totals, per-executor point
    counts, retry totals, per-worker attribution (``workers``: daemon
    name -> point/retry counts, filled by distributed sweeps), the
    ``slowest`` computed points and every failure.  Only ``point``
    records contribute; ``run`` records are invocation logs.
    """
    specs: Dict[str, Dict[str, Any]] = {}
    total = 0
    for record in records:
        if record.get("rec") != "point":
            if record.get("rec") == "run":
                total += 1
            continue
        total += 1
        name = record.get("spec", "?")
        if spec is not None and name != spec:
            continue
        stats = specs.setdefault(name, {
            "points": 0, "hits": 0, "computed": 0, "failed": 0,
            "wall_total_s": 0.0, "wall_max_s": 0.0,
            "peak_rss_kb": 0, "events": 0, "retries": 0,
            "executors": {}, "workers": {}, "slowest": [], "failures": [],
        })
        stats["points"] += 1
        wall = float(record.get("wall_s", 0.0))
        stats["wall_total_s"] += wall
        stats["wall_max_s"] = max(stats["wall_max_s"], wall)
        stats["peak_rss_kb"] = max(
            stats["peak_rss_kb"], int(record.get("peak_rss_kb", 0))
        )
        stats["events"] += int(record.get("events", 0))
        executor = record.get("executor", "?")
        stats["executors"][executor] = (
            stats["executors"].get(executor, 0) + 1
        )
        retries = int(record.get("retries", 0))
        stats["retries"] += retries
        worker = record.get("worker")
        if worker:
            entry = stats["workers"].setdefault(
                worker, {"points": 0, "retries": 0}
            )
            entry["points"] += 1
            entry["retries"] += retries
        if record.get("cache") == "hit":
            stats["hits"] += 1
        else:
            stats["computed"] += 1
            stats["slowest"].append((record.get("label", "?"), wall))
        if record.get("status") == "failed":
            stats["failed"] += 1
            error_text = (record.get("error") or "").strip()
            stats["failures"].append({
                "label": record.get("label", "?"),
                # The last traceback line is the exception itself.
                "error": error_text.splitlines()[-1] if error_text else "",
            })
    for stats in specs.values():
        stats["wall_mean_s"] = (
            stats["wall_total_s"] / stats["points"] if stats["points"]
            else 0.0
        )
        stats["slowest"] = sorted(
            stats["slowest"], key=lambda item: (-item[1], str(item[0]))
        )[:slowest]
    return {"specs": specs, "records": total}
