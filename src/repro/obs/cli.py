"""Command-line surface of the observability layer.

``python -m repro.obs summary --cache-dir .sweep-cache`` renders
per-spec run-health statistics from the run manifest the cached sweeps
append to (``--check`` additionally validates its well-formedness and
fails on malformed records); ``slow --top N`` lists the slowest
computed points; ``trace FILE`` pretty-prints a JSONL trace written by
:func:`repro.obs.tracer.RecordingTracer`, with ``--kind`` / ``--node``
/ ``--object`` filters.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.manifest import (
    MANIFEST_NAME,
    load_manifest,
    summarize_manifest,
    validate_manifest,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect run manifests and event traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="per-spec timing / cache-hit / failure statistics"
    )
    _add_manifest_arguments(summary)
    summary.add_argument(
        "--check", action="store_true",
        help="also validate manifest well-formedness; exit 1 on errors",
    )

    slow = sub.add_parser(
        "slow", help="slowest computed points across the manifest"
    )
    _add_manifest_arguments(slow)
    slow.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many points to list (default 10)",
    )

    trace = sub.add_parser(
        "trace", help="pretty-print (and filter) a JSONL event trace"
    )
    trace.add_argument("path", help="trace file (JSONL, one event per line)")
    trace.add_argument(
        "--kind", default=None,
        help="only events whose kind starts with this prefix "
             "(e.g. net, repl.write)",
    )
    trace.add_argument("--node", default=None,
                       help="only events at this node")
    trace.add_argument("--object", default=None, dest="obj",
                       help="only events about this object key")
    trace.add_argument("--limit", type=int, default=0, metavar="N",
                       help="stop after N matching events (default: all)")
    return parser


def _add_manifest_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"result-cache directory holding {MANIFEST_NAME}",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="explicit manifest path (overrides --cache-dir)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="NAME",
        help="restrict to one sweep spec name",
    )


def _manifest_path(args: argparse.Namespace) -> Optional[Path]:
    if args.manifest is not None:
        return Path(args.manifest)
    if args.cache_dir is not None:
        return Path(args.cache_dir) / MANIFEST_NAME
    return None


def _load(args: argparse.Namespace) -> Optional[List[Dict[str, Any]]]:
    path = _manifest_path(args)
    if path is None:
        print("pass --cache-dir DIR or --manifest PATH", file=sys.stderr)
        return None
    try:
        return load_manifest(path)
    except OSError as exc:
        print(f"cannot read manifest {path}: {exc}", file=sys.stderr)
        return None


def _print_summary(summary: Dict[str, Any]) -> None:
    if not summary["specs"]:
        print("no point records in manifest")
        return
    for name in sorted(summary["specs"]):
        stats = summary["specs"][name]
        print(f"sweep {name}: {stats['points']} points "
              f"({stats['hits']} cached, {stats['computed']} computed, "
              f"{stats['failed']} failed)")
        print(f"  wall: total {stats['wall_total_s']:.3f}s  "
              f"mean {stats['wall_mean_s']:.3f}s  "
              f"max {stats['wall_max_s']:.3f}s")
        print(f"  peak rss: {stats['peak_rss_kb']} KB  "
              f"events traced: {stats['events']}")
        executors = ", ".join(
            f"{executor}({count})"
            for executor, count in sorted(stats["executors"].items())
        )
        print(f"  executors: {executors}")
        if stats.get("workers"):
            # Distributed sweeps: per-daemon point counts and retries.
            workers = ", ".join(
                f"{name}({entry['points']} points, "
                f"{entry['retries']} retries)"
                for name, entry in sorted(stats["workers"].items())
            )
            print(f"  workers: {workers}")
        if stats.get("retries"):
            print(f"  retries: {stats['retries']} task re-dispatches "
                  "after worker loss")
        if stats["slowest"]:
            print("  slowest computed points:")
            for label, wall in stats["slowest"]:
                print(f"    {wall:8.3f}s  {label}")
        for failure in stats["failures"]:
            print(f"  FAILED {failure['label']}: {failure['error']}")


def _cmd_summary(args: argparse.Namespace) -> int:
    records = _load(args)
    if records is None:
        return 2
    _print_summary(summarize_manifest(records, spec=args.spec))
    if args.check:
        errors = validate_manifest(records)
        if errors:
            print(f"manifest INVALID ({len(errors)} problems):",
                  file=sys.stderr)
            for error in errors[:20]:
                print(f"  {error}", file=sys.stderr)
            return 1
        print(f"manifest OK ({len(records)} records)")
    return 0


def _cmd_slow(args: argparse.Namespace) -> int:
    records = _load(args)
    if records is None:
        return 2
    rows = [
        (float(record.get("wall_s", 0.0)), record.get("spec", "?"),
         record.get("label", "?"), record.get("executor", "?"))
        for record in records
        if record.get("rec") == "point" and record.get("cache") == "miss"
        and (args.spec is None or record.get("spec") == args.spec)
    ]
    rows.sort(key=lambda row: (-row[0], row[1], row[2]))
    if not rows:
        print("no computed points in manifest")
        return 0
    for wall, spec_name, label, executor in rows[:max(1, args.top)]:
        print(f"{wall:8.3f}s  {spec_name}  {label}  [{executor}]")
    return 0


def _format_event(event: Dict[str, Any]) -> str:
    head = f"t={event.get('t', 0.0):<12.6f} {event.get('kind', '?'):<16}"
    parts = []
    if event.get("node") is not None:
        parts.append(f"node={event['node']}")
    if event.get("obj") is not None:
        parts.append(f"obj={event['obj']}")
    for key in sorted(event):
        if key in ("t", "kind", "node", "obj"):
            continue
        parts.append(f"{key}={event[key]}")
    return head + " " + " ".join(parts)


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        lines = Path(args.path).read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        print(f"cannot read trace {args.path}: {exc}", file=sys.stderr)
        return 2
    shown = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            print(f"(malformed line skipped: {line[:60]})", file=sys.stderr)
            continue
        if args.kind and not str(event.get("kind", "")).startswith(args.kind):
            continue
        if args.node and event.get("node") != args.node:
            continue
        if args.obj and event.get("obj") != args.obj:
            continue
        print(_format_event(event))
        shown += 1
        if args.limit and shown >= args.limit:
            break
    print(f"({shown} events)", file=sys.stderr)
    return 0


def main(argv: List[str]) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "summary":
        return _cmd_summary(args)
    if args.command == "slow":
        return _cmd_slow(args)
    return _cmd_trace(args)
