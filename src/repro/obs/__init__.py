"""Unified observability: tracing, metrics, and run-manifest telemetry.

The three pillars, each usable on its own:

- :mod:`repro.obs.tracer` -- a zero-cost-when-disabled structured event
  tracer.  Hook sites across the stack (sim kernel, both network
  transports, the four replication-engine components, the fault
  injector) emit events only while a tracer is installed in the
  module-level :data:`~repro.obs.tracer.ACTIVE` slot; with the slot
  empty the hot paths pay one ``is not None`` check.  Timestamps come
  from the caller's :class:`~repro.transport.interface.Clock`, so a
  simulated run's trace is deterministic (and golden-pinnable) while a
  live run's trace carries wall-clock seconds.
- :mod:`repro.obs.metrics` -- a registry of named counters, gauges and
  histograms whose snapshots are plain data: they ride the
  :mod:`repro.exec.codec` result transport and land in the
  :class:`~repro.exec.ResultCache` next to sweep payloads.  The network
  transports' :class:`~repro.net.network.NetworkStats` counters mirror
  into one of these registries behind a compatibility shim.
- :mod:`repro.obs.manifest` -- per-point sweep telemetry (wall time,
  peak RSS, cache hit/miss, executor name, traced-event count) appended
  as JSONL under the result-cache directory by
  :func:`~repro.exec.run_sweep`, surfaced by ``python -m repro.obs``
  (``summary`` / ``trace`` / ``slow``) and by the results book's
  opt-in run-health appendix.
"""

from repro.obs.manifest import (
    MANIFEST_NAME,
    RunManifest,
    load_manifest,
    summarize_manifest,
    validate_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    ACTIVE,
    TRACE_ENV,
    NullTracer,
    RecordingTracer,
    Tracer,
    enabled,
    events_jsonl,
    install,
    trace_run,
    uninstall,
)

__all__ = [
    "ACTIVE",
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_NAME",
    "MetricsRegistry",
    "NullTracer",
    "RecordingTracer",
    "RunManifest",
    "TRACE_ENV",
    "Tracer",
    "enabled",
    "events_jsonl",
    "install",
    "load_manifest",
    "summarize_manifest",
    "trace_run",
    "uninstall",
    "validate_manifest",
]
