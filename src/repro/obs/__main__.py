"""``python -m repro.obs`` dispatch."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
