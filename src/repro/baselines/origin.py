"""The baseline origin Web server.

Speaks a minimal HTTP-like protocol: ``GET`` with optional
if-modified-since, ``PUT`` to replace a page.  Pages are modified "only by
their owner", the assumption of classic Web cache coherence the paper
quotes.
"""

from __future__ import annotations

import collections
from typing import Optional

from repro.comm.endpoint import CommunicationObject
from repro.comm.message import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.web.document import WebDocument

GET = "http_get"
PUT = "http_put"
OK = "http_200"
NOT_MODIFIED = "http_304"
NOT_FOUND = "http_404"
CREATED = "http_201"


class HttpOrigin:
    """Authoritative server for a set of pages."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str = "origin",
        pages: Optional[dict] = None,
    ) -> None:
        self.sim = sim
        self.address = address
        self.document = WebDocument(pages=pages, clock=lambda: sim.now)
        self.comm = CommunicationObject(sim, network, address)
        self.comm.set_handler(self._on_message)
        self.counters: collections.Counter = collections.Counter()

    def _on_message(self, src: str, message: Message) -> None:
        if message.kind == GET:
            self._on_get(src, message)
        elif message.kind == PUT:
            self._on_put(src, message)

    def _on_get(self, src: str, message: Message) -> None:
        self.counters["get"] += 1
        name = message.body["page"]
        ims = message.body.get("if_modified_since")
        page = self.document.pages.get(name)
        if page is None:
            self.counters["404"] += 1
            self.comm.reply(src, message.reply(NOT_FOUND, {"page": name}))
            return
        if ims is not None and page.last_modified <= ims:
            self.counters["304"] += 1
            self.comm.reply(
                src,
                message.reply(
                    NOT_MODIFIED,
                    {"page": name, "last_modified": page.last_modified},
                ),
            )
            return
        self.counters["200"] += 1
        self.comm.reply(src, message.reply(OK, {"page_data": page.to_dict()}))

    def _on_put(self, src: str, message: Message) -> None:
        self.counters["put"] += 1
        name = message.body["page"]
        content = message.body.get("content", "")
        if message.body.get("append"):
            self.document.append_to_page(name, content)
        else:
            self.document.write_page(name, content)
        page = self.document.pages[name]
        self.comm.reply(
            src,
            message.reply(
                CREATED,
                {"page": name, "version": page.version,
                 "last_modified": page.last_modified},
            ),
        )

    def current_version(self, name: str) -> int:
        """Authoritative version of a page (0 when absent); staleness probe."""
        page = self.document.pages.get(name)
        return page.version if page is not None else 0
