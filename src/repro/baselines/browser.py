"""The baseline browser client."""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.baselines import origin as http
from repro.comm.endpoint import CommunicationObject
from repro.comm.message import Message
from repro.net.network import Network
from repro.sim.future import Future
from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class FetchResult:
    """Outcome of a baseline page fetch."""

    page: str
    found: bool
    version: int
    last_modified: float
    content: str
    latency: float


class HttpBrowser:
    """A client speaking the baseline protocol to a proxy (or origin)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        server: str,
    ) -> None:
        self.sim = sim
        self.address = address
        self.server = server
        self.comm = CommunicationObject(sim, network, address)
        self.comm.set_handler(lambda src, msg: None)
        #: (kind, latency) samples, mirroring the framework client's metric.
        self.op_latencies: List[Tuple[str, float]] = []

    def get(self, page: str) -> Future:
        """Fetch a page; resolves with a :class:`FetchResult`."""
        started = self.sim.now
        result: Future = Future()
        reply_future = self.comm.request(
            self.server, Message(http.GET, {"page": page})
        )

        def on_reply(resolved: Future) -> None:
            try:
                reply = resolved.result()
            except BaseException as exc:
                result.set_error(exc)
                return
            latency = self.sim.now - started
            self.op_latencies.append(("read", latency))
            if reply.kind == http.OK:
                data = reply.body["page_data"]
                result.set_result(
                    FetchResult(
                        page=page,
                        found=True,
                        version=int(data.get("version", 0)),
                        last_modified=float(data.get("last_modified", 0.0)),
                        content=data.get("content", ""),
                        latency=latency,
                    )
                )
            else:
                result.set_result(
                    FetchResult(
                        page=page,
                        found=False,
                        version=0,
                        last_modified=0.0,
                        content="",
                        latency=latency,
                    )
                )

        reply_future.add_callback(on_reply)
        return result

    def put(self, page: str, content: str, append: bool = False) -> Future:
        """Replace (or append to) a page at the origin; resolves with the
        new version number."""
        started = self.sim.now
        result: Future = Future()
        reply_future = self.comm.request(
            self.server,
            Message(http.PUT, {"page": page, "content": content,
                               "append": append}),
        )

        def on_reply(resolved: Future) -> None:
            try:
                reply = resolved.result()
            except BaseException as exc:
                result.set_error(exc)
                return
            self.op_latencies.append(("write", self.sim.now - started))
            result.set_result(int(reply.body.get("version", 0)))

        reply_future.add_callback(on_reply)
        return result
