"""The baseline proxy cache.

Implements the two coherence schemes the paper describes for the 1998 Web
(Section 1) plus a pass-through mode:

- ``VALIDATE``: on every hit, revalidate with the origin using
  if-modified-since; "provided the caching and update times are known
  correctly, this scheme never returns an outdated page".
- ``TTL``: "a page that has just been cached remains valid until some
  expiration time"; may serve stale pages.
- ``NONE``: no caching; every request forwarded.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
from typing import Dict, Optional

from repro.baselines import origin as http
from repro.comm.endpoint import CommunicationObject
from repro.comm.message import Message
from repro.net.network import Network
from repro.sim.future import Future
from repro.sim.kernel import Simulator
from repro.web.page import Page


class CacheMode(enum.Enum):
    """Proxy coherence scheme."""

    VALIDATE = "validate"
    TTL = "ttl"
    NONE = "none"


@dataclasses.dataclass
class _Entry:
    page: Page
    fetched_at: float


class HttpProxy:
    """A site-wide proxy cache between browsers and the origin."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        upstream: str,
        mode: CacheMode = CacheMode.VALIDATE,
        ttl: float = 30.0,
    ) -> None:
        self.sim = sim
        self.address = address
        self.upstream = upstream
        self.mode = mode
        self.ttl = ttl
        self.comm = CommunicationObject(sim, network, address)
        self.comm.set_handler(self._on_message)
        self.cache: Dict[str, _Entry] = {}
        self.counters: collections.Counter = collections.Counter()

    # -- request handling ------------------------------------------------------

    def _on_message(self, src: str, message: Message) -> None:
        if message.kind == http.GET:
            self._on_get(src, message)
        elif message.kind == http.PUT:
            # Writes pass straight through to the origin.
            self._forward_put(src, message)

    def _on_get(self, src: str, message: Message) -> None:
        name = message.body["page"]
        entry = self.cache.get(name)
        if self.mode is CacheMode.NONE or entry is None:
            self.counters["miss"] += 1
            self._fetch(src, message, name, ims=None)
            return
        if self.mode is CacheMode.TTL:
            if self.sim.now - entry.fetched_at <= self.ttl:
                self.counters["hit"] += 1
                self._serve(src, message, entry.page)
            else:
                self.counters["expired"] += 1
                self._fetch(src, message, name, ims=entry.page.last_modified)
            return
        # VALIDATE: always revalidate with if-modified-since.
        self.counters["validate"] += 1
        self._fetch(src, message, name, ims=entry.page.last_modified)

    def _serve(self, src: str, request: Message, page: Page) -> None:
        self.comm.reply(
            src, request.reply(http.OK, {"page_data": page.to_dict()})
        )

    def _fetch(
        self, src: str, request: Message, name: str, ims: Optional[float]
    ) -> None:
        body = {"page": name}
        if ims is not None:
            body["if_modified_since"] = ims
        self.counters["upstream_get"] += 1
        upstream_reply = self.comm.request(
            self.upstream, Message(http.GET, body)
        )

        def on_reply(resolved: Future) -> None:
            try:
                reply = resolved.result()
            except BaseException:
                self.comm.reply(
                    src, request.reply(http.NOT_FOUND, {"page": name})
                )
                return
            if reply.kind == http.OK:
                page = Page.from_dict(reply.body["page_data"])
                if self.mode is not CacheMode.NONE:
                    self.cache[name] = _Entry(page=page, fetched_at=self.sim.now)
                self._serve(src, request, page)
            elif reply.kind == http.NOT_MODIFIED:
                entry = self.cache[name]
                entry.fetched_at = self.sim.now
                self._serve(src, request, entry.page)
            else:
                self.cache.pop(name, None)
                self.comm.reply(
                    src,
                    Message(reply.kind, dict(reply.body),
                            reply_to=request.msg_id),
                )

        upstream_reply.add_callback(on_reply)

    def _forward_put(self, src: str, message: Message) -> None:
        self.counters["put_forward"] += 1
        upstream_reply = self.comm.request(
            self.upstream, Message(http.PUT, dict(message.body))
        )

        def on_reply(resolved: Future) -> None:
            try:
                reply = resolved.result()
            except BaseException:
                self.comm.reply(
                    src, message.reply(http.NOT_FOUND, dict(message.body))
                )
                return
            self.comm.reply(
                src,
                Message(reply.kind, dict(reply.body), reply_to=message.msg_id),
            )

        upstream_reply.add_callback(on_reply)

    # -- introspection -------------------------------------------------------------

    def hit_ratio(self) -> float:
        """Fraction of GETs served without contacting the origin."""
        hits = self.counters["hit"]
        total = hits + self.counters["miss"] + self.counters["expired"] + \
            self.counters["validate"]
        return hits / total if total else 0.0
