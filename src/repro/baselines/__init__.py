"""Classical Web caching baselines (S12).

The status quo the paper argues against (Section 1): one global caching
strategy for every page.  Implemented over the same simulated network as
the framework so experiment X3 can compare like with like:

- **validation caching** -- every proxy hit revalidates with an
  if-modified-since round trip (the "never returns an outdated page"
  scheme);
- **TTL caching** -- entries are assumed valid until an expiration time
  (the weaker scheme that can serve stale pages);
- **no caching** -- every read goes to the origin.
"""

from repro.baselines.origin import HttpOrigin
from repro.baselines.proxy import CacheMode, HttpProxy
from repro.baselines.browser import HttpBrowser

__all__ = ["CacheMode", "HttpBrowser", "HttpOrigin", "HttpProxy"]
