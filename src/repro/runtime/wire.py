"""Socket framing for the multi-process live runtime.

Every byte between the hub and a store node travels as a length-prefixed
*frame*: a 4-byte big-endian payload length followed by the payload,
which is one :mod:`repro.exec.codec`-encoded dict ``{"kind": ..., "body":
{...}}``.  Plain protocol fields ride the codec's native tags; rich
objects (a :class:`~repro.comm.message.Message`, a trace event) ride its
pickle-frame fallback, so the one deterministic codec from the sweep
transport is also the wire format here (ROADMAP: one wire layer, two
uses).

Frame kinds (the complete vocabulary; the store runtime and the
distributed sweep executor share the handshake/liveness frames):

- ``hello`` / ``welcome`` -- node registration handshake (name + pid;
  sweep workers additionally advertise their ``slots`` capacity);
- ``data`` -- one datagram (src, dst, payload, size, reliability class);
- ``trace`` -- one coherence-trace event, streamed eagerly so a node's
  history survives a SIGKILL;
- ``call`` / ``reply`` -- hub-to-node RPC (version probes, subscribe,
  shutdown-adjacent control), correlated by ``call_id``;
- ``next`` / ``task`` / ``wait`` -- pull-based sweep dispatch: an idle
  worker requests work, the hub answers with one task or a backoff
  delay (:mod:`repro.exec.distributed` / :mod:`repro.exec.worker`);
- ``result`` -- one finished sweep point: codec-encoded payload bytes
  (digest-protected) plus worker-side telemetry;
- ``heartbeat`` -- node liveness beats for the registry;
- ``bye`` -- orderly goodbye before close.

:class:`FrameChannel` wraps a connected socket with a send lock (the
node's dispatcher, heartbeat thread and reader may interleave sends) and
partial-read-safe receive.  :func:`connect_with_backoff` retries a
refused/absent listener with exponential backoff, which is how a node
races its hub's bind without an external barrier.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple, Union

# NOTE: repro.exec.codec is imported inside send/recv, not here.  The
# exec package's own init imports this module (via the distributed
# executor), so a module-level import back into repro.exec would make
# the two packages' initialization order matter; the function-level
# import is a sys.modules hit after the first frame.

#: 4-byte big-endian frame length prefix.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload; a longer length prefix means a
#: corrupt or hostile stream, not a legitimate message.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Either a Unix-domain socket path or a ``(host, port)`` TCP endpoint.
Address = Union[str, Tuple[str, int]]


class WireError(ConnectionError):
    """A frame could not be read or written (peer gone, stream corrupt)."""


def format_address(address: Address) -> str:
    """Render an address for argv/log transport (``unix:`` / ``tcp:``)."""
    if isinstance(address, str):
        return f"unix:{address}"
    host, port = address
    return f"tcp:{host}:{int(port)}"


def parse_address(text: str) -> Address:
    """Inverse of :func:`format_address`."""
    scheme, _, rest = text.partition(":")
    if scheme == "unix" and rest:
        return rest
    if scheme == "tcp" and rest:
        host, _, port = rest.rpartition(":")
        if host and port.isdigit():
            return (host, int(port))
    raise ValueError(f"unparseable wire address {text!r}")


def _make_socket(address: Address) -> socket.socket:
    family = socket.AF_UNIX if isinstance(address, str) else socket.AF_INET
    return socket.socket(family, socket.SOCK_STREAM)


def listen(address: Address, backlog: int = 16) -> socket.socket:
    """Bind and listen on ``address`` (stale Unix paths are unlinked)."""
    if isinstance(address, str) and os.path.exists(address):
        os.unlink(address)
    sock = _make_socket(address)
    if not isinstance(address, str):
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(address)
    sock.listen(backlog)
    return sock


def connect_with_backoff(
    address: Address,
    timeout: float = 10.0,
    base_delay: float = 0.01,
    max_delay: float = 0.25,
    on_attempt: Optional[Callable[[int], None]] = None,
) -> socket.socket:
    """Connect to ``address``, retrying a not-yet-listening peer.

    Attempts are spaced by exponential backoff (``base_delay`` doubling
    up to ``max_delay``) until ``timeout`` wall seconds have passed; each
    attempt index is reported to ``on_attempt`` (tests count retries).
    Raises :class:`WireError` when the deadline expires.
    """
    deadline = time.monotonic() + timeout
    delay = base_delay
    attempt = 0
    while True:
        attempt += 1
        if on_attempt is not None:
            on_attempt(attempt)
        sock = _make_socket(address)
        try:
            sock.connect(address)
            return sock
        except OSError as exc:
            sock.close()
            if time.monotonic() + delay > deadline:
                raise WireError(
                    f"could not connect to {format_address(address)} "
                    f"after {attempt} attempts: {exc}"
                ) from exc
        time.sleep(delay)
        delay = min(delay * 2, max_delay)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on a clean mid-message EOF."""
    chunks = bytearray()
    while len(chunks) < count:
        try:
            chunk = sock.recv(count - len(chunks))
        except OSError:
            return None
        if not chunk:
            return None
        chunks += chunk
    return bytes(chunks)


class FrameChannel:
    """One framed, thread-safe connection end.

    ``send`` may be called from any thread (a lock serializes writers, so
    a heartbeat never interleaves bytes into a data frame); ``recv`` must
    be called from a single reader thread, as on both ends of this
    protocol.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()
        self._closed = False
        #: Framed bytes written/read on this channel (headers included).
        #: The distributed sweep executor folds these into its
        #: ``wire_bytes`` transport accounting; counters survive close.
        self.sent_bytes = 0
        self.recv_bytes = 0

    def send(self, kind: str, **body: Any) -> None:
        """Encode and write one ``kind`` frame; raises on a dead peer."""
        from repro.exec.codec import encode_result

        blob = encode_result({"kind": kind, "body": body})
        if len(blob) > MAX_FRAME_BYTES:
            raise WireError(f"frame {kind!r} exceeds {MAX_FRAME_BYTES} bytes")
        with self._send_lock:
            if self._closed:
                raise WireError("channel closed")
            try:
                self.sock.sendall(_HEADER.pack(len(blob)) + blob)
            except OSError as exc:
                raise WireError(f"peer gone while sending {kind!r}") from exc
            self.sent_bytes += _HEADER.size + len(blob)

    def recv(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Read one frame; ``None`` on EOF (peer closed or was killed)."""
        from repro.exec.codec import decode_result

        header = _recv_exact(self.sock, _HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise WireError(f"oversized frame ({length} bytes): corrupt peer")
        blob = _recv_exact(self.sock, length)
        if blob is None:
            return None
        self.recv_bytes += _HEADER.size + length
        frame = decode_result(blob)
        return frame["kind"], frame["body"]

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
