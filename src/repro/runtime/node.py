"""Store-node process entry point: ``python -m repro.runtime.node``.

One store of a distributed shared object, running in its own OS process.
The node connects back to its hub (retrying with backoff, so spawn order
never matters), assembles the exact same ``LocalObject`` composition the
in-process backends build -- a :class:`~repro.runtime.live.LiveLoop`
dispatcher, the replication engine, a :class:`WebDocument` semantics
object -- and bridges its transport over one framed socket:

- outgoing datagrams become ``data`` frames; the hub routes them through
  its :class:`~repro.runtime.live.LiveNetwork` send path, so latency,
  loss, partitions and every stats counter are applied in exactly one
  place;
- incoming ``data`` frames are submitted to the local dispatcher, which
  is the node's single protocol thread (same threading discipline as the
  live-thread backend);
- trace events are streamed to the hub *eagerly* (a ``trace`` frame per
  event, written before any datagram the same callback sends), so the
  recorded history is complete even when the process is SIGKILLed the
  next instant;
- after every handled frame the node atomically checkpoints its replica
  state, which is what lets a re-spawned process resume as the same
  replica (``--restore``) with semantics matching the in-memory backends,
  where a crashed node's engine state survives in the hub process.

A heartbeat thread beats the hub's registry every ``heartbeat_interval``
seconds; the main thread is the frame reader and exits on ``bye`` or hub
EOF.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from typing import Any, Dict, List, Optional

from repro.coherence.trace import TraceEvent, TraceRecorder
from repro.core.interfaces import Role
from repro.core.local_object import LocalObject
from repro.exec.codec import decode_result, encode_result
from repro.replication.engine import StoreReplicationObject
from repro.runtime.live import LiveLoop
from repro.runtime.wire import (
    FrameChannel,
    WireError,
    connect_with_backoff,
    parse_address,
)
from repro.web.document import WebDocument


class NodeTransport:
    """The node-side :class:`~repro.transport.interface.Transport`.

    Exactly one address (this store) registers locally; every outgoing
    datagram is framed to the hub, which owns routing, fault gating and
    statistics.  Incoming datagrams are injected by the node runtime via
    :meth:`deliver` on the dispatcher thread.
    """

    def __init__(self, channel: FrameChannel) -> None:
        self.channel = channel
        self._handlers: Dict[str, Any] = {}

    def register(self, node: str, handler: Any) -> None:
        """Attach the local store's receive handler."""
        self._handlers[node] = handler

    def unregister(self, node: str) -> None:
        """Detach the local store."""
        self._handlers.pop(node, None)

    def send(
        self,
        src: str,
        dst: str,
        payload: object,
        size_bytes: int = 0,
        reliable: bool = True,
    ) -> None:
        """Frame one datagram to the hub for routing."""
        self.channel.send(
            "data",
            src=src,
            dst=dst,
            payload=payload,
            size=int(size_bytes),
            reliable=bool(reliable),
        )

    def multicast(
        self,
        src: str,
        dsts: Any,
        payload: object,
        size_bytes: int = 0,
        reliable: bool = True,
    ) -> None:
        """Send the same payload to every destination (skipping ``src``)."""
        for dst in dsts:
            if dst != src:
                self.send(src, dst, payload, size_bytes=size_bytes,
                          reliable=reliable)

    def deliver(self, dst: str, src: str, payload: object,
                size_bytes: int) -> None:
        """Hand an incoming datagram to the registered handler, if any."""
        handler = self._handlers.get(dst)
        if handler is not None:
            handler(src, payload, size_bytes)


class _ForwardingList(List[TraceEvent]):
    """A trace-event list whose appends also stream to the hub."""

    def __init__(self, channel: FrameChannel) -> None:
        super().__init__()
        self._channel = channel

    def append(self, event: TraceEvent) -> None:
        super().append(event)
        self._channel.send("trace", event=event)


class ForwardingTraceRecorder(TraceRecorder):
    """A recorder that forwards every event to the hub as it is recorded.

    Events are framed on the same socket, from the same dispatcher
    thread, *before* any datagram the recording callback sends next --
    so the hub appends them to its shared recorder in the exact per-lane
    order the in-process backends would produce.
    """

    def __init__(self, channel: FrameChannel) -> None:
        super().__init__()
        self.events = _ForwardingList(channel)


class NodeRuntime:
    """Everything one store-node process runs: loop, store, wire bridge."""

    def __init__(
        self,
        name: str,
        channel: FrameChannel,
        spec: Dict[str, Any],
        restore_path: Optional[str] = None,
    ) -> None:
        self.name = name
        self.channel = channel
        self.spec = spec
        self.loop = LiveLoop(seed=spec["seed"])
        self.transport = NodeTransport(channel)
        self.trace = ForwardingTraceRecorder(channel)
        self.checkpoint_path = spec.get("checkpoint_path")
        document = WebDocument(clock=lambda: self.loop.now)
        if spec.get("semantics_state") is not None:
            document.restore(spec["semantics_state"])
        self.engine = StoreReplicationObject(
            policy=spec["policy"],
            role=Role(spec["role"]),
            parent=spec.get("parent"),
            trace=self.trace,
            allowed_writer=spec.get("allowed_writer"),
        )
        self.local = LocalObject(
            sim=self.loop,
            network=self.transport,
            address=spec["address"],
            role=Role(spec["role"]),
            replication=self.engine,
            semantics=document,
            reliable_transport=spec.get("reliable_transport", True),
        )
        if restore_path and os.path.exists(restore_path):
            checkpoint = decode_result(open(restore_path, "rb").read())
            self.engine.restore(checkpoint["engine"])
            self.local.control.semantics_restore(
                checkpoint["state"], partial=False
            )
        self._stop_heartbeat = threading.Event()

    # -- persistence ---------------------------------------------------------

    def _checkpoint(self) -> None:
        """Atomically persist the replica state (dispatcher thread only)."""
        if not self.checkpoint_path:
            return
        blob = encode_result({
            "engine": self.engine.checkpoint(),
            "state": self.engine.snapshot_state(),
        })
        tmp = self.checkpoint_path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, self.checkpoint_path)

    # -- frame handlers (run on the dispatcher thread) -----------------------

    def _handle_data(self, body: Dict[str, Any]) -> None:
        self.transport.deliver(
            body["dst"], body["src"], body["payload"], body["size"]
        )
        self._checkpoint()

    def _handle_call(self, body: Dict[str, Any]) -> None:
        call_id = body["call_id"]
        op = body["op"]
        kwargs = body.get("kwargs") or {}
        try:
            if op == "version":
                result: Any = self.engine.version()
            elif op == "snapshot_state":
                result = self.engine.snapshot_state()
            elif op == "subscribe_child":
                self.engine.subscribe_child(kwargs["address"])
                result = None
            elif op == "demand":
                self.engine.reads.demand(
                    keys=kwargs.get("keys"),
                    want_full=kwargs.get("want_full", False),
                )
                result = None
            elif op == "counters":
                result = dict(self.engine.counters)
            elif op == "ping":
                result = "pong"
            else:
                raise ValueError(f"unknown node op {op!r}")
        except BaseException as exc:
            self._checkpoint()
            self.channel.send("reply", call_id=call_id, error=repr(exc))
            return
        self._checkpoint()
        self.channel.send("reply", call_id=call_id, result=result)

    # -- threads -------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        interval = self.spec.get("heartbeat_interval", 0.25)
        while not self._stop_heartbeat.wait(interval):
            try:
                self.channel.send("heartbeat", node=self.name)
            except WireError:
                return

    def run(self) -> int:
        """Start the store and serve frames until ``bye``/EOF."""
        self.loop.start()
        self.local.start()
        self._checkpoint()
        self.channel.send("hello", node=self.name, pid=os.getpid())
        beat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"repro-node-beat-{self.name}",
            daemon=True,
        )
        beat.start()
        try:
            while True:
                frame = self.channel.recv()
                if frame is None:
                    break
                kind, body = frame
                if kind == "data":
                    self.loop.submit(self._handle_data, body)
                elif kind == "call":
                    self.loop.submit(self._handle_call, body)
                elif kind == "bye":
                    break
                # "welcome" and unknown frames are ignored.
        finally:
            self._stop_heartbeat.set()
            try:
                self.local.destroy()
            except Exception:
                pass
            self.loop.stop()
            self.channel.close()
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, connect to the hub, and run the store node."""
    parser = argparse.ArgumentParser(prog="repro.runtime.node")
    parser.add_argument("--hub", required=True,
                        help="hub address (unix:<path> or tcp:<host>:<port>)")
    parser.add_argument("--node", required=True, help="this store's name")
    parser.add_argument("--spec", required=True,
                        help="path to the codec-encoded node spec")
    parser.add_argument("--restore", default=None,
                        help="checkpoint file to resume the replica from")
    args = parser.parse_args(argv)
    spec = decode_result(open(args.spec, "rb").read())
    sock = connect_with_backoff(parse_address(args.hub))
    channel = FrameChannel(sock)
    runtime = NodeRuntime(
        args.node, channel, spec, restore_path=args.restore
    )
    return runtime.run()


if __name__ == "__main__":
    sys.exit(main())
