"""Hub side of the socket runtime: routing, registry, fault teeth.

The ``live-socket`` backend keeps the *driving* half of a deployment --
the dispatcher loop, every client address space, the shared trace
recorder and the fault-control surface -- in the parent process (the
"hub"), while every store runs in its own OS process
(:mod:`repro.runtime.node`).  One frame socket connects each node back
here.

Design rule: **every datagram crosses the hub's network send path
exactly once.**  Client traffic originates on the hub dispatcher and
enters :meth:`SocketNetwork.send` directly; node-originated traffic
arrives as ``data`` frames and is re-submitted onto the dispatcher into
the same method.  Latency, partitions, crash gating and every
``NetworkStats`` counter therefore behave identically to the
in-process backends -- which is what makes the cross-backend coherence
signatures comparable at all.

Fault teeth: :meth:`SocketNetwork.crash_node` first applies the shared
:class:`~repro.faults.transport.FaultableTransportMixin` semantics
(queued/in-flight drops, counters), then SIGKILLs the node's real
process; :meth:`SocketNetwork.restart_node` re-spawns it with
``--restore`` so the replica resumes from its last checkpoint, then
lifts the crash mark.  Liveness is tracked by a heartbeat
:class:`~repro.runtime.registry.Registry`.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import shutil
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro.coherence.trace import TraceRecorder
from repro.core.interfaces import Role
from repro.obs import tracer as _obs
from repro.runtime.live import LiveLoop, LiveNetwork
from repro.runtime.registry import Registry
from repro.runtime.supervisor import NodeSupervisor
from repro.runtime.wire import FrameChannel, WireError, listen


class SocketRuntimeError(RuntimeError):
    """A node could not be spawned, reached, or called."""


class SocketHub:
    """Accepts node connections; routes frames, calls, and lifecycle.

    One hub per deployment.  Threads: one accept thread, one serve
    thread per node connection, one liveness sweeper.  The serve thread
    is the only reader of its channel; hub-to-node sends may come from
    any thread (the channel's send lock serializes them).
    """

    def __init__(
        self,
        run_dir: Optional[str] = None,
        call_timeout: float = 10.0,
        heartbeat_ttl: float = 2.0,
        heartbeat_interval: float = 0.25,
        node_boot_timeout: float = 10.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.run_dir = run_dir or tempfile.mkdtemp(prefix="repro-hub-")
        self._owns_run_dir = run_dir is None
        self.address = os.path.join(self.run_dir, "hub.sock")
        self.call_timeout = call_timeout
        self.heartbeat_interval = heartbeat_interval
        self.node_boot_timeout = node_boot_timeout
        self.trace = trace
        self.registry = Registry(ttl=heartbeat_ttl)
        self.supervisor = NodeSupervisor(self.run_dir, self.address)
        #: The deployment's :class:`SocketNetwork`; set by the backend
        #: right after construction (the two reference each other).
        self.network: Optional[SocketNetwork] = None
        self._channels: Dict[str, FrameChannel] = {}
        self._ready: Dict[str, threading.Event] = {}
        self._calls: Dict[int, Dict[str, Any]] = {}
        self._call_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closing = False
        self._listener = listen(self.address)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-hub-accept", daemon=True
        )
        self._accept_thread.start()
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="repro-hub-sweeper", daemon=True
        )
        self._sweeper.start()

    # -- node lifecycle ------------------------------------------------------

    def spawn_node(self, name: str, spec: Dict[str, Any]) -> None:
        """Write ``spec`` and launch the node; blocks until it registers."""
        spec = dict(spec)
        spec.setdefault("checkpoint_path",
                        self.supervisor.checkpoint_path(name))
        spec.setdefault("heartbeat_interval", self.heartbeat_interval)
        self.supervisor.write_spec(name, spec)
        self._launch(name, restore=False)

    def _launch(self, name: str, restore: bool) -> None:
        with self._lock:
            event = self._ready.setdefault(name, threading.Event())
            event.clear()
        self.supervisor.spawn(name, restore=restore)
        if not event.wait(self.node_boot_timeout):
            raise SocketRuntimeError(
                f"node {name!r} did not register within "
                f"{self.node_boot_timeout}s (see {self.supervisor.log_path(name)})"
            )

    def kill_node(self, name: str) -> int:
        """SIGKILL the node's process; returns the dead PID."""
        with self._lock:
            channel = self._channels.pop(name, None)
        pid = self.supervisor.kill(name)
        self.registry.deregister(name)
        if channel is not None:
            channel.close()
        return pid

    def restart_node(self, name: str) -> None:
        """Re-spawn a killed node from its checkpoint; blocks until up."""
        self._launch(name, restore=True)

    def node_pid(self, name: str) -> int:
        """The node's current process id."""
        return self.supervisor.pid(name)

    def channel_for(self, name: str) -> Optional[FrameChannel]:
        """The node's frame channel, or ``None`` when detached."""
        return self._channels.get(name)

    # -- node RPC ------------------------------------------------------------

    def call(self, node: str, op: str, timeout: Optional[float] = None,
             **kwargs: Any) -> Any:
        """Run ``op(**kwargs)`` on the node's dispatcher; block for it.

        Safe from any hub thread including the dispatcher: the reply is
        resolved by the node's serve thread, never by dispatcher work.
        """
        channel = self._channels.get(node)
        if channel is None:
            raise SocketRuntimeError(f"node {node!r} is not connected")
        call_id = next(self._call_ids)
        slot: Dict[str, Any] = {"event": threading.Event()}
        with self._lock:
            self._calls[call_id] = slot
        try:
            self._send(channel, "call", call_id=call_id, op=op, kwargs=kwargs)
        except WireError as exc:
            with self._lock:
                self._calls.pop(call_id, None)
            raise SocketRuntimeError(f"node {node!r} went away: {exc}")
        if not slot["event"].wait(timeout or self.call_timeout):
            with self._lock:
                self._calls.pop(call_id, None)
            raise SocketRuntimeError(
                f"call {op!r} to node {node!r} timed out"
            )
        if slot.get("error") is not None:
            raise SocketRuntimeError(f"{node}.{op} failed: {slot['error']}")
        return slot.get("result")

    # -- frame plumbing ------------------------------------------------------

    def _send(self, channel: FrameChannel, kind: str, **body: Any) -> None:
        if self.network is not None:
            self.network.stats.frames_sent += 1
        channel.send(kind, **body)

    def forward(self, dst: str, src: str, payload: object,
                size_bytes: int) -> bool:
        """Frame one routed datagram out to node ``dst`` (dispatcher)."""
        channel = self._channels.get(dst)
        if channel is None:
            return False
        try:
            self._send(channel, "data", src=src, dst=dst, payload=payload,
                       size=size_bytes, reliable=True)
        except WireError:
            return False
        return True

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            channel = FrameChannel(sock)
            threading.Thread(
                target=self._serve_conn,
                args=(channel,),
                name="repro-hub-serve",
                daemon=True,
            ).start()

    def _serve_conn(self, channel: FrameChannel) -> None:
        """Per-connection reader: registration, routing, replies, traces."""
        name: Optional[str] = None
        try:
            while True:
                frame = channel.recv()
                if frame is None:
                    break
                if self.network is not None:
                    self.network.stats.frames_received += 1
                kind, body = frame
                if kind == "hello":
                    name = body["node"]
                    self.registry.register(
                        name, body["pid"], conn=channel, now=time.monotonic()
                    )
                    with self._lock:
                        self._channels[name] = channel
                        event = self._ready.setdefault(name, threading.Event())
                    self._send(channel, "welcome", node=name)
                    event.set()
                elif kind == "heartbeat":
                    self.registry.beat(body["node"], now=time.monotonic())
                elif kind == "trace":
                    self._record_trace(body["event"])
                elif kind == "data":
                    # Re-enter the one canonical send path, on the
                    # dispatcher: stats, fault gates and latency are
                    # applied here and nowhere else.
                    network = self.network
                    if network is not None:
                        network.loop.submit(
                            network.send, body["src"], body["dst"],
                            body["payload"], body["size"], body["reliable"],
                        )
                elif kind == "reply":
                    self._resolve_call(body)
                elif kind == "bye":
                    break
        except WireError:
            pass
        finally:
            if name is not None:
                with self._lock:
                    # A restarted node may already have replaced this
                    # channel; only detach if we are still current.
                    if self._channels.get(name) is channel:
                        del self._channels[name]
            channel.close()

    def _record_trace(self, event: Any) -> None:
        """Append a node's trace event to the shared recorder.

        The event is re-indexed into the hub recorder's global order;
        per-lane order (all the signature cares about) is preserved
        because each node streams its own events in recording order.
        """
        recorder = self.trace
        if recorder is None:
            return
        recorder.events.append(
            dataclasses.replace(event, index=recorder._next_index())
        )

    def _resolve_call(self, body: Dict[str, Any]) -> None:
        with self._lock:
            slot = self._calls.pop(body["call_id"], None)
        if slot is None:
            return
        slot["error"] = body.get("error")
        slot["result"] = body.get("result")
        slot["event"].set()

    def _sweep_loop(self) -> None:
        """Expire registry entries whose heartbeats went silent."""
        while not self._closing:
            time.sleep(self.heartbeat_interval)
            self.registry.expire(time.monotonic())

    # -- teardown ------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every node, close every socket, remove the run dir."""
        self._closing = True
        with self._lock:
            channels = dict(self._channels)
            self._channels.clear()
        for channel in channels.values():
            try:
                channel.send("bye")
            except WireError:
                pass
        self.supervisor.shutdown()
        for channel in channels.values():
            channel.close()
        try:
            self._listener.close()
        except OSError:
            pass
        for name in self.registry.names():
            self.registry.deregister(name)
        if self._owns_run_dir:
            shutil.rmtree(self.run_dir, ignore_errors=True)


class SocketNetwork(LiveNetwork):
    """The hub's transport: local handlers plus remote (node) routing.

    Clients register locally exactly as on :class:`LiveNetwork`; store
    addresses are *remote* and delivery to them forwards a frame to the
    node's channel.  All fault machinery (partition queueing, crash
    drops, counters) is inherited and runs hub-side, so counter parity
    with the in-process backends holds by construction.
    """

    def __init__(self, loop: LiveLoop, hub: SocketHub,
                 latency: float = 0.0) -> None:
        super().__init__(loop, latency=latency)
        self.hub = hub
        self._remote: set = set()

    # -- remote membership ---------------------------------------------------

    def register_remote(self, node: str) -> None:
        """Mark an address as living in a node process."""
        with self._lock:
            self._remote.add(node)

    def unregister_remote(self, node: str) -> None:
        """Forget a remote address."""
        with self._lock:
            self._remote.discard(node)

    def is_registered(self, node: str) -> bool:
        """Whether the address is attached, locally or remotely."""
        with self._lock:
            if node in self._remote:
                return True
        return super().is_registered(node)

    @property
    def nodes(self) -> set:
        """All attached addresses, local and remote."""
        with self._lock:
            remote = set(self._remote)
        return super().nodes | remote

    # -- delivery ------------------------------------------------------------

    def _arrive(self, src: str, dst: str, payload: object,
                size_bytes: int) -> None:
        with self._lock:
            remote = dst in self._remote
        if not remote:
            super()._arrive(src, dst, payload, size_bytes)
            return
        if self._crashed_at_arrival(dst):
            return
        if self.hub.channel_for(dst) is None:
            self.stats.datagrams_dropped_unregistered += 1
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.event(
                    self.loop.now, "net.drop", node=dst,
                    src=src, reason="unregistered",
                )
            return
        self.stats.datagrams_delivered += 1
        self.stats.bytes_delivered += size_bytes
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.event(
                self.loop.now, "net.deliver", node=dst,
                src=src, size=size_bytes,
            )
        self.hub.forward(dst, src, payload, size_bytes)

    # -- fault teeth ---------------------------------------------------------

    def crash_node(self, node: str) -> None:
        """Crash semantics, then SIGKILL the real process (if remote)."""
        super().crash_node(node)
        with self._lock:
            remote = node in self._remote
        if remote:
            self.hub.kill_node(node)

    def restart_node(self, node: str) -> None:
        """Re-spawn from checkpoint (if remote), then lift the crash mark.

        The process is brought up *before* the crash mark clears, so any
        straggling traffic keeps dropping as crashed until the replica
        is actually back.
        """
        with self._lock:
            remote = node in self._remote
        if remote:
            self.hub.restart_node(node)
        super().restart_node(node)


class RemoteStoreLocal:
    """Duck-typed stand-in for a remote store's ``LocalObject``.

    Holds the address/role identity the :class:`~repro.core.dso.Store`
    dataclass exposes; teardown is a no-op because the hub's supervisor
    owns the process.
    """

    def __init__(self, address: str, role: Role) -> None:
        self.address = address
        self.role = role

    def start(self) -> None:
        """No-op: the node process starts its own replication object."""

    def destroy(self) -> None:
        """No-op: process teardown belongs to the hub's supervisor."""


class _RemoteReads:
    """The ``engine.reads`` surface of a remote store (demand only)."""

    def __init__(self, proxy: "RemoteEngineProxy") -> None:
        self._proxy = proxy

    def demand(self, keys: Optional[List[str]] = None,
               want_full: bool = False) -> None:
        """Ask the node to issue a catch-up demand to its parent."""
        self._proxy.call(
            "demand",
            keys=list(keys) if keys is not None else None,
            want_full=want_full,
        )


class RemoteEngineProxy:
    """RPC proxy for the slice of the engine API harness code drives.

    ``version()`` / ``snapshot_state()`` / ``subscribe_child()`` /
    ``reads.demand()`` mirror :class:`~repro.replication.engine.
    StoreReplicationObject`; each is one synchronous hub->node call.
    """

    def __init__(self, hub: SocketHub, address: str,
                 parent: Optional[str] = None) -> None:
        self.hub = hub
        self.address = address
        self.parent = parent
        self.reads = _RemoteReads(self)

    def call(self, op: str, **kwargs: Any) -> Any:
        """One synchronous RPC against the node's dispatcher."""
        return self.hub.call(self.address, op, **kwargs)

    def version(self) -> Dict[str, int]:
        """The remote store's applied version vector."""
        return self.call("version")

    def snapshot_state(self) -> Dict[str, Any]:
        """The remote store's semantics snapshot."""
        return self.call("snapshot_state")

    def subscribe_child(self, address: str) -> None:
        """Add a downstream store to the remote propagation set."""
        self.call("subscribe_child", address=address)

    def counters(self) -> Dict[str, int]:
        """The remote engine's message counters (diagnostics)."""
        return self.call("counters")

    def start(self) -> None:
        """No-op: the node process started its own engine."""

    def stop(self) -> None:
        """No-op: node teardown stops the remote engine."""
