"""Naming and heartbeat-based liveness for socket store nodes.

The hub embeds one :class:`Registry` (an in-process registry daemon in
the service-discovery sense): nodes announce themselves once with a
``hello`` frame (:meth:`Registry.register`), then keep themselves alive
with periodic ``heartbeat`` frames (:meth:`Registry.beat`).  A node that
misses beats for longer than the TTL is considered dead and is swept by
:meth:`Registry.expire` — which is exactly how the hub notices a
SIGKILL'd process without waiting on a socket timeout.

Time is injected as plain ``float`` seconds on every mutating call so
tests can drive expiry deterministically without sleeping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class NodeEntry:
    """One registered node: identity plus liveness bookkeeping."""

    name: str
    pid: int
    conn: Any = None
    registered_at: float = 0.0
    last_beat: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)


class Registry:
    """Thread-safe name -> :class:`NodeEntry` map with TTL liveness.

    ``ttl`` is the beat-silence budget: a node whose ``last_beat`` is
    older than ``now - ttl`` reports dead via :meth:`alive` and is
    removed by :meth:`expire`.
    """

    def __init__(self, ttl: float = 1.0) -> None:
        self.ttl = ttl
        self._entries: Dict[str, NodeEntry] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        pid: int,
        conn: Any = None,
        now: float = 0.0,
        **meta: Any,
    ) -> NodeEntry:
        """Insert (or replace, e.g. after a restart) the entry for ``name``."""
        entry = NodeEntry(
            name=name,
            pid=pid,
            conn=conn,
            registered_at=now,
            last_beat=now,
            meta=dict(meta),
        )
        with self._lock:
            self._entries[name] = entry
        return entry

    def deregister(self, name: str) -> Optional[NodeEntry]:
        """Drop ``name``; returns the removed entry, if any."""
        with self._lock:
            return self._entries.pop(name, None)

    def lookup(self, name: str) -> Optional[NodeEntry]:
        """Resolve ``name`` without touching liveness."""
        with self._lock:
            return self._entries.get(name)

    def beat(self, name: str, now: float) -> bool:
        """Record a heartbeat; ``False`` if the node is not registered."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                return False
            entry.last_beat = now
            return True

    def alive(self, name: str, now: float) -> bool:
        """Is ``name`` registered with a beat newer than ``now - ttl``?"""
        with self._lock:
            entry = self._entries.get(name)
            return entry is not None and now - entry.last_beat <= self.ttl

    def expire(self, now: float) -> List[str]:
        """Sweep and return names whose beats have gone stale."""
        with self._lock:
            dead = [
                name
                for name, entry in self._entries.items()
                if now - entry.last_beat > self.ttl
            ]
            for name in dead:
                del self._entries[name]
        return dead

    def names(self) -> List[str]:
        """Currently registered names, sorted for stable output."""
        with self._lock:
            return sorted(self._entries)
