"""Wall-clock runtime: the simulator interface over real threads.

One dispatcher thread owns all protocol state, exactly like the simulator
owns it in virtual time, so protocol code needs no locks.  Public entry
points (:meth:`LiveLoop.schedule`, :meth:`LiveNetwork.send`, client stub
calls via :meth:`LiveLoop.submit`) enqueue work onto the dispatcher.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.faults.transport import FaultableTransportMixin
from repro.net.network import NetworkStats
from repro.obs import tracer as _obs
from repro.obs.metrics import MetricsRegistry
from repro.sim.rng import SeededRng


class _LiveEvent:
    """A scheduled callback in wall-clock time."""

    __slots__ = ("when", "seq", "fn", "args", "cancelled", "daemon")

    def __init__(self, when: float, seq: int, fn, args, daemon: bool) -> None:
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.daemon = daemon

    def __lt__(self, other: "_LiveEvent") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True


class LiveLoop:
    """Wall-clock scheduler compatible with the Simulator interface.

    Only the subset the protocol stack uses is provided: ``now``,
    ``schedule`` and an ``rng``.  Start with :meth:`start`, stop with
    :meth:`stop`.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = SeededRng(seed)
        self._queue: list = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._running = False
        self._thread: Optional[threading.Thread] = None
        self._epoch = time.monotonic()
        self._busy = False

    @property
    def now(self) -> float:
        """Seconds since the loop was created."""
        return time.monotonic() - self._epoch

    @property
    def idle(self) -> bool:
        """Whether only daemon (housekeeping) work remains.

        True when the dispatcher is not executing a callback and no
        non-daemon, non-cancelled event is queued.  Quiescence in wall
        clock is observational: an in-flight datagram scheduled a moment
        later flips this back to ``False``.
        """
        with self._lock:
            if self._busy:
                return False
            return not any(
                not event.daemon and not event.cancelled
                for event in self._queue
            )

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 daemon: bool = False) -> _LiveEvent:
        """Run ``fn(*args)`` on the dispatcher ``delay`` seconds from now."""
        event = _LiveEvent(
            when=self.now + max(0.0, delay),
            seq=next(self._seq),
            fn=fn,
            args=args,
            daemon=daemon,
        )
        with self._wakeup:
            heapq.heappush(self._queue, event)
            self._wakeup.notify()
        return event

    def submit(self, fn: Callable[..., Any], *args: Any) -> _LiveEvent:
        """Run ``fn(*args)`` on the dispatcher as soon as possible."""
        return self.schedule(0.0, fn, *args)

    def start(self) -> None:
        """Start the dispatcher thread."""
        if self._running:
            return
        self._running = True
        self._thread = threading.Thread(
            target=self._dispatch, name="repro-live-loop", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Stop the dispatcher and join its thread.

        ``timeout`` bounds the wait for an *idle* dispatcher only.  A
        dispatcher that is mid-callback is joined until the callback
        returns (the loop exits immediately afterwards, since
        ``_running`` is already false): abandoning a busy dispatcher
        would leave it mutating protocol state behind a caller that
        believes the runtime is quiescent.
        """
        with self._wakeup:
            self._running = False
            self._wakeup.notify()
        thread = self._thread
        if thread is None:
            return
        thread.join(timeout=timeout)
        while thread.is_alive():
            with self._lock:
                busy = self._busy
            if not busy:
                thread.join(timeout=timeout)
                break
            thread.join(timeout=0.05)
        self._thread = None

    def _dispatch(self) -> None:
        while True:
            with self._wakeup:
                if not self._running:
                    return
                if not self._queue:
                    self._wakeup.wait(timeout=0.1)
                    continue
                head = self._queue[0]
                delay = head.when - self.now
                if delay > 0:
                    self._wakeup.wait(timeout=min(delay, 0.1))
                    continue
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._busy = True
            try:
                event.fn(*event.args)
            except Exception:  # pragma: no cover - live-mode resilience
                # A protocol callback must not kill the dispatcher; in the
                # simulator the same error would surface in the test.
                import traceback

                traceback.print_exc()
            finally:
                with self._lock:
                    self._busy = False


class LiveNetwork(FaultableTransportMixin):
    """In-process message delivery compatible with the Network interface.

    Delivery happens on the loop's dispatcher thread after the configured
    latency, preserving the single-threaded protocol model.  The full
    fault control surface of the simulated network (partitions with
    reliable-traffic queueing, partial heal, crash/restart, loss bursts)
    comes from the shared
    :class:`~repro.faults.transport.FaultableTransportMixin`; fault
    mutations must run on the dispatcher thread (route through
    ``Backend.call`` or a :class:`~repro.faults.injector.FaultInjector`).
    """

    def __init__(self, loop: LiveLoop, latency: float = 0.0) -> None:
        self.loop = loop
        self.latency = latency
        self.metrics = MetricsRegistry()
        self.stats = NetworkStats().bind(self.metrics)
        self._handlers: Dict[str, Callable] = {}
        self._lock = threading.Lock()
        self._init_faults(loss_rng=loop.rng.fork("network-loss"))

    def _obs_now(self) -> float:
        """Trace timestamps come from the loop's wall clock."""
        return self.loop.now

    def register(self, node: str, handler: Callable) -> None:
        """Attach a node's receive handler."""
        with self._lock:
            self._handlers[node] = handler

    def unregister(self, node: str) -> None:
        """Detach a node."""
        with self._lock:
            self._handlers.pop(node, None)

    def is_registered(self, node: str) -> bool:
        """Whether a node currently has a receive handler."""
        with self._lock:
            return node in self._handlers

    @property
    def nodes(self) -> set:
        """The currently registered node names."""
        with self._lock:
            return set(self._handlers)

    def send(self, src: str, dst: str, payload: object,
             size_bytes: int = 0, reliable: bool = True) -> None:
        """Deliver after the configured latency, on the dispatcher."""
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += size_bytes
        if _obs.ACTIVE is not None:
            # send() may run on any thread; RecordingTracer's list append
            # is atomic, so concurrent emissions interleave but never
            # corrupt (live traces are not deterministic anyway).
            _obs.ACTIVE.event(
                self.loop.now, "net.send", node=src,
                dst=dst, size=size_bytes, reliable=reliable,
            )
        if self._fault_blocked(src, dst, payload, size_bytes, reliable):
            return
        if reliable:
            self._deliver_reliable(src, dst, payload, size_bytes)
        else:
            self._deliver_unreliable(src, dst, payload, size_bytes)

    def _deliver_reliable(self, src: str, dst: str, payload: object,
                          size_bytes: int) -> None:
        """Schedule dispatcher delivery; loop seq order keeps pairs FIFO."""
        self.loop.schedule(self.latency, self._arrive, src, dst, payload,
                           size_bytes)

    def _deliver_unreliable(self, src: str, dst: str, payload: object,
                            size_bytes: int) -> None:
        """Unreliable delivery: subject to the (fault-driven) loss rate."""
        if self._lose_unreliable():
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.event(
                    self.loop.now, "net.drop", node=dst,
                    src=src, reason="loss",
                )
            return
        self.loop.schedule(self.latency, self._arrive, src, dst, payload,
                           size_bytes)

    def _arrive(self, src: str, dst: str, payload: object,
                size_bytes: int) -> None:
        if self._crashed_at_arrival(dst):
            return
        with self._lock:
            handler = self._handlers.get(dst)
        if handler is None:
            self.stats.datagrams_dropped_unregistered += 1
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.event(
                    self.loop.now, "net.drop", node=dst,
                    src=src, reason="unregistered",
                )
            return
        self.stats.datagrams_delivered += 1
        self.stats.bytes_delivered += size_bytes
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.event(
                self.loop.now, "net.deliver", node=dst,
                src=src, size=size_bytes,
            )
        handler(src, payload, size_bytes)

    def multicast(self, src: str, dsts, payload: object,
                  size_bytes: int = 0, reliable: bool = True) -> None:
        """Send to each destination."""
        for dst in dsts:
            if dst != src:
                self.send(src, dst, payload, size_bytes, reliable=reliable)
