"""Live runtimes: wall-clock threads (S16) and multi-process sockets.

The same protocol code that runs on the deterministic simulator can run
on real threads and real time: :class:`LiveLoop` implements the
:class:`~repro.sim.kernel.Simulator` scheduling interface against a
wall-clock timer thread, and :class:`LiveNetwork` implements the
:class:`~repro.net.network.Network` delivery interface over in-process
queues with optional injected latency.

The socket runtime takes the next step to real *processes*: every store
node runs in its own OS process (:mod:`repro.runtime.node`), frames ride
the :mod:`repro.exec.codec` binary codec over Unix/TCP sockets
(:mod:`repro.runtime.wire`), a heartbeat :class:`Registry` provides
naming and liveness, and the hub (:mod:`repro.runtime.socket`) routes
all traffic through one fault-controllable network.  This is the paper's
Java-over-TCP prototype shape for real: CrashNode SIGKILLs a process,
RestartNode re-spawns it from a checkpoint.
"""

from repro.runtime.live import LiveLoop, LiveNetwork
from repro.runtime.registry import NodeEntry, Registry
from repro.runtime.supervisor import NodeSupervisor
from repro.runtime.wire import FrameChannel, WireError, connect_with_backoff

__all__ = [
    "FrameChannel",
    "LiveLoop",
    "LiveNetwork",
    "NodeEntry",
    "NodeSupervisor",
    "Registry",
    "WireError",
    "connect_with_backoff",
]
