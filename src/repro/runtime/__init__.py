"""Live (wall-clock, threaded) runtime (S16).

The same protocol code that runs on the deterministic simulator can run on
real threads and real time: :class:`LiveLoop` implements the
:class:`~repro.sim.kernel.Simulator` scheduling interface against a
wall-clock timer thread, and :class:`LiveNetwork` implements the
:class:`~repro.net.network.Network` delivery interface over in-process
queues with optional injected latency.

This is the moral equivalent of the paper's Java-over-TCP prototype for
running the examples "live"; all quantitative experiments stay on the
simulator for determinism.
"""

from repro.runtime.live import LiveLoop, LiveNetwork

__all__ = ["LiveLoop", "LiveNetwork"]
