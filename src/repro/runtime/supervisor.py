"""Process supervision for socket store nodes.

The hub delegates process lifecycle to a :class:`NodeSupervisor`: it
writes each node's codec-encoded spec file, spawns ``python -m
repro.runtime.node`` children, SIGKILLs them on :class:`CrashNode`
(and *reaps* them, so no zombies linger for the CI process-leak check),
re-spawns them with ``--restore`` on :class:`RestartNode`, and tears
everything down -- terminate, then kill -- at shutdown.

Node stderr/stdout streams into per-node log files (``<name>.log``,
append mode so a restart continues the same file); the directory
defaults to the run directory and can be redirected with the
``REPRO_SOCKET_LOG_DIR`` environment variable, which the CI soak job
uses to upload node logs on failure.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from typing import IO, Any, Dict, List

from repro.runtime.wire import Address, format_address


class NodeSupervisor:
    """Spawn, kill, restart and reap ``repro.runtime.node`` processes.

    The lifecycle machinery (per-child log files, SIGKILL-and-reap,
    terminate-then-kill shutdown) is child-agnostic; subclasses that
    supervise a different daemon override :attr:`log_env` and
    :meth:`build_argv` (the sweep-worker supervisor in
    :mod:`repro.exec.distributed` does exactly that).
    """

    #: Environment variable redirecting the per-child log directory;
    #: the CI soak jobs use it to upload child logs on failure.
    log_env = "REPRO_SOCKET_LOG_DIR"

    def __init__(
        self,
        run_dir: str,
        hub_address: Address,
        log_dir: str = "",
    ) -> None:
        self.run_dir = run_dir
        self.hub_address = hub_address
        self.log_dir = (
            log_dir or os.environ.get(self.log_env) or run_dir
        )
        os.makedirs(self.run_dir, exist_ok=True)
        os.makedirs(self.log_dir, exist_ok=True)
        self._procs: Dict[str, subprocess.Popen] = {}
        self._logs: Dict[str, IO[bytes]] = {}

    # -- paths ---------------------------------------------------------------

    def _slug(self, name: str) -> str:
        return name.replace("/", "_")

    def spec_path(self, name: str) -> str:
        """Where ``name``'s codec-encoded node spec lives."""
        return os.path.join(self.run_dir, f"{self._slug(name)}.spec")

    def checkpoint_path(self, name: str) -> str:
        """Where ``name`` checkpoints its replica state."""
        return os.path.join(self.run_dir, f"{self._slug(name)}.ckpt")

    def log_path(self, name: str) -> str:
        """Where ``name``'s stdout/stderr is captured."""
        return os.path.join(self.log_dir, f"{self._slug(name)}.log")

    def write_spec(self, name: str, spec: Dict[str, Any]) -> str:
        """Persist the node spec; returns its path."""
        # Imported here, not at module level: repro.exec's own init
        # imports this module (via the distributed executor's worker
        # supervisor), so the back-edge must stay lazy.
        from repro.exec.codec import encode_result

        path = self.spec_path(name)
        with open(path, "wb") as fh:
            fh.write(encode_result(spec))
        return path

    # -- lifecycle -----------------------------------------------------------

    def build_argv(self, name: str, restore: bool = False) -> List[str]:
        """The child-process command line for ``name``."""
        argv = [
            sys.executable,
            "-m",
            "repro.runtime.node",
            "--hub",
            format_address(self.hub_address),
            "--node",
            name,
            "--spec",
            self.spec_path(name),
        ]
        if restore:
            argv += ["--restore", self.checkpoint_path(name)]
        return argv

    def spawn(self, name: str, restore: bool = False) -> subprocess.Popen:
        """Start the child process for ``name`` (spec must be written).

        ``restore=True`` passes the node its checkpoint file so the
        re-spawned process resumes as the same replica.
        """
        argv = self.build_argv(name, restore=restore)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        log = self._logs.get(name)
        if log is None or log.closed:
            log = open(self.log_path(name), "ab")
            self._logs[name] = log
        proc = subprocess.Popen(
            argv,
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=self.run_dir,
        )
        self._procs[name] = proc
        return proc

    def pid(self, name: str) -> int:
        """PID of ``name``'s current process (KeyError if never spawned)."""
        return self._procs[name].pid

    def kill(self, name: str) -> int:
        """SIGKILL ``name``'s process and reap it; returns the dead PID.

        After this returns, ``os.kill(pid, 0)`` raises
        ``ProcessLookupError`` -- the process is gone, not a zombie.
        """
        proc = self._procs[name]
        try:
            proc.send_signal(signal.SIGKILL)
        except OSError:
            pass
        proc.wait()
        return proc.pid

    def live_pids(self) -> Dict[str, int]:
        """Name -> PID for every child still running."""
        return {
            name: proc.pid
            for name, proc in self._procs.items()
            if proc.poll() is None
        }

    def shutdown(self, grace: float = 2.0) -> None:
        """Stop every child: SIGTERM, wait up to ``grace``, then SIGKILL.

        Every child is reaped and every log handle closed; the supervisor
        leaves no orphan processes behind.
        """
        for proc in self._procs.values():
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        for proc in self._procs.values():
            try:
                proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs.clear()
        for log in self._logs.values():
            if not log.closed:
                log.close()
        self._logs.clear()
