"""Object handle -> contact address resolution.

In Globe, binding to a distributed shared object starts by resolving its
handle to contact points.  This in-process service keeps the mapping and
implements nearest-contact selection against a latency model, which is how
clients end up bound to a nearby mirror rather than the distant origin.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.latency import LatencyModel


class UnknownObject(KeyError):
    """Raised when resolving a handle that was never registered."""


class NameService:
    """Registry of contact addresses per distributed object."""

    def __init__(self) -> None:
        self._contacts: Dict[str, List[str]] = {}

    def register(self, object_id: str, address: str) -> None:
        """Add a contact address for an object (idempotent)."""
        contacts = self._contacts.setdefault(object_id, [])
        if address not in contacts:
            contacts.append(address)

    def unregister(self, object_id: str, address: str) -> None:
        """Remove a contact address (no-op if absent)."""
        contacts = self._contacts.get(object_id)
        if contacts and address in contacts:
            contacts.remove(address)

    def resolve(self, object_id: str) -> List[str]:
        """All contact addresses, in registration order."""
        if object_id not in self._contacts or not self._contacts[object_id]:
            raise UnknownObject(object_id)
        return list(self._contacts[object_id])

    def nearest(
        self,
        object_id: str,
        from_address: str,
        latency: Optional[LatencyModel] = None,
    ) -> str:
        """Contact address with the lowest one-way delay from a node.

        Without a latency model the first registered contact wins, which
        keeps unit tests deterministic.
        """
        contacts = self.resolve(object_id)
        if latency is None:
            return contacts[0]
        return min(
            contacts, key=lambda addr: latency.delay(from_address, addr, 0)
        )
