"""Naming and location service (S5).

A drastically simplified Globe location service: object handles resolve to
the contact addresses of stores willing to accept binds.  Binding policy
(nearest contact by latency) lives here too.
"""

from repro.naming.service import NameService, UnknownObject

__all__ = ["NameService", "UnknownObject"]
