"""Exceptions raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class SimulationLimitExceeded(SimulationError):
    """Raised when a run exceeds its configured event or time budget.

    The kernel enforces the budget so that a buggy protocol that schedules
    events forever (for example, a retry loop that never succeeds) fails the
    test that drives it instead of hanging the test suite.
    """


class SchedulingInPastError(SimulationError):
    """Raised when an event is scheduled before the current virtual time."""
