"""Generator-based simulated processes.

Protocol state machines are naturally callback-driven, but client workloads
read better as straight-line code.  A :class:`Process` wraps a generator that
may yield:

- :class:`Delay` -- suspend for a stretch of virtual time;
- :class:`WaitFor` -- suspend until a :class:`repro.sim.future.Future`
  resolves (its value is sent back into the generator; its error is raised
  inside the generator);
- a bare :class:`~repro.sim.future.Future` -- shorthand for ``WaitFor``.

Example
-------
>>> def client(sim):
...     yield Delay(1.0)
...     reply = yield WaitFor(some_rpc())
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.errors import SimulationError
from repro.sim.future import Future
from repro.sim.kernel import Simulator


class ProcessKilled(SimulationError):
    """Injected into a generator when its process is killed."""


class Delay:
    """Yielded by a process to sleep for ``seconds`` of virtual time.

    A bare ``__slots__`` class (one is created per workload step, so
    construction cost matters); treat instances as immutable.
    """

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds

    def __repr__(self) -> str:
        return f"Delay({self.seconds!r})"


class WaitFor:
    """Yielded by a process to wait for a future's resolution.

    Same hot-path construction story as :class:`Delay`.
    """

    __slots__ = ("future",)

    def __init__(self, future: Future) -> None:
        self.future = future

    def __repr__(self) -> str:
        return f"WaitFor({self.future!r})"


class Process:
    """Drives a generator through the simulator.

    The process starts on the next kernel step after construction, so all
    processes created at t=0 begin in creation order.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.name = name
        self.done = Future()
        self._generator = generator
        self._alive = True
        sim.call_now(self._advance, None, None)

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished or been killed."""
        return self._alive

    def kill(self) -> None:
        """Throw :class:`ProcessKilled` into the generator.

        A process may catch it to clean up; the process still terminates.
        """
        if not self._alive:
            return
        self._alive = False
        try:
            self._generator.throw(ProcessKilled(f"{self.name} killed"))
        except (ProcessKilled, StopIteration):
            pass
        finally:
            self._generator.close()
            if not self.done.done:
                self.done.set_error(ProcessKilled(f"{self.name} killed"))

    def _advance(self, value: Any, error: Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if error is not None:
                yielded = self._generator.throw(error)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.done.set_result(stop.value)
            return
        except ProcessKilled:
            self._alive = False
            if not self.done.done:
                self.done.set_error(ProcessKilled(f"{self.name} killed"))
            return
        except BaseException as exc:
            # An uncaught exception terminates the process, not the kernel;
            # it surfaces through the process's done future.
            self._alive = False
            if not self.done.done:
                self.done.set_error(exc)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Delay):
            self.sim.schedule(yielded.seconds, self._advance, None, None)
        elif isinstance(yielded, WaitFor):
            self._wait(yielded.future)
        elif isinstance(yielded, Future):
            self._wait(yielded)
        else:
            self._advance(
                None,
                SimulationError(
                    f"{self.name} yielded unsupported value {yielded!r}"
                ),
            )

    def _wait(self, future: Future) -> None:
        def resume(resolved: Future) -> None:
            try:
                value = resolved.result()
            except BaseException as exc:  # re-inject into the generator
                self._advance(None, exc)
            else:
                self._advance(value, None)

        future.add_callback(resume)
