"""Scheduled events.

Events order by ``(time, seq)``.  The sequence number is assigned by the
kernel in scheduling order, which makes the execution order of simultaneous
events deterministic (design decision D5 in DESIGN.md).

:class:`Event` is a ``__slots__`` class, not a dataclass: one instance is
created per scheduled callback, so construction cost and attribute-access
cost are on the simulator's per-event hot path.  The event queues do not
compare events directly -- they key their heaps by explicit ``(time, seq)``
tuples (see :mod:`repro.sim.queues`), which compare in C instead of through
a generated ``__lt__``.  The :meth:`__lt__` here exists only so external
code that sorts events keeps working.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """A callback scheduled at a point in virtual time.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code only holds them to call :meth:`cancel`.

    ``daemon`` events (periodic pulls, housekeeping) do not keep a
    drain-the-queue run alive: :meth:`repro.sim.kernel.Simulator.run` with
    no deadline stops once only daemon events remain.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "daemon",
                 "_cancel_hook")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
        cancelled: bool = False,
        daemon: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled
        self.daemon = daemon
        self._cancel_hook: Optional[Callable[[], None]] = None

    def sort_key(self) -> Tuple[float, int]:
        """The total-order key the queues schedule by."""
        return (self.time, self.seq)

    def __lt__(self, other: "Event") -> bool:
        """Order by ``(time, seq)``, matching the queue order."""
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag for flag, on in (("c", self.cancelled), ("d", self.daemon))
            if on
        )
        return (f"Event(t={self.time!r}, seq={self.seq}"
                f"{', ' + flags if flags else ''})")

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op;
        this mirrors the semantics of ``threading.Timer.cancel`` and keeps
        protocol teardown paths simple.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._cancel_hook is not None:
                self._cancel_hook()

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        if not self.cancelled:
            self.fn(*self.args)
