"""Scheduled events.

Events order by ``(time, seq)``.  The sequence number is assigned by the
kernel in scheduling order, which makes the execution order of simultaneous
events deterministic (design decision D5 in DESIGN.md).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(order=True)
class Event:
    """A callback scheduled at a point in virtual time.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code only holds them to call :meth:`cancel`.

    ``daemon`` events (periodic pulls, housekeeping) do not keep a
    drain-the-queue run alive: :meth:`repro.sim.kernel.Simulator.run` with
    no deadline stops once only daemon events remain.
    """

    time: float
    seq: int
    fn: Callable[..., Any] = dataclasses.field(compare=False)
    args: tuple = dataclasses.field(compare=False, default=())
    cancelled: bool = dataclasses.field(compare=False, default=False)
    daemon: bool = dataclasses.field(compare=False, default=False)
    _cancel_hook: Callable[[], None] = dataclasses.field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op;
        this mirrors the semantics of ``threading.Timer.cancel`` and keeps
        protocol teardown paths simple.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._cancel_hook is not None:
                self._cancel_hook()

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        if not self.cancelled:
            self.fn(*self.args)
