"""One-shot futures for simulated asynchronous results.

A :class:`Future` is the rendezvous point between callback-style kernel code
(message deliveries, timers) and generator-style :class:`repro.sim.process.
Process` code (client workloads, protocol state machines).
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.sim.errors import SimulationError


class FutureCancelled(SimulationError):
    """Raised when waiting on a future that was cancelled."""


class Future:
    """A single-assignment result container.

    Unlike ``asyncio.Future`` there is no event loop affinity: callbacks run
    synchronously when the result is set, in registration order, which keeps
    the simulation deterministic.
    """

    __slots__ = ("_done", "_value", "_error", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._error: BaseException | None = None
        self._callbacks: List[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        """Whether a result or error has been set."""
        return self._done

    def result(self) -> Any:
        """Return the value, re-raising the stored error if one was set."""
        if not self._done:
            raise SimulationError("future is not resolved yet")
        if self._error is not None:
            raise self._error
        return self._value

    def set_result(self, value: Any = None) -> None:
        """Resolve the future and run its callbacks synchronously."""
        if self._done:
            raise SimulationError("future already resolved")
        # Publish the value before the done flag: the live backend polls
        # ``done`` from another thread and must never observe a resolved
        # future whose value is still the placeholder.
        self._value = value
        self._done = True
        self._run_callbacks()

    def set_error(self, error: BaseException) -> None:
        """Fail the future and run its callbacks synchronously."""
        if self._done:
            raise SimulationError("future already resolved")
        self._error = error
        self._done = True
        self._run_callbacks()

    def cancel(self) -> None:
        """Fail the future with :class:`FutureCancelled` if still pending."""
        if not self._done:
            self.set_error(FutureCancelled("future cancelled"))

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Register ``fn(self)`` to run at resolution (or now, if resolved)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)
