"""The discrete-event simulation kernel.

The kernel is a priority queue of :class:`repro.sim.events.Event` ordered by
``(virtual time, scheduling order)``.  All components of a simulated system
-- network links, replication objects, client processes -- share one kernel
and therefore one virtual clock.

The queue implementation is pluggable (``scheduler="heap"`` or
``"calendar"``, see :mod:`repro.sim.queues`): the binary heap is the
small-population default, the calendar queue keeps per-event cost flat at
O(10^5)+ pending events.  Both fire events in the identical
``(time, seq)`` total order, so seeded runs are bit-identical across
scheduler choices.
"""

from __future__ import annotations

import gc
import os
from typing import Any, Callable, Optional

from repro.obs import tracer as _obs
from repro.sim.errors import (
    SchedulingInPastError,
    SimulationLimitExceeded,
)
from repro.sim.events import Event
from repro.sim.queues import make_event_queue
from repro.sim.rng import SeededRng


#: Cyclic-GC cadence inside :meth:`Simulator.run`, in events.  The event
#: loop allocates heavily (events, futures, closures), and CPython's
#: generational collector re-scans the simulator's large live graph on
#: every threshold crossing -- ~30% of a big run's wall clock -- while
#: almost all garbage dies by refcount anyway.  The loop therefore
#: pauses automatic collection and instead collects explicitly every
#: this-many fired events, bounding the cyclic-garbage high-water mark
#: without paying per-allocation scans.  Semantically invisible: the
#: codebase defines no ``__del__`` finalizers, so collection timing can
#: never change a simulation result.
GC_EVENT_INTERVAL = 250_000


def _callable_name(fn: Callable[..., Any]) -> str:
    """A stable display name for a scheduled callable (trace detail)."""
    name = getattr(fn, "__qualname__", None)
    if name is None:
        name = getattr(fn, "__name__", None)
    return name if name is not None else type(fn).__name__


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  Two
        simulations built with the same seed and the same scheduling calls
        execute identically (design decision D5).
    scheduler:
        Event-queue implementation: ``"heap"`` (default) or
        ``"calendar"``; ``None`` defers to the ``REPRO_SCHEDULER``
        environment variable, then to ``"heap"``.  The choice affects
        throughput only -- event order, and therefore every seeded
        result, is identical.
    """

    def __init__(self, seed: int = 0, scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", "") or "heap"
        self._queue = make_event_queue(scheduler)
        self.scheduler = self._queue.name
        #: Current virtual time in seconds.  A plain attribute, not a
        #: property: every timed component reads it per event, and the
        #: descriptor indirection is measurable at that rate.  Only the
        #: kernel writes it.
        self.now: float = 0.0
        self._seq: int = 0
        self._fired: int = 0
        self._live: int = 0  # pending non-daemon, non-cancelled events
        self.rng = SeededRng(seed)

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of events still in the queue, including cancelled ones."""
        return len(self._queue)

    @property
    def live_pending(self) -> int:
        """Pending non-daemon events; a drain run ends when this hits 0."""
        return self._live

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``daemon`` marks housekeeping (periodic pulls and the like) that
        should not keep :meth:`run_until_idle` alive.
        """
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args, daemon=daemon)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise SchedulingInPastError(
                f"cannot schedule at {time!r}; clock is already at {self.now!r}"
            )
        event = Event(time, self._seq, fn, args, daemon=daemon)
        self._seq += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.event(
                self.now, "sim.schedule", at=round(time, 9),
                seq=event.seq, fn=_callable_name(fn), daemon=daemon,
            )
        if not daemon:
            self._live += 1
            event._cancel_hook = self._on_live_cancel
        self._queue.push(event)
        return event

    def _on_live_cancel(self) -> None:
        self._live -= 1

    def call_now(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending events
        already scheduled for this instant)."""
        return self.schedule(0.0, fn, *args)

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        while True:
            event = self._queue.pop()
            if event is None:
                return False
            if event.cancelled:
                continue
            if not event.daemon:
                self._live -= 1
            self.now = event.time
            self._fired += 1
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.event(
                    self.now, "sim.fire",
                    seq=event.seq, fn=_callable_name(event.fn),
                )
            event.fn(*event.args)
            return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until drained, ``until`` is reached, or the budget runs out.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time; the
            clock is then advanced to ``until`` so timed assertions read a
            stable value.  With no deadline the run stops when only daemon
            events (periodic housekeeping) remain.
        max_events:
            Safety budget; exceeding it raises
            :class:`SimulationLimitExceeded` rather than hanging the caller.

        Returns
        -------
        float
            The virtual time at which the run stopped.
        """
        # Hot path: the queue and the tracer are bound to locals once per
        # run, so the (usual) tracing-disabled case pays no per-event
        # module-attribute lookups inside the loop.  Automatic cyclic GC
        # is paused for the loop's duration (see GC_EVENT_INTERVAL) and
        # restored on exit, collecting explicitly on the event cadence.
        queue = self._queue
        tracer = _obs.ACTIVE
        fired = 0
        next_gc = GC_EVENT_INTERVAL
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                event = queue.peek()
                if event is None:
                    break
                if event.cancelled:
                    queue.pop()
                    continue
                if (until is None and self._live == 0) or (
                    until is not None and event.time > until
                ):
                    break
                if fired >= max_events:
                    raise SimulationLimitExceeded(
                        f"run exceeded {max_events} events at t={self.now}"
                    )
                queue.pop()
                if not event.daemon:
                    self._live -= 1
                self.now = event.time
                self._fired += 1
                fired += 1
                if tracer is not None:
                    tracer.event(
                        self.now, "sim.fire",
                        seq=event.seq, fn=_callable_name(event.fn),
                    )
                event.fn(*event.args)
                if fired >= next_gc:
                    next_gc += GC_EVENT_INTERVAL
                    gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no live (non-daemon) events remain."""
        return self.run(until=None, max_events=max_events)
