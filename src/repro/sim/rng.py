"""Seeded randomness for simulations.

All stochastic behaviour in a simulation -- network jitter, message loss,
workload inter-arrival times, Zipf page selection -- draws from one
:class:`SeededRng` owned by the :class:`repro.sim.kernel.Simulator`.
Components may fork child generators (:meth:`SeededRng.fork`) so that adding
a new consumer does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import functools
import hashlib
import math
import random
from typing import List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


@functools.lru_cache(maxsize=None)
def _zipf_weights_cached(n: int, s: float) -> Tuple[float, ...]:
    """Normalized Zipf(s) probabilities for ranks 0..n-1, memoized.

    Shared module-wide: a population of identical clients pays the
    O(n) harmonic sum once per distinct ``(n, s)``, not once per client.
    """
    raw = [1.0 / math.pow(rank + 1, s) for rank in range(n)]
    total = sum(raw)
    return tuple(w / total for w in raw)


@functools.lru_cache(maxsize=None)
def zipf_cumulative(n: int, s: float = 1.0) -> Tuple[float, ...]:
    """Cumulative Zipf(s) weights for ranks 0..n-1, memoized.

    ``zipf_cumulative(n, s)[i]`` equals ``sum(zipf_weights(n, s)[:i+1])``
    with the identical left-to-right accumulation, so a bisect over this
    table draws the same rank (from the same uniform variate) as the
    linear scan in :meth:`SeededRng.weighted_index` -- bit-for-bit.
    """
    if n <= 0:
        raise ValueError(f"population size must be positive, got {n!r}")
    weights = _zipf_weights_cached(n, s)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    return tuple(cumulative)


class SeededRng:
    """A deterministic random source with distribution helpers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        # The underlying Mersenne Twister is materialized on first draw,
        # not at construction: large builds fork thousands of streams
        # (one per client, per component) and the ones never sampled
        # should not pay the ~2500-word MT state initialization.  The
        # draw sequence per stream is untouched -- the seed is fixed at
        # construction, only the state setup is deferred.
        self._random: Optional[random.Random] = None
        self._forks = 0

    def _materialize(self) -> random.Random:
        rng = self._random = random.Random(self.seed)
        return rng

    def fork(self, label: str = "") -> "SeededRng":
        """Create an independent child generator.

        The child's seed is derived from the parent seed, the fork index and
        an optional label via a stable hash, so fork order plus labels fully
        determine every stream -- across processes and interpreter
        invocations, not just within one (the built-in ``hash`` is
        randomized per process and must not be used here).
        """
        self._forks += 1
        digest = hashlib.sha256(
            f"{self.seed}|{self._forks}|{label}".encode("utf-8")
        ).digest()
        child_seed = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return SeededRng(child_seed)

    # -- thin pass-throughs -------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self._random or self._materialize()).random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return (self._random or self._materialize()).uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return (self._random or self._materialize()).randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly chosen element of a non-empty sequence."""
        return (self._random or self._materialize()).choice(items)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        (self._random or self._materialize()).shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """k distinct elements chosen without replacement."""
        return (self._random or self._materialize()).sample(items, k)

    # -- distributions ------------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponentially distributed value with the given mean.

        Used for Poisson inter-arrival times in workload generators.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return (self._random or self._materialize()).expovariate(1.0 / mean)

    def exponential_block(self, mean: float, count: int) -> List[float]:
        """``count`` exponential draws in one call (vectorized epoch draw).

        Consumes the stream exactly as ``count`` single
        :meth:`exponential` calls would, so batching is invisible to
        seeded results; it only removes per-draw call overhead from
        workload hot loops.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        rate = 1.0 / mean
        expovariate = (self._random or self._materialize()).expovariate
        return [expovariate(rate) for _ in range(count)]

    def pareto(self, alpha: float, minimum: float = 1.0) -> float:
        """Pareto-distributed value, the classic heavy tail for web object
        sizes and think times."""
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha!r}")
        return minimum * (self._random or self._materialize()).paretovariate(alpha)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p!r}")
        return (self._random or self._materialize()).random() < p

    def zipf(self, n: int, s: float = 1.0) -> int:
        """Zipf-distributed rank in [0, n), rank 0 most popular.

        Web page popularity is famously Zipf-like; this drives the workload
        generators in :mod:`repro.workload`.
        """
        if n <= 0:
            raise ValueError(f"population size must be positive, got {n!r}")
        weights = self.zipf_weights(n, s)
        return self.weighted_index(weights)

    @staticmethod
    def zipf_weights(n: int, s: float = 1.0) -> List[float]:
        """Normalized Zipf(s) probabilities for ranks 0..n-1.

        The computation is memoized module-wide by ``(n, s)``; callers
        receive a fresh list, so mutating it cannot poison the cache.
        """
        return list(_zipf_weights_cached(n, s))

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Index drawn with probability proportional to ``weights``."""
        if not weights:
            raise ValueError("weights must be non-empty")
        target = (self._random or self._materialize()).random() * sum(weights)
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if target < cumulative:
                return index
        return len(weights) - 1
