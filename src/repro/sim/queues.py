"""Pluggable event queues for the simulation kernel.

The :class:`~repro.sim.kernel.Simulator` extracts the next event to fire
from an *event queue*: a priority queue over :class:`~repro.sim.events.
Event` ordered by ``(time, seq)``.  Two implementations ship:

- :class:`HeapEventQueue` -- the historical binary heap (``heapq``).
  O(log n) per operation in the total pending-event count; the right
  choice for small populations and the reference for equivalence tests.
- :class:`CalendarEventQueue` -- a calendar queue (R. Brown, CACM 1988):
  a circular array of day buckets, each holding the events of one
  ``width``-sized slice of virtual time.  Push hashes an event to its
  bucket directly; pop scans forward from the current day.  With the
  bucket count tracking the pending-event count, both operations are
  amortized O(1), which is what makes O(10^5)-client populations (and
  their O(10^5)-entry pending sets) affordable.

Both queues key their internal heaps by explicit ``(time, seq, event)``
tuples rather than comparing :class:`~repro.sim.events.Event` objects:
``seq`` is unique, so tuple comparison resolves in C without ever
reaching the event, where an ``Event.__lt__`` call per heap sift used to
dominate queue cost.

Both queues deliver events in exactly the same total order -- ascending
``(time, seq)`` -- so a seeded simulation produces bit-identical results
regardless of the scheduler choice.  The property and golden parity
tests in ``tests/test_sim_scheduler.py`` pin this equivalence.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple, Type

from repro.sim.events import Event

#: One queue entry: the explicit sort key plus its event.  ``seq`` is
#: unique per simulation, so comparisons never fall through to the event.
QueueEntry = Tuple[float, int, Event]


class HeapEventQueue:
    """The classic binary-heap event queue (``heapq`` over one list)."""

    name = "heap"

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[QueueEntry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        """Insert ``event``, keyed by its ``(time, seq)`` order."""
        heapq.heappush(self._heap, (event.time, event.seq, event))

    def peek(self) -> Optional[Event]:
        """The minimum event without removing it, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> Optional[Event]:
        """Remove and return the minimum event, or ``None`` when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]


class CalendarEventQueue:
    """A calendar-queue event queue with deterministic total order.

    Events hash to ``day = int(time / width)`` and live in bucket
    ``day % nbuckets`` (a small heap of ``(time, seq, event)`` entries,
    so simultaneous events stay in ``seq`` order).  :meth:`pop` scans
    days forward from the last popped day; a full fruitless rotation
    falls back to a direct minimum search across bucket heads and jumps
    the calendar there, so sparse far-future schedules cost one
    O(nbuckets) scan instead of a year-by-year walk.

    The queue resizes itself (doubling/halving the bucket count and
    re-estimating the bucket width from the live event span) whenever the
    population drifts out of the ``nbuckets/2 .. 2*nbuckets`` band, which
    keeps buckets O(1) in expectation.  All decisions are pure functions
    of the queued events, so the pop order -- ascending ``(time, seq)``,
    identical to :class:`HeapEventQueue` -- is deterministic.
    """

    name = "calendar"

    #: Bucket-count bounds: small enough to keep the empty queue cheap,
    #: no upper bound (the population dictates growth).
    MIN_BUCKETS = 8

    __slots__ = ("_buckets", "_nbuckets", "_width", "_size", "_day",
                 "_last_time", "_peeked", "_peeked_day")

    def __init__(self, width: float = 0.05, nbuckets: int = MIN_BUCKETS) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        if nbuckets < 1:
            raise ValueError(f"need at least one bucket, got {nbuckets!r}")
        self._width = float(width)
        self._nbuckets = int(nbuckets)
        self._buckets: List[List[QueueEntry]] = [
            [] for _ in range(self._nbuckets)
        ]
        self._size = 0
        self._day = 0          # the calendar day the next pop scans from
        self._last_time = 0.0  # monotone: the last popped event time
        self._peeked: Optional[QueueEntry] = None  # cached minimum entry
        self._peeked_day = 0                       # its calendar day

    def __len__(self) -> int:
        return self._size

    def _day_of(self, time: float) -> int:
        """The calendar day (bucket-width slice index) holding ``time``."""
        return int(time / self._width)

    def push(self, event: Event) -> None:
        """Insert ``event``; grows the calendar when buckets crowd."""
        time = event.time
        entry = (time, event.seq, event)
        day = int(time / self._width)
        heapq.heappush(self._buckets[day % self._nbuckets], entry)
        self._size += 1
        if day < self._day:
            # Keep ``_day`` a lower bound on every queued event's day, so
            # the forward scan can never claim a later event first.  (The
            # kernel can discard a cancelled future event and then admit
            # earlier schedules, so pops alone do not maintain this.)
            self._day = day
        if self._peeked is not None and entry < self._peeked:
            self._peeked = None  # the cached minimum is no longer minimal
        if self._size > 2 * self._nbuckets:
            self._resize(self._nbuckets * 2)

    def peek(self) -> Optional[Event]:
        """The minimum event without removing it, or ``None`` when empty.

        Locating the minimum does not advance the calendar -- essential
        for the kernel's run loop, which peeks at events it may decide
        *not* to fire (deadline reached, only daemons left).  The scan
        result is cached, so the pop that usually follows is O(1); a
        push of an earlier event or a resize invalidates the cache.
        """
        if self._size == 0:
            return None
        if self._peeked is not None:
            return self._peeked[2]
        nbuckets = self._nbuckets
        width = self._width
        day = self._day
        for _ in range(nbuckets):
            bucket = self._buckets[day % nbuckets]
            if bucket and int(bucket[0][0] / width) == day:
                self._peeked = bucket[0]
                self._peeked_day = day
                return self._peeked[2]
            day += 1
        # A whole rotation held nothing due this year: jump straight to
        # the earliest event (the minimum over bucket heads).
        head = min(bucket[0] for bucket in self._buckets if bucket)
        self._peeked = head
        self._peeked_day = self._day_of(head[0])
        return head[2]

    def pop(self) -> Optional[Event]:
        """Remove and return the minimum event, or ``None`` when empty.

        Popped events must be consumed (fired or discarded as
        cancelled), never reinserted: the calendar advances to the popped
        event's day, and the kernel's clock guarantee (no event is ever
        scheduled before the last consumed time) is what keeps the
        forward scan correct.
        """
        if self.peek() is None:
            return None
        self._day = self._peeked_day
        entry = heapq.heappop(self._buckets[self._day % self._nbuckets])
        self._peeked = None
        self._size -= 1
        self._last_time = entry[0]
        if (
            self._nbuckets > self.MIN_BUCKETS
            and self._size < self._nbuckets // 2
        ):
            self._resize(max(self.MIN_BUCKETS, self._nbuckets // 2))
        return entry[2]

    def _resize(self, nbuckets: int) -> None:
        """Rebuild with ``nbuckets`` buckets and a re-estimated width.

        The width targets ~3 events per bucket-day over the live event
        span -- the classic calendar-queue heuristic, computed here from
        the full population (cheap: a resize already touches every
        event) so the estimate is deterministic.
        """
        entries: List[QueueEntry] = [
            entry for bucket in self._buckets for entry in bucket
        ]
        lo = self._last_time
        if entries:
            lo = min(entry[0] for entry in entries)
            hi = max(entry[0] for entry in entries)
            span = hi - lo
            if span > 0.0:
                self._width = 3.0 * span / max(1, len(entries))
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        for entry in entries:
            heapq.heappush(
                self._buckets[self._day_of(entry[0]) % nbuckets], entry
            )
        # Restart the scan at the earliest queued event: the new width
        # renumbers every day, and the cached peek is stale too.
        self._day = self._day_of(lo)
        self._peeked = None


#: Selectable event-queue implementations, by scheduler name.
SCHEDULERS: Dict[str, Type] = {
    HeapEventQueue.name: HeapEventQueue,
    CalendarEventQueue.name: CalendarEventQueue,
}


def make_event_queue(scheduler: str):
    """Build the event queue for ``scheduler`` (``"heap"``/``"calendar"``)."""
    try:
        factory = SCHEDULERS[scheduler]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; "
            f"available: {', '.join(sorted(SCHEDULERS))}"
        ) from None
    return factory()
