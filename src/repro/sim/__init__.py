"""Deterministic discrete-event simulation kernel (substrate S1).

The paper's prototype ran a handful of JVMs over TCP on the 1997 Internet.
This package replaces that testbed with a deterministic discrete-event
simulator: simulated processes exchange messages through a simulated network
(:mod:`repro.net`), and every run is exactly reproducible from its seed.

Public API
----------
- :class:`Simulator` -- the event loop and virtual clock.
- :class:`Event` -- a scheduled callback, cancellable.
- :class:`Future` -- a one-shot result container usable from coroutines.
- :class:`Process` -- a generator-based simulated process.
- :class:`Delay` / :class:`WaitFor` -- the values a process may yield.
- :class:`SeededRng` -- the single source of randomness for a simulation.
"""

from repro.sim.errors import SimulationError, SimulationLimitExceeded
from repro.sim.events import Event
from repro.sim.future import Future, FutureCancelled
from repro.sim.kernel import Simulator
from repro.sim.process import Delay, Process, ProcessKilled, WaitFor
from repro.sim.rng import SeededRng

__all__ = [
    "Delay",
    "Event",
    "Future",
    "FutureCancelled",
    "Process",
    "ProcessKilled",
    "SeededRng",
    "SimulationError",
    "SimulationLimitExceeded",
    "Simulator",
    "WaitFor",
]
