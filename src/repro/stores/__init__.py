"""Store hierarchy utilities (S10).

The store classes themselves live with the DSO assembly
(:class:`repro.core.dso.Store`); this package adds the Fig. 2 layer view
and hierarchy introspection used by experiments F1/F2.
"""

from repro.core.dso import Store
from repro.core.interfaces import Role, STORE_LAYERS
from repro.stores.hierarchy import HierarchyView, describe_hierarchy

__all__ = [
    "HierarchyView",
    "Role",
    "STORE_LAYERS",
    "Store",
    "describe_hierarchy",
]
