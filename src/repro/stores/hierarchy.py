"""Layered store-system introspection (Fig. 2 of the paper).

The system model separates server-managed replicas (permanent and
object-initiated stores) from client-managed ones (client-initiated
stores), with coherence guarantees allowed to weaken below the store-scope
layer.  :func:`describe_hierarchy` extracts that layered view from a live
object for the F2 experiment and for debugging.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.dso import DistributedSharedObject
from repro.core.interfaces import Role, STORE_LAYERS


@dataclasses.dataclass(frozen=True)
class StoreInfo:
    """One store's position and guarantee level."""

    address: str
    role: Role
    parent: Optional[str]
    children: List[str]
    #: Whether the object-based model is enforced here (vs eventual).
    enforced: bool
    model: str


@dataclasses.dataclass(frozen=True)
class HierarchyView:
    """The layered store organisation of one distributed object."""

    object_id: str
    layers: Dict[Role, List[StoreInfo]]

    def layer(self, role: Role) -> List[StoreInfo]:
        """Stores at one Fig. 2 layer."""
        return self.layers.get(role, [])

    def depth_of(self, address: str) -> int:
        """Distance from the primary permanent store (primary = 0)."""
        parents = {
            info.address: info.parent
            for infos in self.layers.values()
            for info in infos
        }
        depth = 0
        node: Optional[str] = address
        while node is not None and parents.get(node) is not None:
            node = parents[node]
            depth += 1
            if depth > len(parents):
                raise ValueError(f"cycle in store hierarchy at {address!r}")
        return depth

    def rows(self) -> List[List[str]]:
        """Table rows (layer, store, parent, model) for rendering."""
        out: List[List[str]] = []
        for role in STORE_LAYERS:
            for info in self.layer(role):
                out.append(
                    [
                        role.value,
                        info.address,
                        info.parent or "-",
                        info.model if info.enforced else "eventual (weakened)",
                    ]
                )
        return out


def describe_hierarchy(dso: DistributedSharedObject) -> HierarchyView:
    """Build the layered view of a live distributed shared object."""
    layers: Dict[Role, List[StoreInfo]] = {}
    for address, store in dso.stores.items():
        engine = store.engine
        info = StoreInfo(
            address=address,
            role=store.role,
            parent=engine.parent,
            children=list(engine.children),
            enforced=engine.enforced,
            model=dso.policy.model.value,
        )
        layers.setdefault(store.role, []).append(info)
    return HierarchyView(object_id=dso.object_id, layers=layers)
