"""Command-line driver for the results book.

``python -m repro.report --grid table1`` runs (or replays from cache)
the named grid and regenerates ``RESULTS.md`` plus one SVG heat map per
metric under ``--out``; ``--check`` renders in memory and fails when the
on-disk artifacts differ (the CI staleness gate); ``--list`` catalogs
the registered grids and metrics.  The execution flags (``--parallel``,
``--executor``, ``--cache-dir``, ``--cache-clear``) are the same ones
``python -m repro.experiments`` takes, backed by the same runner and
cache; the book renders bit-identically under every executor.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.exec import (
    ResultCache,
    add_exec_arguments,
    apply_cache_maintenance,
    cached_point_labels,
)
from repro.report.book import (
    HEATMAP_DIR,
    book_artifacts,
    check_book,
    write_book,
)
from repro.report.grid import (
    GRIDS,
    METRICS,
    get_grid,
    grid_spec,
    run_grid,
    validate_metric_keys,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.report`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Render cached cross-product sweeps into the results "
                    "book (RESULTS.md + per-metric heat maps).",
    )
    parser.add_argument(
        "--grid", default="table1", metavar="NAME",
        help=f"grid to render (default table1; one of: {', '.join(GRIDS)})",
    )
    parser.add_argument(
        "--metric", action="append", default=None, metavar="KEY",
        help="restrict the book to one metric (repeatable; default: "
             f"all of {', '.join(METRICS)})",
    )
    parser.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory RESULTS.md and results/heatmaps/ are written "
             "under (default: current directory)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="render in memory and fail (exit 1) when the artifacts "
             "under --out are missing or stale instead of writing them",
    )
    parser.add_argument(
        "--health", action="store_true",
        help="append the run-health appendix (per-point timing from the "
             "cache's manifest.jsonl; requires --cache-dir)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_grids",
        help="list registered grids and metrics, then exit",
    )
    add_exec_arguments(parser)
    return parser


def _print_catalog() -> None:
    """Print the grid and metric registries."""
    print("grids:")
    for name, grid in GRIDS.items():
        print(f"  {name}: {grid.title} -- {grid.point_count()} points")
    print("metrics:")
    for key, metric in METRICS.items():
        print(f"  {key}: {metric.title} ({metric.unit})")


def main(argv: List[str]) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_grids:
        _print_catalog()
        return 0
    try:
        grid = get_grid(args.grid)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    # Validate the metric selection before any sweep work: a typo must
    # fail instantly, not after the grid has executed.
    try:
        validate_metric_keys(args.metric)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.check and args.metric:
        # The committed book always holds every metric, so a subset
        # render can never match it; the combination is a user error.
        print("--check compares the full book; it cannot be combined "
              "with --metric", file=sys.stderr)
        return 2
    if args.health and args.check:
        # The health appendix carries machine-dependent timings; a book
        # containing it can never byte-match the committed one.
        print("--check compares the committed book, which never "
              "contains the run-health appendix; drop --health",
              file=sys.stderr)
        return 2
    if args.health and args.cache_dir is None:
        print("--health reads manifest.jsonl from the cache; pass "
              "--cache-dir", file=sys.stderr)
        return 2
    maintenance = apply_cache_maintenance(args)
    if maintenance:
        print(maintenance)
    cache = None
    if args.cache_dir is not None:
        cache = ResultCache(args.cache_dir)
        spec = grid_spec(grid)
        warm = len(cached_point_labels(spec, cache))
        print(f"grid {grid.name}: {warm}/{len(spec.points)} points cached")
    results = run_grid(grid, parallel=args.parallel, cache=cache,
                       executor=args.executor)
    health = None
    if args.health:
        from repro.obs import MANIFEST_NAME, load_manifest, summarize_manifest

        spec_name = grid_spec(grid).name
        manifest_path = Path(args.cache_dir) / MANIFEST_NAME
        try:
            records = load_manifest(manifest_path)
        except OSError as exc:
            print(f"cannot read manifest {manifest_path}: {exc}",
                  file=sys.stderr)
            return 2
        health = summarize_manifest(
            records, spec=spec_name
        )["specs"].get(spec_name)
        if health is None:
            print(f"manifest has no records for sweep {spec_name!r}",
                  file=sys.stderr)
            return 2
    artifacts = book_artifacts(grid, results, metrics=args.metric,
                               health=health)
    out_dir = Path(args.out)
    if args.check:
        stale = check_book(
            artifacts, out_dir,
            orphan_globs=[f"{HEATMAP_DIR}/{grid.name}/*.svg"],
        )
        if stale:
            print("stale generated docs (re-run python -m repro.report):")
            for entry in stale:
                print(f"  {entry}")
            return 1
        print(f"results book up to date ({len(artifacts)} artifacts)")
        return 0
    for path in write_book(artifacts, out_dir):
        print(f"wrote {path}")
    return 0
