"""``python -m repro.report``: regenerate or check the results book."""

import sys

from repro.report.cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
