"""Assemble the generated results book (``RESULTS.md`` + heat maps).

:func:`book_artifacts` renders one grid's aggregated results into a
mapping of relative paths to file contents -- the markdown book itself
plus one SVG heat map per metric.  :func:`write_book` persists that
mapping under an output directory; :func:`check_book` diffs it against
what is on disk, which is the CI staleness gate: committed artifacts
must be bit-identical to a fresh render.

Nothing here timestamps or randomizes, so the same grid results always
produce the same bytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence

from repro.faults.catalog import get_fault_plan
from repro.report.aggregate import MetricTable, aggregate
from repro.report.grid import (
    STRATEGIES,
    GridDef,
    validate_metric_keys,
)
from repro.report.render import (
    ascii_heatmap,
    markdown_metric_table,
    svg_heatmap,
)
from repro.workload.profiles import get_profile

#: Directory (relative to the book) the SVG heat maps live in.
HEATMAP_DIR = "results/heatmaps"

#: Name of the rendered book file.
BOOK_NAME = "RESULTS.md"


def heatmap_path(grid: GridDef, metric_key: str) -> str:
    """Relative path of one grid metric's SVG heat map.

    Each grid gets its own subdirectory so orphan detection for one
    grid can never match another grid's files (``table1-*`` would also
    match ``table1-small-*``; ``table1/*`` cannot).
    """
    return f"{HEATMAP_DIR}/{grid.name}/{metric_key}.svg"


def _crosswalk_section(grid: GridDef) -> List[str]:
    """The paper-crosswalk tables: strategies and workloads spelled out."""
    lines = [
        "## Paper crosswalk",
        "",
        "The grid's protocol axis is a set of named strategies, each a "
        "point in the implementation-parameter space of the paper's "
        "Table 1 (see `t1` in EXPERIMENTS.md for the table itself; "
        "experiments X1, X2 and X6 sweep individual rows of it -- this "
        "grid crosses them).  Store scope and write set stay at their "
        "defaults (all layers, single writer):",
        "",
        "| strategy | propagation | initiative | instant | "
        "coherence transfer | access transfer |",
        "|---|---|---|---|---|---|",
    ]
    for name in grid.protocols:
        strategy = STRATEGIES[name]
        propagation, initiative, instant, coherence, access = (
            strategy.table1_cells()
        )
        if strategy.horizon is not None:
            initiative += f" (cut at {strategy.horizon:g}s)"
        lines.append(
            f"| {name} | {propagation} | {initiative} | {instant} "
            f"| {coherence} | {access} |"
        )
    if grid.is_fault_grid:
        lines += [
            "",
            "The column axis is the *fault plan* (registered in "
            "`repro.faults.catalog`; the same declarative plans run on "
            "the sim and live transports).  The workload is fixed at "
            f"`{grid.workloads[0]}` "
            f"({get_profile(grid.workloads[0]).describe()}):",
            "",
            "| fault plan | scenario |",
            "|---|---|",
        ]
        for name in grid.fault_plans:
            lines.append(f"| {name} | {get_fault_plan(name).description} |")
    else:
        lines += [
            "",
            "The workload axis reuses the registered profiles of "
            "`repro.workload.profiles`:",
            "",
            "| profile | traffic |",
            "|---|---|",
        ]
        for name in grid.workloads:
            lines.append(f"| {name} | {get_profile(name).describe()} |")
    lines += [
        "",
        f"Tree sizes: {', '.join(str(s) for s in grid.sizes)} "
        "client-initiated caches (one reader each, plus the master "
        "writing at the server), "
        f"{grid.replications} independent replications per cell.",
    ]
    return lines


def _health_section(health: Dict[str, Any]) -> List[str]:
    """The opt-in run-health appendix, from one spec's manifest summary.

    ``health`` is one spec's stats dict as produced by
    :func:`repro.obs.manifest.summarize_manifest`.  Wall times and RSS
    are machine-dependent, which is exactly why this section is opt-in
    (``--health``) and never part of the ``--check``-gated book.
    """
    executors = ", ".join(
        f"`{name}` ({count})"
        for name, count in sorted(health["executors"].items())
    )
    lines = [
        "",
        "## Run health",
        "",
        "Telemetry from the sweep run manifest (`manifest.jsonl` in the "
        "cache directory; inspect with `python -m repro.obs summary`).  "
        "Timings are machine-dependent, so this appendix only appears "
        "with `--health` and is not compared by `--check`.",
        "",
        f"- points evaluated: {health['points']} "
        f"({health['hits']} cache hits, {health['computed']} computed, "
        f"{health['failed']} failed)",
        f"- wall time: {health['wall_total_s']:.3f} s total, "
        f"{health['wall_mean_s']:.3f} s mean, "
        f"{health['wall_max_s']:.3f} s max",
        f"- peak worker RSS: {health['peak_rss_kb']} KB",
        f"- traced events: {health['events']}",
        f"- executors: {executors}",
    ]
    if health["slowest"]:
        lines += [
            "",
            "Slowest computed points:",
            "",
            "| point | wall (s) |",
            "|---|---|",
        ]
        for label, wall in health["slowest"]:
            lines.append(f"| `{label}` | {wall:.3f} |")
    for failure in health["failures"]:
        lines.append(f"- **FAILED** `{failure['label']}`: "
                     f"{failure['error']}")
    return lines


def book_artifacts(
    grid: GridDef,
    results: Mapping[Hashable, Dict[str, float]],
    metrics: Optional[Sequence[str]] = None,
    health: Optional[Dict[str, Any]] = None,
) -> Dict[str, str]:
    """Render one grid into ``{relative path: file content}``.

    ``metrics`` restricts the book to a subset of metric keys (default:
    every registered metric).  The mapping contains ``RESULTS.md`` plus
    one SVG per rendered metric.  ``health`` (a spec's stats dict from
    :func:`repro.obs.manifest.summarize_manifest`) appends the opt-in
    run-health appendix; the committed, ``--check``-gated book omits it.
    """
    validate_metric_keys(metrics)
    selected = (
        list(metrics) if metrics is not None else list(grid.metric_keys())
    )
    missing = [key for key in selected if key not in grid.metric_keys()]
    if missing:
        raise KeyError(
            f"grid {grid.name!r} does not report: {', '.join(missing)}; "
            f"its metrics: {', '.join(grid.metric_keys())}"
        )
    tables = aggregate(grid, results)
    artifacts: Dict[str, str] = {}
    lines = [
        "# Results book",
        "",
        "> Generated by `python -m repro.report --grid "
        f"{grid.name}`.  Do not edit by hand; re-run the command (CI "
        "verifies with `python -m repro.report --check`).  Rendering is "
        "deterministic: a re-run with a warm result cache is "
        "bit-identical.",
        "",
        f"## Grid `{grid.name}`: {grid.title}",
        "",
        grid.description,
        "",
        f"{grid.point_count()} sweep points "
        f"({len(grid.protocols)} strategies x {len(grid.col_values())} "
        f"{'fault plans' if grid.is_fault_grid else 'workloads'} x "
        f"{len(grid.sizes)} sizes x {grid.replications} "
        "replications), executed through `repro.exec.run_sweep` -- grow "
        "the grid incrementally with `--cache-dir`; finished cells are "
        "never recomputed.",
        "",
    ]
    lines += _crosswalk_section(grid)
    for key in selected:
        table: MetricTable = tables[key]
        svg_rel = heatmap_path(grid, key)
        artifacts[svg_rel] = svg_heatmap(table)
        lines += [
            "",
            f"### {table.metric.title} ({table.metric.unit})",
            "",
            table.metric.description + "  Cells are `mean (p95)` over "
            f"{grid.replications} replications; "
            + ("lower is better." if table.metric.lower_is_better
               else "higher is better."),
            "",
            markdown_metric_table(table),
            "",
            f"![{table.metric.title} heat map]({svg_rel})",
            "",
            "```",
            ascii_heatmap(table),
            "```",
        ]
    if health is not None:
        lines += _health_section(health)
    artifacts[BOOK_NAME] = "\n".join(lines) + "\n"
    return artifacts


def write_book(artifacts: Mapping[str, str], out_dir: Path) -> List[Path]:
    """Write rendered artifacts under ``out_dir``; return written paths."""
    written = []
    for rel_path, content in sorted(artifacts.items()):
        path = Path(out_dir) / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        # newline="" disables platform newline translation: the bytes on
        # disk must equal content.encode() for check_book on every OS.
        with path.open("w", encoding="utf-8", newline="") as handle:
            handle.write(content)
        written.append(path)
    return written


def check_book(
    artifacts: Mapping[str, str],
    out_dir: Path,
    orphan_globs: Sequence[str] = (),
) -> List[str]:
    """Diff rendered artifacts against disk; return the stale paths.

    A path is stale when it is missing or its bytes differ from the
    fresh render.  ``orphan_globs`` (patterns relative to ``out_dir``,
    e.g. ``results/heatmaps/table1-*.svg``) additionally flags on-disk
    files the fresh render no longer produces -- a renamed metric must
    not leave its old heat map committed forever.  An empty return means
    the committed book is exactly what the current code and grid
    produce.
    """
    stale = []
    for rel_path, content in sorted(artifacts.items()):
        path = Path(out_dir) / rel_path
        try:
            # Byte comparison: a corrupt (non-UTF-8) committed artifact
            # must report as stale, not crash the check.
            on_disk = path.read_bytes()
        except OSError:
            stale.append(f"{rel_path} (missing)")
            continue
        if on_disk != content.encode("utf-8"):
            stale.append(f"{rel_path} (out of date)")
    for pattern in orphan_globs:
        for path in sorted(Path(out_dir).glob(pattern)):
            rel_path = path.relative_to(out_dir).as_posix()
            if rel_path not in artifacts:
                stale.append(f"{rel_path} (orphaned)")
    return stale
