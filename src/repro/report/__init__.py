"""Reporting subsystem: cached sweeps rendered into a results book.

``repro.report`` is the layer above :mod:`repro.exec` that turns raw
per-point sweep results into artifacts a reader can check against the
paper: dense cross-product grids over the Table-1 parameter space
(:mod:`repro.report.grid`), reduction of the cached per-point results
into tidy per-cell statistics (:mod:`repro.report.aggregate`), and
renderers that emit per-metric ASCII/SVG heat maps plus a generated
``RESULTS.md`` results book (:mod:`repro.report.render`,
:mod:`repro.report.book`).

The pipeline is ``exec -> cache -> aggregate -> render``::

    python -m repro.report --grid table1 --parallel 0 --cache-dir .sweep-cache

runs (or replays from cache) the full grid and regenerates the book;
``--check`` re-renders in memory and fails when the committed artifacts
have gone stale.  Everything rendered is a pure function of the grid
definition and the cached results, so a re-run with a warm cache is
bit-identical.
"""

from repro.report.aggregate import CellStats, MetricTable, aggregate
from repro.report.book import (
    book_artifacts,
    check_book,
    write_book,
)
from repro.report.grid import (
    GRIDS,
    METRICS,
    STRATEGIES,
    GridDef,
    MetricDef,
    ProtocolStrategy,
    get_grid,
    grid_spec,
    run_grid,
)
from repro.report.render import (
    ascii_heatmap,
    markdown_metric_table,
    svg_heatmap,
)

__all__ = [
    "GRIDS",
    "METRICS",
    "STRATEGIES",
    "CellStats",
    "GridDef",
    "MetricDef",
    "MetricTable",
    "ProtocolStrategy",
    "aggregate",
    "ascii_heatmap",
    "book_artifacts",
    "check_book",
    "get_grid",
    "grid_spec",
    "markdown_metric_table",
    "run_grid",
    "svg_heatmap",
    "write_book",
]
