"""Reduce raw grid results into tidy per-cell metric tables.

The runner hands back one flat metric dict per ``(protocol, workload,
size, replication)`` point; this module folds the replication axis away,
leaving, per metric, a :class:`MetricTable`: protocol rows, (workload,
size) columns, and a :class:`CellStats` (mean / median / p95 over the
replications) in every cell.  Tables are plain data -- the renderers in
:mod:`repro.report.render` consume them without knowing how the grid was
executed, and tests can assert on them without rendering anything.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Mapping, Tuple

from repro.metrics.report import percentile
from repro.report.grid import METRICS, GridDef, MetricDef


@dataclasses.dataclass(frozen=True)
class CellStats:
    """Replication statistics for one grid cell, one metric."""

    values: Tuple[float, ...]
    mean: float
    p50: float
    p95: float

    @classmethod
    def from_values(cls, values: List[float]) -> "CellStats":
        """Summarize one cell's replication values (must be non-empty)."""
        if not values:
            raise ValueError("a grid cell must have at least one value")
        return cls(
            values=tuple(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
        )


@dataclasses.dataclass(frozen=True)
class MetricTable:
    """One metric over the whole grid: protocol rows, (column, size) cols.

    The column-axis string is a workload name on classic grids and a
    fault-plan name on fault grids; the table is agnostic.
    """

    metric: MetricDef
    rows: Tuple[str, ...]
    #: Column keys in declaration order: ``(workload-or-plan, size)``.
    cols: Tuple[Tuple[str, int], ...]
    cells: Mapping[Tuple[str, Tuple[str, int]], CellStats]

    def cell(self, row: str, col: Tuple[str, int]) -> CellStats:
        """The statistics of one (protocol, column) cell."""
        return self.cells[(row, col)]

    def value_range(self) -> Tuple[float, float]:
        """(min, max) of the cell means (heat-map color scale domain)."""
        means = [stats.mean for stats in self.cells.values()]
        return min(means), max(means)


def aggregate(
    grid: GridDef,
    results: Mapping[Hashable, Dict[str, float]],
) -> Dict[str, MetricTable]:
    """Fold a grid's raw results into one :class:`MetricTable` per metric.

    ``results`` is the mapping :func:`~repro.report.grid.run_grid`
    returned (point label -> flat metric dict); every declared cell must
    be present with every declared metric, so a silently missing point
    can never render as an empty-looking cell.
    """
    rows = grid.protocols
    keys = grid.metric_keys()
    cols: Tuple[Tuple[str, int], ...] = tuple(
        (col, size)
        for col in grid.col_values()
        for size in grid.sizes
    )
    per_metric: Dict[str, Dict[Tuple[str, Tuple[str, int]], CellStats]] = {
        key: {} for key in keys
    }
    for protocol in rows:
        for col, size in cols:
            samples: Dict[str, List[float]] = {key: [] for key in keys}
            for rep in range(grid.replications):
                label = grid.cell_label(protocol, col, size, rep)
                if label not in results:
                    raise KeyError(
                        f"grid {grid.name!r} is missing point {label!r}; "
                        "was the sweep run with a different grid definition?"
                    )
                point = results[label]
                for key in keys:
                    if key not in point:
                        raise KeyError(
                            f"point {label!r} lacks metric {key!r}"
                        )
                    samples[key].append(float(point[key]))
            for key, values in samples.items():
                per_metric[key][(protocol, (col, size))] = (
                    CellStats.from_values(values)
                )
    return {
        key: MetricTable(
            metric=METRICS[key],
            rows=tuple(rows),
            cols=cols,
            cells=per_metric[key],
        )
        for key in keys
    }


def column_title(col: Tuple[str, int]) -> str:
    """Human form of a column key: ``workload / N caches``."""
    workload, size = col
    return f"{workload} / {size}"


def column_abbrev(col: Tuple[str, int]) -> str:
    """Compact form of a column key for heat-map axes (e.g. ``RH2``)."""
    workload, size = col
    initials = "".join(part[0].upper() for part in workload.split("-"))
    return f"{initials}{size}"
