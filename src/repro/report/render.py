"""Renderers: metric tables to markdown, ASCII and SVG heat maps.

Everything here is a pure function of a
:class:`~repro.report.aggregate.MetricTable`; floats render through the
metric's own format spec and the color scale is a fixed sequential ramp,
so output is bit-identical across runs, machines and parallelism -- the
property the results book's ``--check`` gate relies on.

The SVG heat maps follow the house data-viz rules: one-hue sequential
ramp (light = low, dark = high), a 2px surface gap between cell fills,
values and labels in text ink (never the series color), and a legend
naming the scale's actual domain.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.report.aggregate import MetricTable, column_abbrev, column_title

#: Shade characters for ASCII heat maps, lightest (low) to densest (high).
ASCII_RAMP = " .:-=+*#%@"

#: Sequential blue ramp (steps 100..700), lightest first.  One hue,
#: light-to-dark: the lightest step means "near zero" and recedes toward
#: the surface.
SVG_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: First ramp index whose fill is dark enough to need light value text.
_DARK_FROM = 7

_SURFACE = "#fcfcfb"
_INK = "#0b0b0b"
_INK_SECONDARY = "#52514e"
_INK_ON_DARK = "#ffffff"


def _normalize(value: float, low: float, high: float) -> float:
    """Map ``value`` into [0, 1] over the table's domain (0 when flat)."""
    if high <= low:
        return 0.0
    return max(0.0, min(1.0, (value - low) / (high - low)))


def _ramp_index(value: float, low: float, high: float, steps: int) -> int:
    """The ramp step for ``value`` (last step only at the maximum)."""
    position = _normalize(value, low, high)
    return min(steps - 1, int(position * steps))


def markdown_metric_table(table: MetricTable) -> str:
    """One metric as a GitHub-flavoured markdown table.

    Cells render ``mean (p95)`` over the cell's replications, using the
    metric's own format spec.
    """
    fmt = table.metric.fmt
    header = ["protocol"] + [column_title(col) for col in table.cols]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in table.rows:
        cells = [row]
        for col in table.cols:
            stats = table.cell(row, col)
            cells.append(
                f"{format(stats.mean, fmt)} ({format(stats.p95, fmt)})"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def ascii_heatmap(table: MetricTable) -> str:
    """One metric as a terminal heat map (shade characters).

    Rows are protocols, columns the abbreviated (workload, size) pairs;
    the legend names the shade ramp's actual domain so the picture can
    be read quantitatively.
    """
    low, high = table.value_range()
    fmt = table.metric.fmt
    label_width = max(len("protocol"), *(len(row) for row in table.rows))
    abbrevs = [column_abbrev(col) for col in table.cols]
    cell_width = max(3, *(len(a) for a in abbrevs)) + 1
    lines = [
        "protocol".ljust(label_width) + " "
        + "".join(a.rjust(cell_width) for a in abbrevs)
    ]
    for row in table.rows:
        shades = []
        for col in table.cols:
            index = _ramp_index(table.cell(row, col).mean, low, high,
                                len(ASCII_RAMP))
            shades.append((ASCII_RAMP[index] * 2).rjust(cell_width))
        lines.append(row.ljust(label_width) + " " + "".join(shades))
    direction = "lower is better" if table.metric.lower_is_better else (
        "higher is better")
    lines.append("")
    lines.append(
        f"scale: ' '(low) -> '@'(high), "
        f"{format(low, fmt)}..{format(high, fmt)} {table.metric.unit} "
        f"({direction}); columns abbreviate workload/size"
    )
    return "\n".join(lines)


def _svg_text(x: float, y: float, text: str, fill: str, size: int = 12,
              anchor: str = "middle", weight: str = "normal") -> str:
    """One deterministic SVG ``<text>`` element."""
    return (
        f'<text x="{x:g}" y="{y:g}" fill="{fill}" font-size="{size}" '
        f'text-anchor="{anchor}" font-weight="{weight}" '
        f'font-family="system-ui, sans-serif">{_escape(text)}</text>'
    )


def _escape(text: str) -> str:
    """Escape a string for SVG text/attribute content."""
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def svg_heatmap(table: MetricTable) -> str:
    """One metric as a standalone SVG heat map.

    Protocol rows, (workload, size) columns grouped by workload, cell
    fill from the sequential ramp over the table's own domain, value
    labels in text ink (light ink on the dark end of the ramp), and a
    stepped legend naming the domain.  Output is deterministic.
    """
    low, high = table.value_range()
    fmt = table.metric.fmt
    cell_w, cell_h, gap = 74, 30, 2
    label_w = 12 + 7 * max(len(row) for row in table.rows)
    top = 64
    legend_h = 56
    width = label_w + len(table.cols) * (cell_w + gap) + 16
    height = top + len(table.rows) * (cell_h + gap) + legend_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{_escape(table.metric.title)} heat map">',
        f'<rect width="{width}" height="{height}" fill="{_SURFACE}"/>',
        _svg_text(8, 20, f"{table.metric.title} ({table.metric.unit})",
                  _INK, size=14, anchor="start", weight="bold"),
        _svg_text(
            8, 38,
            "lower is better" if table.metric.lower_is_better
            else "higher is better",
            _INK_SECONDARY, size=11, anchor="start",
        ),
    ]

    # Column headers: workload group labels over size labels.
    groups: List[Tuple[str, int, int]] = []
    for index, (workload, _) in enumerate(table.cols):
        if groups and groups[-1][0] == workload:
            groups[-1] = (workload, groups[-1][1], index)
        else:
            groups.append((workload, index, index))
    for workload, first, last in groups:
        x0 = label_w + first * (cell_w + gap)
        x1 = label_w + (last + 1) * (cell_w + gap) - gap
        parts.append(_svg_text((x0 + x1) / 2, top - 20, workload,
                               _INK_SECONDARY, size=11))
    for index, (_, size) in enumerate(table.cols):
        x = label_w + index * (cell_w + gap) + cell_w / 2
        parts.append(_svg_text(x, top - 6, f"{size} caches",
                               _INK_SECONDARY, size=10))

    # Cells.
    for row_index, row in enumerate(table.rows):
        y = top + row_index * (cell_h + gap)
        parts.append(_svg_text(label_w - 8, y + cell_h / 2 + 4, row,
                               _INK, size=11, anchor="end"))
        for col_index, col in enumerate(table.cols):
            stats = table.cell(row, col)
            index = _ramp_index(stats.mean, low, high, len(SVG_RAMP))
            fill = SVG_RAMP[index]
            ink = _INK_ON_DARK if index >= _DARK_FROM else _INK
            x = label_w + col_index * (cell_w + gap)
            value = format(stats.mean, fmt)
            tooltip = (
                f"{row} / {column_title(col)}: mean {value} "
                f"(p95 {format(stats.p95, fmt)}) {table.metric.unit}"
            )
            parts.append(
                f'<g><title>{_escape(tooltip)}</title>'
                f'<rect x="{x}" y="{y}" width="{cell_w}" '
                f'height="{cell_h}" rx="2" fill="{fill}"/>'
                + _svg_text(x + cell_w / 2, y + cell_h / 2 + 4, value, ink,
                            size=11)
                + "</g>"
            )

    # Legend: the ramp as discrete steps with the actual domain labeled.
    legend_y = top + len(table.rows) * (cell_h + gap) + 18
    step_w, step_h = 18, 10
    for index, color in enumerate(SVG_RAMP):
        parts.append(
            f'<rect x="{label_w + index * step_w}" y="{legend_y}" '
            f'width="{step_w - 1}" height="{step_h}" fill="{color}"/>'
        )
    parts.append(_svg_text(label_w, legend_y + step_h + 14,
                           format(low, fmt), _INK_SECONDARY, size=10,
                           anchor="start"))
    parts.append(_svg_text(label_w + len(SVG_RAMP) * step_w,
                           legend_y + step_h + 14, format(high, fmt),
                           _INK_SECONDARY, size=10, anchor="end"))
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
