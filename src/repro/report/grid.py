"""Named cross-product grids over the Table-1 parameter space.

A :class:`GridDef` is a declarative description of one dense sweep:
which replication strategies (:data:`STRATEGIES`, each a named point in
the paper's Table-1 parameter space), which workload profiles
(:data:`~repro.workload.profiles.PROFILES`), which topology sizes, and
how many independent replications per cell.  :func:`grid_spec` expands a
grid into a :class:`~repro.exec.SweepSpec` via
:meth:`~repro.exec.SweepSpec.add_grid`, and :func:`run_grid` executes it
through the cached parallel runner -- so a grid is grown incrementally:
every finished cell stays cached and re-renders are near-instant.

Point configs carry only *names* (protocol, workload, fault plan) plus
scalars; the expansion to policies, traffic and fault events lives in the
registries here, in :mod:`repro.workload.profiles` and in
:mod:`repro.faults.catalog`.  Any edit to those sources rotates the
cache's code fingerprint, so stale grid cells can never be served.

A grid whose :attr:`GridDef.fault_plans` is non-empty is a *fault grid*
(experiment X11): its column axis is the fault plan instead of the
workload, and the partition-aware metric columns
(:data:`FAULT_METRIC_KEYS`) join the base set.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.exec import ResultCache, SweepSpec, run_sweep
from repro.faults.catalog import FAULT_PLANS
from repro.replication.policy import (
    AccessTransfer,
    CoherenceTransfer,
    Propagation,
    ReplicationPolicy,
    TransferInitiative,
    TransferInstant,
)
from repro.workload.profiles import get_profile, run_profile


@dataclasses.dataclass(frozen=True)
class ProtocolStrategy:
    """One named point in Table 1's implementation-parameter space."""

    name: str
    propagation: Propagation
    transfer_initiative: TransferInitiative
    transfer_instant: TransferInstant
    coherence_transfer: CoherenceTransfer
    access_transfer: AccessTransfer
    lazy_interval: float = 2.0
    #: Pull-based strategies never quiesce (the pull timer re-arms), so
    #: their runs are cut at a fixed virtual-time horizon instead.
    horizon: Optional[float] = None

    def build_policy(self) -> ReplicationPolicy:
        """The validated :class:`ReplicationPolicy` this strategy names."""
        return ReplicationPolicy(
            propagation=self.propagation,
            transfer_initiative=self.transfer_initiative,
            transfer_instant=self.transfer_instant,
            coherence_transfer=self.coherence_transfer,
            access_transfer=self.access_transfer,
            lazy_interval=self.lazy_interval,
        ).validate()

    def table1_cells(self) -> Tuple[str, str, str, str, str]:
        """This strategy's Table-1 parameter values, for the crosswalk."""
        return (
            self.propagation.value,
            self.transfer_initiative.value,
            self.transfer_instant.value,
            self.coherence_transfer.value,
            self.access_transfer.value,
        )


#: The protocol axis: six strategies spanning Table 1's propagation,
#: initiative, instant and transfer-type rows (the store-scope and
#: write-set rows are held at their defaults: all layers, single writer).
STRATEGIES: Dict[str, ProtocolStrategy] = {
    strategy.name: strategy
    for strategy in (
        ProtocolStrategy(
            name="push-update",
            propagation=Propagation.UPDATE,
            transfer_initiative=TransferInitiative.PUSH,
            transfer_instant=TransferInstant.IMMEDIATE,
            coherence_transfer=CoherenceTransfer.PARTIAL,
            access_transfer=AccessTransfer.PARTIAL,
        ),
        ProtocolStrategy(
            name="push-update-lazy",
            propagation=Propagation.UPDATE,
            transfer_initiative=TransferInitiative.PUSH,
            transfer_instant=TransferInstant.LAZY,
            coherence_transfer=CoherenceTransfer.PARTIAL,
            access_transfer=AccessTransfer.PARTIAL,
        ),
        ProtocolStrategy(
            name="push-invalidate",
            propagation=Propagation.INVALIDATE,
            transfer_initiative=TransferInitiative.PUSH,
            transfer_instant=TransferInstant.IMMEDIATE,
            coherence_transfer=CoherenceTransfer.PARTIAL,
            access_transfer=AccessTransfer.PARTIAL,
        ),
        ProtocolStrategy(
            name="push-notify",
            propagation=Propagation.INVALIDATE,
            transfer_initiative=TransferInitiative.PUSH,
            transfer_instant=TransferInstant.IMMEDIATE,
            coherence_transfer=CoherenceTransfer.NOTIFICATION,
            access_transfer=AccessTransfer.PARTIAL,
        ),
        ProtocolStrategy(
            name="push-full",
            propagation=Propagation.UPDATE,
            transfer_initiative=TransferInitiative.PUSH,
            transfer_instant=TransferInstant.IMMEDIATE,
            coherence_transfer=CoherenceTransfer.FULL,
            access_transfer=AccessTransfer.FULL,
        ),
        ProtocolStrategy(
            name="pull-periodic",
            propagation=Propagation.UPDATE,
            transfer_initiative=TransferInitiative.PULL,
            transfer_instant=TransferInstant.LAZY,
            coherence_transfer=CoherenceTransfer.PARTIAL,
            access_transfer=AccessTransfer.PARTIAL,
            horizon=60.0,
        ),
    )
}


@dataclasses.dataclass(frozen=True)
class MetricDef:
    """One cell metric of the results book."""

    key: str
    title: str
    unit: str
    #: ``format(value, fmt)`` spec used everywhere the metric renders.
    fmt: str
    description: str
    #: ``True`` when smaller values are better (heat maps note it).
    lower_is_better: bool = True


#: Metrics extracted from every grid point, one heat map each.
METRICS: Dict[str, MetricDef] = {
    metric.key: metric
    for metric in (
        MetricDef(
            key="wire_kb",
            title="Total wire traffic",
            unit="KiB",
            fmt=".1f",
            description=(
                "Bytes crossing the simulated network over the whole run "
                "(access + coherence traffic), in KiB."
            ),
        ),
        MetricDef(
            key="coherence_messages",
            title="Coherence messages",
            unit="msgs",
            fmt=".1f",
            description=(
                "Datagrams carrying coherence information (updates, "
                "invalidations, notifications, pulls)."
            ),
        ),
        MetricDef(
            key="stale_fraction",
            title="Stale read fraction",
            unit="fraction",
            fmt=".3f",
            description=(
                "Fraction of reads served from a replica missing at least "
                "one already-acknowledged write."
            ),
        ),
        MetricDef(
            key="mean_time_lag",
            title="Mean staleness time lag",
            unit="s",
            fmt=".3f",
            description=(
                "Mean age of the oldest acknowledged-but-missing write "
                "behind a stale read (0 when fresh)."
            ),
        ),
        MetricDef(
            key="mean_read_latency",
            title="Mean read latency",
            unit="s",
            fmt=".4f",
            description=(
                "Mean client-observed read latency, including demand "
                "round trips for outdated replicas."
            ),
        ),
        MetricDef(
            key="unavailable_fraction",
            title="Unavailable read fraction",
            unit="fraction",
            fmt=".3f",
            description=(
                "Fraction of issued reads never served: dropped into a "
                "crashed store, timed out, or still pending at run end."
            ),
        ),
        MetricDef(
            key="partition_stale_lag",
            title="Staleness under partition",
            unit="s",
            fmt=".3f",
            description=(
                "Mean staleness time lag of reads served by stores cut "
                "off from their parent while a partition was active "
                "(reads on the connected side are excluded)."
            ),
        ),
        MetricDef(
            key="recovery_lag",
            title="Recovery lag after heal",
            unit="s",
            fmt=".3f",
            description=(
                "Mean time from each heal/restart until every replica "
                "covered the writes acknowledged before it."
            ),
        ),
    )
}

#: Extra metric keys only fault grids report (and only
#: :func:`run_fault_grid_point` produces).
FAULT_METRIC_KEYS: Tuple[str, ...] = (
    "unavailable_fraction",
    "partition_stale_lag",
    "recovery_lag",
)

#: Metric keys of the classic (fault-free) grids: derived from the
#: registry so a newly registered MetricDef joins every book without a
#: second list to update.
BASE_METRIC_KEYS: Tuple[str, ...] = tuple(
    key for key in METRICS if key not in FAULT_METRIC_KEYS
)

#: Client request timeout/retries for fault-grid points: operations into
#: a crashed store fail fast (and count as unavailable) instead of
#: stalling their client for the rest of the run.
FAULT_REQUEST_TIMEOUT = 1.0
FAULT_REQUEST_RETRIES = 1


def run_grid_point(config: Dict[str, Any], seed: int) -> Dict[str, float]:
    """Evaluate one grid cell replication: one policy, one workload, one tree.

    ``config`` carries names and scalars only (``protocol``, ``workload``,
    ``n_caches``, ``rep``); the expansion to a policy and a traffic mix
    happens here so the cache key stays plain data.  Returns the flat
    metric dict the aggregation layer consumes.
    """
    strategy = STRATEGIES[config["protocol"]]
    profile = get_profile(config["workload"])
    deployment = run_profile(
        strategy.build_policy(),
        profile,
        n_caches=int(config["n_caches"]),
        seed=seed,
        horizon=strategy.horizon,
    )
    return _base_metrics(deployment)


def _base_metrics(deployment) -> Dict[str, float]:
    """Extract the base metric set from one finished deployment."""
    # Imported here (not module top) to keep the report layer importable
    # without dragging the whole experiments package in at import time.
    from repro.experiments.harness import measure

    metrics = measure(deployment)
    return {
        "wire_kb": metrics.traffic.bytes_sent / 1024.0,
        "coherence_messages": float(metrics.traffic.coherence_messages),
        "stale_fraction": metrics.stale_fraction,
        "mean_time_lag": metrics.mean_time_lag,
        "mean_read_latency": metrics.mean_read_latency,
    }


def run_fault_grid_point(config: Dict[str, Any], seed: int) -> Dict[str, float]:
    """Evaluate one fault-grid cell: one policy, one fault plan, one tree.

    Like :func:`run_grid_point` plus a ``fault_plan`` name expanded by
    :func:`~repro.workload.profiles.run_profile` (stable config-hash
    seeding: the plan's RNG forks from this point's derived seed) and
    the partition-aware metric columns from
    :mod:`repro.metrics.faults`.
    """
    from repro.metrics.faults import fault_run_metrics

    strategy = STRATEGIES[config["protocol"]]
    profile = get_profile(config["workload"])
    deployment = run_profile(
        strategy.build_policy(),
        profile,
        n_caches=int(config["n_caches"]),
        seed=seed,
        horizon=strategy.horizon,
        fault_plan=config["fault_plan"],
        request_timeout=FAULT_REQUEST_TIMEOUT,
        request_retries=FAULT_REQUEST_RETRIES,
    )
    result = _base_metrics(deployment)
    result.update(fault_run_metrics(deployment))
    return result


@dataclasses.dataclass(frozen=True)
class GridDef:
    """One named dense sweep over (protocol x column axis x size x rep).

    The column axis is the workload profile by default; a grid with
    ``fault_plans`` set is a *fault grid*: its column axis is the fault
    plan (experiment X11), the single entry of ``workloads`` is held
    fixed in every cell, and the partition-aware metrics join the book.
    """

    name: str
    title: str
    description: str
    protocols: Tuple[str, ...]
    workloads: Tuple[str, ...]
    sizes: Tuple[int, ...]
    replications: int
    base_seed: int = 0
    fault_plans: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        """Validate the fault-grid shape at declaration time."""
        if self.fault_plans and len(self.workloads) != 1:
            raise ValueError(
                f"fault grid {self.name!r} must fix exactly one "
                f"workload, got {self.workloads!r}"
            )

    @property
    def is_fault_grid(self) -> bool:
        """Whether the column axis is the fault plan."""
        return bool(self.fault_plans)

    @property
    def col_axis(self) -> str:
        """Config-key name of the column axis."""
        return "fault_plan" if self.is_fault_grid else "workload"

    def col_values(self) -> Tuple[str, ...]:
        """Values of the column axis, in declaration order."""
        return self.fault_plans if self.is_fault_grid else self.workloads

    def metric_keys(self) -> Tuple[str, ...]:
        """The metric columns this grid's book renders."""
        if self.is_fault_grid:
            return BASE_METRIC_KEYS + FAULT_METRIC_KEYS
        return BASE_METRIC_KEYS

    def axes(self) -> "Dict[str, Tuple[Any, ...]]":
        """Ordered grid axes, last varying fastest (``rep`` innermost)."""
        return {
            "protocol": self.protocols,
            self.col_axis: self.col_values(),
            "n_caches": self.sizes,
            "rep": tuple(range(self.replications)),
        }

    def fixed_config(self) -> Optional[Dict[str, Any]]:
        """Constant config entries merged into every point (or ``None``)."""
        if self.is_fault_grid:
            return {"workload": self.workloads[0]}
        return None

    def point_count(self) -> int:
        """Total number of points in the dense cross product."""
        total = 1
        for values in self.axes().values():
            total *= len(values)
        return total

    def cell_label(self, protocol: str, col: str, size: int,
                   rep: int) -> Hashable:
        """The sweep-point label of one (cell, replication).

        ``col`` is the column-axis value: a workload name, or a fault
        plan name on a fault grid.
        """
        return (protocol, col, size, rep)


#: The named grids ``python -m repro.report --grid`` accepts.
GRIDS: Dict[str, GridDef] = {
    grid.name: grid
    for grid in (
        GridDef(
            name="table1",
            title="Full Table-1 cross product",
            description=(
                "Every named replication strategy under every workload "
                "profile at every tree size, three independent "
                "replications per cell."
            ),
            protocols=tuple(STRATEGIES),
            workloads=("read-heavy", "balanced", "write-heavy"),
            sizes=(2, 4, 8),
            replications=3,
        ),
        GridDef(
            name="table1-small",
            title="Small Table-1 cross product",
            description=(
                "A 2x2x2 corner of the full grid with two replications "
                "per cell; the golden-test and CI smoke grid."
            ),
            protocols=("push-update", "push-invalidate"),
            workloads=("read-heavy", "write-heavy"),
            sizes=(2, 4),
            replications=2,
        ),
        GridDef(
            name="x11-faults",
            title="Fault grid: strategy x fault plan x tree size",
            description=(
                "Every fault-grid strategy under every registered fault "
                "plan at two tree sizes, balanced workload, two "
                "replications per cell.  Partitions queue reliable "
                "traffic and flush on heal; crashes drop it; plans run "
                "identically on the sim and live transports."
            ),
            protocols=("push-update", "push-invalidate", "pull-periodic"),
            workloads=("balanced",),
            sizes=(2, 4),
            replications=2,
            fault_plans=tuple(FAULT_PLANS),
        ),
        GridDef(
            name="x11-faults-small",
            title="Small fault grid",
            description=(
                "A 2x2x1 corner of the fault grid with two replications "
                "per cell; the fault golden-test and smoke grid."
            ),
            protocols=("push-update", "push-invalidate"),
            workloads=("balanced",),
            sizes=(2,),
            replications=2,
            fault_plans=("none", "partition-heal"),
        ),
    )
}


def validate_metric_keys(keys: Optional[Sequence[str]]) -> None:
    """Raise ``KeyError`` (with the catalog) on unregistered metric keys.

    The one validator both the CLI (before any sweep work) and
    :func:`repro.report.book.book_artifacts` (for non-CLI callers) use,
    so the error message cannot drift between them.
    """
    unknown = [key for key in (keys or []) if key not in METRICS]
    if unknown:
        raise KeyError(
            f"unknown metrics: {', '.join(unknown)}; "
            f"registered: {', '.join(METRICS)}"
        )


def get_grid(name: str) -> GridDef:
    """Look up a registered grid; raise ``KeyError`` with the catalog."""
    try:
        return GRIDS[name]
    except KeyError:
        raise KeyError(
            f"unknown grid {name!r}; registered: {', '.join(sorted(GRIDS))}"
        ) from None


def grid_spec(grid: GridDef) -> SweepSpec:
    """Expand a grid into its dense-cross-product :class:`SweepSpec`.

    Fault grids use :func:`run_fault_grid_point` and carry their fixed
    workload as constant config (part of every point's config hash, so
    the fault axis seeds stably without widening the labels).
    """
    spec = SweepSpec(
        name=f"report-{grid.name}",
        run_point=(
            run_fault_grid_point if grid.is_fault_grid else run_grid_point
        ),
        base_seed=grid.base_seed,
    )
    spec.add_grid(_fixed=grid.fixed_config(), **grid.axes())
    return spec


def run_grid(
    grid: GridDef,
    parallel: int = 1,
    cache_dir: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    executor: Optional[str] = None,
) -> Mapping[Hashable, Dict[str, float]]:
    """Execute a grid through the cached parallel runner.

    Returns ``{(protocol, workload, size, rep): metric dict}`` in
    declaration order; cached cells are replayed, missing cells computed.
    A prebuilt ``cache`` (:class:`~repro.exec.ResultCache`) takes
    precedence over ``cache_dir``.  ``executor`` selects the sweep
    execution mechanism exactly as in :func:`repro.exec.run_sweep`;
    the rendered book is bit-identical whichever one runs the cells.
    """
    return run_sweep(grid_spec(grid), parallel=parallel,
                     cache_dir=cache_dir, cache=cache, executor=executor)
