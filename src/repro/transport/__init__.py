"""Unified transport layer: one protocol stack, three substrates (S17).

:mod:`repro.transport.interface` defines the :class:`Clock` and
:class:`Transport` protocols that the deterministic simulator pair
(:class:`~repro.sim.kernel.Simulator` + :class:`~repro.net.network.Network`),
the wall-clock pair (:class:`~repro.runtime.live.LiveLoop` +
:class:`~repro.runtime.live.LiveNetwork`), and the multi-process socket
pair (:class:`~repro.runtime.live.LiveLoop` +
:class:`~repro.runtime.socket.SocketNetwork`) all satisfy.
:mod:`repro.transport.backend` bundles each pair into a :class:`Backend`
with a uniform driving interface, selected by name via
:func:`make_backend` (``"sim"`` / ``"live"`` / ``"live-socket"``).
"""

from repro.transport.backend import (
    BACKENDS,
    Backend,
    BackendError,
    LiveBackend,
    SimBackend,
    SocketBackend,
    make_backend,
)
from repro.transport.interface import Clock, ReceiveHandler, Transport

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendError",
    "Clock",
    "LiveBackend",
    "ReceiveHandler",
    "SimBackend",
    "SocketBackend",
    "Transport",
    "make_backend",
]
