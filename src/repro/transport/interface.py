"""The unified clock/transport contract of the protocol stack.

Everything above this layer -- communication objects, replication
components, workload deployments -- is written against exactly two
substrate capabilities:

- a :class:`Clock` that tells the current time and schedules callbacks
  (and owns the run's seeded RNG);
- a :class:`Transport` that delivers datagrams between named nodes.

Two implementations exist: the deterministic virtual-time pair
(:class:`~repro.sim.kernel.Simulator` + :class:`~repro.net.network.Network`)
and the wall-clock pair (:class:`~repro.runtime.live.LiveLoop` +
:class:`~repro.runtime.live.LiveNetwork`).  Because both satisfy these
protocols, the identical replication protocol stack runs in simulated and
real time; any future substrate (an SSH pool, a shared-memory transport)
only needs to implement these two interfaces.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.sim.rng import SeededRng

#: A transport receive handler: ``handler(src, payload, size_bytes)``.
ReceiveHandler = Callable[[str, object, int], None]


@runtime_checkable
class Clock(Protocol):
    """Time and deferred execution, virtual or wall-clock.

    A cancellable handle is returned by :meth:`schedule`; the only
    requirement on it is a ``cancel()`` method.
    """

    #: The run-wide seeded random number generator.
    rng: SeededRng

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or since-epoch monotonic)."""
        ...

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any,
        daemon: bool = False,
    ) -> Any:
        """Run ``fn(*args)`` after ``delay`` seconds; returns a handle.

        ``daemon`` marks periodic housekeeping that must not keep a
        drain-to-idle run alive.
        """
        ...


@runtime_checkable
class Transport(Protocol):
    """Datagram delivery between named nodes.

    Delivery calls the destination's registered handler on the protocol
    thread (the simulator's event loop or the live dispatcher), so
    protocol state above the transport needs no locks.
    """

    def register(self, node: str, handler: ReceiveHandler) -> None:
        """Attach a node; datagrams addressed to it invoke ``handler``."""
        ...

    def unregister(self, node: str) -> None:
        """Detach a node; subsequent datagrams to it are dropped."""
        ...

    def send(
        self, src: str, dst: str, payload: object,
        size_bytes: int = 0, reliable: bool = True,
    ) -> None:
        """Send one datagram; ``reliable`` selects the delivery class."""
        ...

    def multicast(
        self, src: str, dsts: Sequence[str], payload: object,
        size_bytes: int = 0, reliable: bool = True,
    ) -> None:
        """Send the same payload to every destination (skipping ``src``)."""
        ...
