"""Runtime backends: one clock + one transport + a driving discipline.

A :class:`Backend` bundles a concrete :class:`~repro.transport.interface.
Clock` / :class:`~repro.transport.interface.Transport` pair with the small
set of operations harness code needs to *drive* a deployment from outside
the protocol thread: submit a call onto the protocol thread, block until a
future resolves, let protocol time elapse, and run to quiescence.

Three backends ship:

- :class:`SimBackend` -- the deterministic discrete-event pair
  (``Simulator`` + ``Network``); driving means stepping the event loop.
- :class:`LiveBackend` -- the wall-clock pair (``LiveLoop`` +
  ``LiveNetwork``); driving means enqueueing onto the dispatcher thread
  and polling real time.
- :class:`SocketBackend` -- the multi-process pair (``LiveLoop`` +
  ``SocketNetwork``): every store runs in its own OS process connected
  over framed sockets, while clients and the fault surface stay in the
  hub process.  Driving is identical to ``LiveBackend``; fault plans
  gain real teeth (CrashNode SIGKILLs a process).

Harness code written against this interface (the parity tests, the live
sweep adapter, :func:`repro.workload.scenarios.build_tree`) runs unchanged
on either substrate.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Union

from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.network import Network
from repro.sim.future import Future
from repro.sim.kernel import Simulator


class BackendError(RuntimeError):
    """Raised when a backend cannot drive the requested operation."""


class Backend:
    """Abstract driving interface over one clock/transport pair."""

    #: Registry name ("sim" / "live"); also what ``make_backend`` accepts.
    name: str = "abstract"

    clock: Any
    transport: Any

    def start(self) -> None:
        """Begin executing protocol events (no-op for virtual time)."""

    def stop(self) -> None:
        """Stop executing protocol events and release resources."""

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the protocol thread; return its value."""
        raise NotImplementedError

    def wait(self, future: Future, timeout: Optional[float] = None) -> Any:
        """Drive the backend until ``future`` resolves; return its result."""
        raise NotImplementedError

    def advance(self, seconds: float) -> None:
        """Let ``seconds`` of protocol time elapse."""
        raise NotImplementedError

    def settle(self, timeout: float = 5.0, grace: float = 0.05) -> None:
        """Drive until the protocol is quiescent (only daemon work left).

        ``grace`` is wall-clock slack for the live backend, where
        quiescence can only be observed, never proven.
        """
        raise NotImplementedError

    def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 5.0,
    ) -> bool:
        """Drive until ``predicate()`` holds; ``False`` on timeout."""
        raise NotImplementedError


class SimBackend(Backend):
    """Virtual-time backend: deterministic, drives by stepping events."""

    name = "sim"

    def __init__(
        self,
        seed: int = 0,
        latency: Union[LatencyModel, float, None] = None,
        loss_rate: float = 0.0,
        scheduler: Optional[str] = None,
    ) -> None:
        if isinstance(latency, (int, float)):
            latency = ConstantLatency(float(latency))
        self.clock = Simulator(seed=seed, scheduler=scheduler)
        self.transport = Network(self.clock, latency=latency,
                                 loss_rate=loss_rate)

    @property
    def sim(self) -> Simulator:
        """The underlying simulator (experiments drive it directly)."""
        return self.clock

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run directly: the caller's thread is the protocol thread."""
        return fn(*args)

    def wait(self, future: Future, timeout: Optional[float] = None) -> Any:
        """Step events until the future resolves (virtual-time deadline)."""
        deadline = None if timeout is None else self.clock.now + timeout
        while not future.done:
            if deadline is not None and self.clock.now >= deadline:
                raise BackendError(
                    f"future unresolved after {timeout}s of virtual time"
                )
            if not self.clock.step():
                raise BackendError(
                    "event queue drained with the future unresolved"
                )
        return future.result()

    def advance(self, seconds: float) -> None:
        """Run the event loop for ``seconds`` of virtual time."""
        self.clock.run(until=self.clock.now + seconds)

    def settle(self, timeout: float = 5.0, grace: float = 0.05) -> None:
        """Drain the event queue to (non-daemon) quiescence."""
        self.clock.run_until_idle()

    def wait_until(
        self, predicate: Callable[[], bool], timeout: float = 5.0
    ) -> bool:
        """Step events until ``predicate()`` holds or virtual time runs out."""
        deadline = self.clock.now + timeout
        while not predicate():
            if self.clock.now >= deadline or not self.clock.step():
                return predicate()
        return True


class LiveBackend(Backend):
    """Wall-clock backend: drives by enqueueing and polling real time."""

    name = "live"

    #: Poll period for wall-clock waits (seconds).
    POLL = 0.002

    def __init__(
        self,
        seed: int = 0,
        latency: Union[float, None] = None,
        loss_rate: float = 0.0,
        call_timeout: float = 10.0,
    ) -> None:
        # Import here: repro.runtime imports this module's siblings.
        from repro.runtime.live import LiveLoop, LiveNetwork

        if loss_rate:
            raise BackendError(
                "the live transport is in-process and lossless; "
                "loss injection is a simulator feature"
            )
        if latency is not None and not isinstance(latency, (int, float)):
            raise BackendError(
                f"live latency must be a constant delay in seconds, "
                f"got {latency!r}"
            )
        self.clock = LiveLoop(seed=seed)
        self.transport = LiveNetwork(
            self.clock, latency=0.001 if latency is None else float(latency)
        )
        self.call_timeout = call_timeout

    def start(self) -> None:
        """Start the dispatcher thread."""
        self.clock.start()

    def stop(self) -> None:
        """Stop the dispatcher thread."""
        self.clock.stop()

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the dispatcher; block for its result."""
        done = threading.Event()
        box: dict = {}

        def run() -> None:
            """Dispatcher-side shim relaying the result or error."""
            try:
                box["value"] = fn(*args)
            except BaseException as exc:  # relayed to the caller below
                box["error"] = exc
            finally:
                done.set()

        self.clock.submit(run)
        if not done.wait(self.call_timeout):
            raise BackendError(
                f"dispatcher did not run the call within {self.call_timeout}s"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def wait(self, future: Future, timeout: Optional[float] = None) -> Any:
        """Poll wall-clock time until the future resolves."""
        limit = self.call_timeout if timeout is None else timeout
        deadline = time.monotonic() + limit
        while not future.done:
            if time.monotonic() >= deadline:
                raise BackendError(f"future unresolved after {limit}s")
            time.sleep(self.POLL)
        return future.result()

    def advance(self, seconds: float) -> None:
        """Sleep: live protocol time only passes on the wall clock."""
        time.sleep(max(0.0, seconds))

    def settle(self, timeout: float = 5.0, grace: float = 0.05) -> None:
        """Poll until the loop looks idle, then absorb in-flight work."""
        deadline = time.monotonic() + timeout
        while not self.clock.idle:
            if time.monotonic() >= deadline:
                return
            time.sleep(self.POLL)
        # Quiescence observed; absorb deliveries already in flight.
        time.sleep(grace)

    def wait_until(
        self, predicate: Callable[[], bool], timeout: float = 5.0
    ) -> bool:
        """Poll wall-clock time until ``predicate()`` holds."""
        deadline = time.monotonic() + timeout
        while not predicate():
            if time.monotonic() >= deadline:
                return predicate()
            time.sleep(self.POLL)
        return True


class SocketBackend(LiveBackend):
    """Multi-process backend: stores in child processes, clients in-hub.

    The clock is a hub-local :class:`~repro.runtime.live.LiveLoop`; the
    transport is a :class:`~repro.runtime.socket.SocketNetwork` that
    forwards store-bound datagrams over per-node frame sockets.  Store
    construction goes through :meth:`store_factory` (consumed by
    :class:`~repro.core.dso.DistributedSharedObject`), which spawns one
    ``repro.runtime.node`` process per store and returns an RPC proxy.

    The shared trace recorder lives on :attr:`trace`; node processes
    stream their events back into it, so ``coherence_signature`` works
    exactly as on the in-process backends.
    """

    name = "live-socket"

    def __init__(
        self,
        seed: int = 0,
        latency: Union[float, None] = None,
        loss_rate: float = 0.0,
        call_timeout: float = 10.0,
        run_dir: Optional[str] = None,
    ) -> None:
        # Imports deferred: repro.runtime/repro.coherence import this
        # module's package.
        from repro.coherence.trace import TraceRecorder
        from repro.runtime.live import LiveLoop
        from repro.runtime.socket import SocketHub, SocketNetwork

        if loss_rate:
            raise BackendError(
                "the socket transport is lossless (TCP/Unix streams); "
                "loss injection is a simulator feature"
            )
        if latency is not None and not isinstance(latency, (int, float)):
            raise BackendError(
                f"live-socket latency must be a constant delay in seconds, "
                f"got {latency!r}"
            )
        self.seed = seed
        self.clock = LiveLoop(seed=seed)
        self.trace = TraceRecorder()
        self.hub = SocketHub(
            run_dir=run_dir, call_timeout=call_timeout, trace=self.trace
        )
        self.transport = SocketNetwork(
            self.clock,
            self.hub,
            latency=0.001 if latency is None else float(latency),
        )
        self.hub.network = self.transport
        self.call_timeout = call_timeout

    def store_factory(self, dso: Any, address: str, role: Any,
                      parent: Optional[str]) -> Any:
        """Spawn the store as a node process; return its Store proxy.

        The first permanent store is the primary and ships the
        prototype's full page snapshot in its spec; every other store
        starts from an empty document, exactly like
        ``SemanticsObject.fresh()`` in-process.
        """
        from repro.core.dso import Store
        from repro.core.interfaces import Role
        from repro.runtime.socket import RemoteEngineProxy, RemoteStoreLocal

        primary = role is Role.PERMANENT and dso.primary is None
        spec = {
            "address": address,
            "role": role.value,
            "parent": parent,
            "policy": dso.policy,
            "allowed_writer": dso.designated_writer,
            "reliable_transport": dso.reliable_transport,
            "seed": self.seed,
            "semantics_state": (
                dso.semantics_prototype.snapshot() if primary else None
            ),
        }
        self.hub.spawn_node(address, spec)
        self.transport.register_remote(address)
        return Store(
            local=RemoteStoreLocal(address, role),
            engine=RemoteEngineProxy(self.hub, address, parent=parent),
        )

    def settle(self, timeout: float = 5.0, grace: float = 0.05) -> None:
        """Observe hub quiescence, with extra slack for socket hops.

        The hub loop's ``idle`` cannot see work queued inside node
        processes, so the grace window absorbs in-flight frames too.
        """
        super().settle(timeout=timeout, grace=max(grace, 0.2))

    def stop(self) -> None:
        """Stop the dispatcher, then every node process and socket."""
        self.clock.stop()
        self.hub.shutdown()


#: Buildable backends by name.
BACKENDS = {
    SimBackend.name: SimBackend,
    LiveBackend.name: LiveBackend,
    SocketBackend.name: SocketBackend,
}


def make_backend(backend: Union[str, Backend], **kwargs: Any) -> Backend:
    """Build (or pass through) a backend.

    ``backend`` is a registry name (``"sim"`` / ``"live"``) or an already
    constructed :class:`Backend`, which is returned as-is (keyword
    arguments must then be absent).
    """
    if isinstance(backend, Backend):
        if kwargs:
            raise BackendError(
                f"cannot reconfigure an existing backend with {sorted(kwargs)}"
            )
        return backend
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise BackendError(
            f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from None
    return factory(**kwargs)
