"""Client sessions and session-guarantee bookkeeping.

A :class:`SessionState` lives in the client-side replication object and
implements the paper's client-based coherence models (Section 3.2.2).  It
tracks:

- the client's own write position (``last_write`` WiD and the store where it
  was performed -- the exact ``dependency = (WiD, store_id)`` the paper's
  prototype transmits with read requests);
- the version vector covered by the client's reads.

From these it derives, per request, the dependency vector a store must have
applied before serving (reads) and the dependency vector a write carries
(writes-follow-reads).  Unlike Bayou, which only *checks* guarantees, the
stores here *enforce* them via the outdate-reaction parameter.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.coherence.models import SessionGuarantee
from repro.coherence.vector_clock import VectorClock
from repro.comm.message import estimate_size
from repro.core.ids import WriteId


@dataclasses.dataclass
class SessionState:
    """Per-client coherence context."""

    client_id: str
    guarantees: FrozenSet[SessionGuarantee] = frozenset()
    #: WiD of the client's most recent write (RYW dependency).
    last_write: Optional[WriteId] = None
    #: Store at which that write was performed (paper's dependency pair).
    last_write_store: Optional[str] = None
    #: All of this client's own writes (monotonic-writes dependency).
    write_vc: VectorClock = dataclasses.field(default_factory=VectorClock)
    #: Writes covered by this client's reads (MR / WFR dependency).
    read_vc: VectorClock = dataclasses.field(default_factory=VectorClock)
    #: Next sequence number for this client's writes.
    next_seqno: int = 1

    def __post_init__(self) -> None:
        # Deliberately not a dataclass field: the cached wire form (dict
        # plus estimated size) is derived state, rebuilt lazily whenever
        # an observation actually changes what :meth:`to_wire` reports.
        self._wire_cache: Optional[Tuple[Dict[str, Any], int]] = None

    def with_guarantees(
        self, guarantees: Iterable[SessionGuarantee]
    ) -> "SessionState":
        """Return self with the guarantee set replaced (builder style)."""
        self.guarantees = frozenset(guarantees)
        self._wire_cache = None
        return self

    # -- write path ------------------------------------------------------------

    def mint_wid(self) -> WriteId:
        """Allocate the WiD for the client's next write."""
        wid = WriteId(self.client_id, self.next_seqno)
        self.next_seqno += 1
        return wid

    def write_deps(self) -> Optional[VectorClock]:
        """Dependency vector to attach to an outgoing write.

        Under writes-follow-reads the write must follow everything the
        client has read; the client's own previous writes are always
        included so the dependency vector alone reproduces client-PRAM.
        """
        if SessionGuarantee.WRITES_FOLLOW_READS not in self.guarantees:
            return None
        deps = self.read_vc.copy()
        deps.merge(self.write_vc)
        return deps

    def observe_write(self, wid: WriteId, store: str) -> None:
        """Record a completed write (called when the store acknowledges)."""
        self.last_write = wid
        self.last_write_store = store
        self.write_vc.record(wid)
        self._wire_cache = None

    # -- read path ------------------------------------------------------------

    def read_requirement(self) -> VectorClock:
        """Writes a store must have applied before serving this read.

        Read-your-writes contributes the client's own writes; monotonic
        reads contributes everything previous reads observed.
        """
        requirement = VectorClock()
        if SessionGuarantee.READ_YOUR_WRITES in self.guarantees:
            requirement.merge(self.write_vc)
        if SessionGuarantee.MONOTONIC_READS in self.guarantees:
            requirement.merge(self.read_vc)
        return requirement

    def observe_read(self, store_version: VectorClock) -> None:
        """Record the version vector the serving store reported."""
        if self.read_vc.merge(store_version):
            self._wire_cache = None

    # -- wire form ------------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """Context dict shipped with read/write requests to stores.

        The dict is cached between observations that change it (most
        reads observe nothing new) and shared by reference across
        requests; receivers treat request bodies as frozen, so the shared
        form is never mutated.
        """
        return self.wire_sized()[0]

    def wire_sized(self) -> Tuple[Dict[str, Any], int]:
        """The wire form together with its estimated payload size."""
        cached = self._wire_cache
        if cached is None:
            wire = {
                "client_id": self.client_id,
                "requirement": self.read_requirement().as_dict(),
                "last_write": str(self.last_write) if self.last_write else None,
                "last_write_store": self.last_write_store,
                "guarantees": sorted(g.value for g in self.guarantees),
            }
            cached = self._wire_cache = (wire, estimate_size(wire))
        return cached
