"""Write records: the unit of replication.

Every state-modifying invocation accepted into the system becomes a
:class:`WriteRecord`.  The record carries whatever ordering metadata the
object's coherence model needs -- the WiD always, a global sequence number
under sequential consistency, a dependency vector under causal consistency
or writes-follow-reads sessions -- plus the marshalled invocation itself so
replicas can replay it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.comm.invocation import MarshalledInvocation, decode_invocation, encode_invocation
from repro.comm.message import estimate_size
from repro.core.ids import WriteId
from repro.coherence.vector_clock import VectorClock


@dataclasses.dataclass
class WriteRecord:
    """One write, as shipped between replication objects.

    Attributes
    ----------
    wid:
        The write identifier ``(client_id, seqno)`` of Section 4.2.
    invocation:
        The marshalled state-modifying method call.
    touched:
        State keys the write modifies; drives partial coherence transfer.
    deps:
        Dependency vector (causal model / writes-follow-reads sessions).
        ``None`` means no dependencies beyond the model's own ordering.
    global_seq:
        Total-order position assigned by the sequencer under the
        sequential model; ``None`` otherwise.
    timestamp:
        Origin virtual time; last-writer-wins tiebreak under eventual.
    origin:
        Address of the store that first accepted the write.
    """

    wid: WriteId
    invocation: MarshalledInvocation
    touched: Tuple[str, ...] = ()
    deps: Optional[VectorClock] = None
    global_seq: Optional[int] = None
    timestamp: float = 0.0
    origin: str = ""

    def payload_size(self) -> int:
        """Estimated wire size of the record."""
        size = 24 + self.invocation.payload_size()
        size += sum(len(key) for key in self.touched)
        if self.deps is not None:
            size += estimate_size(self.deps.as_dict())
        return size

    def to_wire(self) -> Dict[str, Any]:
        """Encode for embedding in a message body."""
        return {
            "wid": str(self.wid),
            "invocation": encode_invocation(
                self.invocation.method,
                *self.invocation.args,
                read_only=self.invocation.read_only,
                **self.invocation.kwargs_dict(),
            ),
            "touched": list(self.touched),
            "deps": self.deps.as_dict() if self.deps is not None else None,
            "global_seq": self.global_seq,
            "timestamp": self.timestamp,
            "origin": self.origin,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "WriteRecord":
        """Decode a record embedded in a message body."""
        deps = wire.get("deps")
        return cls(
            wid=WriteId.parse(wire["wid"]),
            invocation=decode_invocation(wire["invocation"]),
            touched=tuple(wire.get("touched", ())),
            deps=VectorClock.from_dict(deps) if deps is not None else None,
            global_seq=wire.get("global_seq"),
            timestamp=float(wire.get("timestamp", 0.0)),
            origin=wire.get("origin", ""),
        )

    def newer_than(self, other: "WriteRecord") -> bool:
        """Last-writer-wins comparison (timestamp, then WiD tiebreak)."""
        return (self.timestamp, self.wid) > (other.timestamp, other.wid)
