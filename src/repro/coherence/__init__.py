"""Coherence models, protocols, session guarantees and checkers (S6-S8).

This package implements Section 3.2 of the paper:

- **object-based models** (:class:`CoherenceModel`): sequential, causal,
  PRAM, FIFO (the overwrite optimization of PRAM) and eventual, each with a
  corresponding :class:`~repro.coherence.ordering.OrderingDiscipline` that
  decides when a replica may apply a write;
- **client-based models** (:class:`SessionGuarantee`): read-your-writes,
  monotonic reads, client-PRAM (monotonic writes) and client-causal
  (writes-follow-reads), enforced -- not merely checked -- by stores on
  behalf of sessions (:class:`SessionState`);
- **checkers** (:mod:`repro.coherence.checkers`): machine verification that
  a recorded execution trace satisfies each declared model.
"""

from repro.coherence.models import (
    CoherenceModel,
    SessionGuarantee,
    guarantees_subsumed_by,
    model_strength,
    residual_guarantees,
)
from repro.coherence.records import WriteRecord
from repro.coherence.session import SessionState
from repro.coherence.trace import TraceRecorder
from repro.coherence.vector_clock import VectorClock

__all__ = [
    "CoherenceModel",
    "SessionGuarantee",
    "SessionState",
    "TraceRecorder",
    "VectorClock",
    "WriteRecord",
    "guarantees_subsumed_by",
    "model_strength",
    "residual_guarantees",
]
