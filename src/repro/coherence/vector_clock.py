"""Vector clocks / version vectors.

One class serves both uses in the framework:

- as a **version vector** at a store, mapping each writing client to the
  highest sequence number of that client's writes applied so far;
- as a **dependency vector** on a write or a session, naming the writes
  that must be applied before it.

Entries are per-client sequence numbers, matching the paper's
``expected_write[client]`` state (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.ids import WriteId


class VectorClock:
    """A mapping from client id to last-seen sequence number."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Dict[str, int]] = None) -> None:
        self._entries: Dict[str, int] = dict(entries) if entries else {}

    # -- access ---------------------------------------------------------------

    def get(self, client_id: str) -> int:
        """Sequence number recorded for a client (0 if never seen)."""
        return self._entries.get(client_id, 0)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate over (client_id, seqno) pairs with non-zero entries."""
        return iter(self._entries.items())

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict copy, for embedding in messages."""
        return dict(self._entries)

    def copy(self) -> "VectorClock":
        """Independent copy."""
        clone = VectorClock.__new__(VectorClock)
        clone._entries = self._entries.copy()
        return clone

    # -- mutation ---------------------------------------------------------------

    def advance(self, client_id: str, seqno: int) -> None:
        """Raise a client's entry to at least ``seqno``."""
        if seqno > self._entries.get(client_id, 0):
            self._entries[client_id] = seqno

    def record(self, wid: WriteId) -> None:
        """Advance by a write identifier."""
        self.advance(wid.client_id, wid.seqno)

    def merge(self, other: "VectorClock") -> bool:
        """Pointwise maximum, in place.

        Returns whether any entry actually advanced, so callers keeping a
        derived cache (the session wire form) can skip invalidation when
        a merge was a no-op.
        """
        entries = self._entries
        changed = False
        for client_id, seqno in other._entries.items():
            if seqno > entries.get(client_id, 0):
                entries[client_id] = seqno
                changed = True
        return changed

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum, as a new clock."""
        result = self.copy()
        result.merge(other)
        return result

    # -- comparison -----------------------------------------------------------

    def dominates(self, other: "VectorClock") -> bool:
        """True if every entry of ``other`` is <= the matching entry here."""
        entries = self._entries
        for client_id, seqno in other._entries.items():
            if seqno > entries.get(client_id, 0):
                return False
        return True

    def includes(self, wid: WriteId) -> bool:
        """Whether the write identified by ``wid`` is covered."""
        return self._entries.get(wid.client_id, 0) >= wid.seqno

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not self.dominates(other) and not other.dominates(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine = {k: v for k, v in self._entries.items() if v}
        theirs = {k: v for k, v in other._entries.items() if v}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v) for k, v in self._entries.items() if v)))

    def __repr__(self) -> str:
        inner = ",".join(f"{k}:{v}" for k, v in sorted(self._entries.items()))
        return f"VC<{inner}>"

    @classmethod
    def from_dict(cls, entries: Optional[Dict[str, int]]) -> "VectorClock":
        """Build from a message-embedded dict (``None`` -> empty clock)."""
        return cls(entries)
