"""Execution-trace recording.

Every experiment and most tests attach one :class:`TraceRecorder` to the
system under test.  Stores report write applications, installs and drops;
clients report issued writes, acknowledgements and reads.  The checkers in
:mod:`repro.coherence.checkers` then verify the declared coherence models
against the recorded history -- the machine-checked replacement for the
paper's manual observation of its prototype.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Optional

from repro.core.ids import WriteId


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """Base event: global order index plus virtual timestamp."""

    index: int
    time: float


@dataclasses.dataclass(frozen=True)
class ApplyEvent(TraceEvent):
    """A store applied a write to its replica."""

    store: str
    wid: WriteId
    global_seq: Optional[int]
    deps: Optional[Dict[str, int]]
    applied_vc: Dict[str, int]


@dataclasses.dataclass(frozen=True)
class InstallEvent(TraceEvent):
    """A store replaced its replica via full-state transfer."""

    store: str
    version: Dict[str, int]


@dataclasses.dataclass(frozen=True)
class DropEvent(TraceEvent):
    """A store discarded a superseded write (FIFO / eventual LWW)."""

    store: str
    wid: WriteId


@dataclasses.dataclass(frozen=True)
class WriteIssueEvent(TraceEvent):
    """A client issued a write."""

    client_id: str
    wid: WriteId
    store: str
    deps: Optional[Dict[str, int]]


@dataclasses.dataclass(frozen=True)
class WriteAckEvent(TraceEvent):
    """A client's write was acknowledged by a store."""

    client_id: str
    wid: WriteId
    store: str


@dataclasses.dataclass(frozen=True)
class ReadEvent(TraceEvent):
    """A store served a read to a client."""

    store: str
    client_id: str
    served_vc: Dict[str, int]
    requirement: Dict[str, int]
    result_meta: Optional[Dict[str, Any]] = None
    #: Identical cohort clients this one served request stood in for;
    #: metrics multiply by this so cohort runs weight correctly.
    weight: int = 1


class TraceRecorder:
    """Append-only recorder shared by all components of one system."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._counter = itertools.count()

    # -- recording -----------------------------------------------------------

    def _next_index(self) -> int:
        return next(self._counter)

    def record_apply(
        self,
        time: float,
        store: str,
        wid: WriteId,
        applied_vc: Dict[str, int],
        global_seq: Optional[int] = None,
        deps: Optional[Dict[str, int]] = None,
    ) -> None:
        """A store applied ``wid``; ``applied_vc`` is the VC *after* apply."""
        self.events.append(
            ApplyEvent(
                index=self._next_index(),
                time=time,
                store=store,
                wid=wid,
                global_seq=global_seq,
                deps=deps,
                applied_vc=dict(applied_vc),
            )
        )

    def record_install(
        self, time: float, store: str, version: Dict[str, int]
    ) -> None:
        """A store installed a full snapshot covering ``version``."""
        self.events.append(
            InstallEvent(
                index=self._next_index(), time=time, store=store,
                version=dict(version),
            )
        )

    def record_drop(self, time: float, store: str, wid: WriteId) -> None:
        """A store discarded a superseded write."""
        self.events.append(
            DropEvent(index=self._next_index(), time=time, store=store, wid=wid)
        )

    def record_write_issue(
        self,
        time: float,
        client_id: str,
        wid: WriteId,
        store: str,
        deps: Optional[Dict[str, int]] = None,
    ) -> None:
        """A client submitted a write to a store."""
        self.events.append(
            WriteIssueEvent(
                index=self._next_index(), time=time, client_id=client_id,
                wid=wid, store=store, deps=deps,
            )
        )

    def record_write_ack(
        self, time: float, client_id: str, wid: WriteId, store: str
    ) -> None:
        """A store acknowledged a client's write."""
        self.events.append(
            WriteAckEvent(
                index=self._next_index(), time=time, client_id=client_id,
                wid=wid, store=store,
            )
        )

    def record_read(
        self,
        time: float,
        store: str,
        client_id: str,
        served_vc: Dict[str, int],
        requirement: Optional[Dict[str, int]] = None,
        result_meta: Optional[Dict[str, Any]] = None,
        weight: int = 1,
    ) -> None:
        """A store served a read; ``served_vc`` is its VC at serve time.

        ``weight`` counts the cohort clients the read represents (1 for
        an ordinary per-client read).
        """
        self.events.append(
            ReadEvent(
                index=self._next_index(), time=time, store=store,
                client_id=client_id, served_vc=dict(served_vc),
                requirement=dict(requirement or {}), result_meta=result_meta,
                weight=weight,
            )
        )

    # -- accessors -----------------------------------------------------------

    def of_type(self, event_type: type) -> List[TraceEvent]:
        """All events of one type, in global order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def apply_sequence(self, store: str) -> List[ApplyEvent]:
        """Apply events of one store, in application order."""
        return [
            e for e in self.events
            if isinstance(e, ApplyEvent) and e.store == store
        ]

    def stores(self) -> List[str]:
        """All stores that applied or installed anything, in first-seen order."""
        seen: List[str] = []
        for event in self.events:
            store = getattr(event, "store", None)
            if store is not None and not isinstance(event, (ReadEvent,)):
                if store not in seen:
                    seen.append(store)
        return seen

    def clients(self) -> List[str]:
        """All clients that issued writes or reads, in first-seen order."""
        seen: List[str] = []
        for event in self.events:
            client = getattr(event, "client_id", None)
            if client is not None and client not in seen:
                seen.append(client)
        return seen

    def writes_by(self, client_id: str) -> List[WriteIssueEvent]:
        """Writes issued by one client, in issue order."""
        return [
            e for e in self.events
            if isinstance(e, WriteIssueEvent) and e.client_id == client_id
        ]

    def reads_by(self, client_id: str) -> List[ReadEvent]:
        """Reads served to one client, in serve order."""
        return [
            e for e in self.events
            if isinstance(e, ReadEvent) and e.client_id == client_id
        ]

    def clear(self) -> None:
        """Forget all recorded events (counters keep advancing)."""
        self.events.clear()


def coherence_signature(
    trace: TraceRecorder, include_reads: bool = True
) -> Dict[str, List[tuple]]:
    """A time-free, per-participant normalization of a coherence history.

    Returns, for every store (``"store:<addr>"``) and client
    (``"client:<id>"``), its event sequence reduced to order-and-content
    tuples: apply/install/drop with their WiDs and version vectors, write
    issues/acks, and (optionally) reads with their served vectors.  Global
    interleaving across participants and all timestamps are dropped --
    they are substrate artifacts -- so two runs of the same scripted
    workload on different backends (virtual vs wall-clock time) produce
    the *same* signature exactly when the protocol made the same
    decisions.  This is what the sim/live parity tests compare.
    """
    def vc(d: Dict[str, int]) -> tuple:
        return tuple(sorted(d.items()))

    signature: Dict[str, List[tuple]] = {}

    def lane(kind: str, name: str) -> List[tuple]:
        return signature.setdefault(f"{kind}:{name}", [])

    for event in trace.events:
        if isinstance(event, ApplyEvent):
            lane("store", event.store).append(
                ("apply", str(event.wid), event.global_seq,
                 vc(event.applied_vc))
            )
        elif isinstance(event, InstallEvent):
            lane("store", event.store).append(
                ("install", vc(event.version))
            )
        elif isinstance(event, DropEvent):
            lane("store", event.store).append(("drop", str(event.wid)))
        elif isinstance(event, WriteIssueEvent):
            lane("client", event.client_id).append(
                ("write", str(event.wid), event.store)
            )
        elif isinstance(event, WriteAckEvent):
            lane("client", event.client_id).append(
                ("ack", str(event.wid), event.store)
            )
        elif isinstance(event, ReadEvent) and include_reads:
            entry = ("read", event.store, vc(event.served_vc),
                     vc(event.requirement))
            if event.weight != 1:
                # Weighted (cohort) reads extend the tuple; per-client
                # reads keep the historical 4-tuple so existing golden
                # signatures stay byte-identical.
                entry = entry + (event.weight,)
            lane("client", event.client_id).append(entry)
    return signature
