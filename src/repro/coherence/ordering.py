"""Ordering disciplines: when may a replica apply a write?

Each object-based coherence model corresponds to one
:class:`OrderingDiscipline`.  A store's replication object *offers* every
incoming :class:`~repro.coherence.records.WriteRecord` to its discipline;
the discipline returns the records that may be applied now (possibly
including previously buffered ones that just became ready, in order) and
holds back the rest.

The disciplines also enforce per-record dependency vectors, which is how
client-causal (writes-follow-reads) sessions are honored even under
object-based models weaker than causal (design decision D2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.coherence.models import CoherenceModel
from repro.coherence.records import WriteRecord
from repro.coherence.vector_clock import VectorClock
from repro.core.ids import WriteId


class OrderingDiscipline:
    """Base class: tracking of applied writes plus dependency gating."""

    model = CoherenceModel.EVENTUAL

    def __init__(self) -> None:
        #: Version vector of all applied writes.
        self.applied = VectorClock()
        #: WiDs applied (dedupe against redelivery).
        self.seen: Set[WriteId] = set()
        #: Held-back records, keyed by WiD.
        self.buffer: Dict[WriteId, WriteRecord] = {}
        #: Writes discarded as superseded (FIFO / eventual LWW).
        self.dropped = 0

    # -- API ---------------------------------------------------------------

    def offer(self, record: WriteRecord) -> List[WriteRecord]:
        """Submit a record; return records now applicable, in apply order."""
        if record.wid in self.buffer:
            return []
        if self._superseded(record):
            self.dropped += 1
            return []
        if self._is_duplicate(record):
            return []
        self.buffer[record.wid] = record
        return self._drain()

    def _is_duplicate(self, record: WriteRecord) -> bool:
        """Whether the record was already incorporated.

        For gapless disciplines the applied vector only covers writes that
        were actually applied, so VC inclusion is a safe dedupe; gap-skipping
        disciplines override this.
        """
        return record.wid in self.seen or self.applied.includes(record.wid)

    def has_gaps(self) -> bool:
        """Whether buffered records are waiting on missing predecessors.

        This is the store's signal that its replica is outdated and the
        outdate-reaction parameter (wait vs demand) applies.
        """
        return bool(self.buffer)

    def install(self, version: VectorClock) -> None:
        """Reset after a full-state transfer that covers ``version``."""
        self.applied = version.copy()
        self.buffer = {
            wid: rec
            for wid, rec in self.buffer.items()
            if not version.includes(wid)
        }
        self.seen = {wid for wid in self.seen if not version.includes(wid)}

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Plain-data snapshot of the discipline (codec-encodable).

        Subclasses with extra state extend the dict; the pair with
        :meth:`load_state` lets a killed store node resume exactly where
        its last checkpoint left it, which is what keeps restart-time
        coherence signatures identical across backends.
        """
        return {
            "applied": self.applied.as_dict(),
            "seen": sorted(str(wid) for wid in self.seen),
            "buffer": [self.buffer[wid].to_wire() for wid in sorted(self.buffer)],
            "dropped": self.dropped,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict`."""
        self.applied = VectorClock.from_dict(state["applied"])
        self.seen = {WriteId.parse(text) for text in state["seen"]}
        self.buffer = {
            record.wid: record
            for record in (WriteRecord.from_wire(w) for w in state["buffer"])
        }
        self.dropped = state["dropped"]

    # -- hooks ----------------------------------------------------------------

    def _ready(self, record: WriteRecord) -> bool:
        """Model-specific test: may ``record`` be applied right now?"""
        return True

    def _superseded(self, record: WriteRecord) -> bool:
        """Model-specific test: is ``record`` stale and to be discarded?"""
        return False

    def _mark_applied(self, record: WriteRecord) -> None:
        self.applied.record(record.wid)
        self.seen.add(record.wid)

    def _deps_satisfied(self, record: WriteRecord) -> bool:
        return record.deps is None or self.applied.dominates(record.deps)

    def _drain(self) -> List[WriteRecord]:
        """Repeatedly release buffered records until a fixpoint."""
        released: List[WriteRecord] = []
        progress = True
        while progress:
            progress = False
            for wid in sorted(self.buffer):
                record = self.buffer[wid]
                if self._superseded(record):
                    del self.buffer[wid]
                    self.dropped += 1
                    progress = True
                    continue
                if self._deps_satisfied(record) and self._ready(record):
                    del self.buffer[wid]
                    self._mark_applied(record)
                    released.append(record)
                    progress = True
        return released


class PramOrdering(OrderingDiscipline):
    """PRAM: each client's writes apply in per-client sequence order.

    This is the paper's prototype protocol: the incoming WiD's sequence
    number is compared against ``expected_write[client]``; in-order writes
    apply, out-of-order writes are buffered "until the next one" (Section
    4.2).
    """

    model = CoherenceModel.PRAM

    def _ready(self, record: WriteRecord) -> bool:
        return record.wid.seqno == self.applied.get(record.wid.client_id) + 1


class FifoOrdering(OrderingDiscipline):
    """The paper's FIFO optimization of PRAM.

    A write is honored only if more recent than the latest applied write
    from the same client; superseded or late writes are ignored.  Suited to
    clients that overwrite a document rather than updating incrementally.
    """

    model = CoherenceModel.FIFO

    def _ready(self, record: WriteRecord) -> bool:
        # Any write newer than the client's last applied one is acceptable;
        # gaps are skipped rather than awaited.
        return record.wid.seqno > self.applied.get(record.wid.client_id)

    def _superseded(self, record: WriteRecord) -> bool:
        return record.wid.seqno <= self.applied.get(record.wid.client_id)


class CausalOrdering(OrderingDiscipline):
    """Causal: a write applies once everything it depends on has applied.

    Every record carries a dependency vector stamped at its origin; the
    base-class dependency gate does the entire job.
    """

    model = CoherenceModel.CAUSAL

    def _ready(self, record: WriteRecord) -> bool:
        # Besides cross-client dependencies, a client's own writes are
        # causally ordered, so enforce per-client sequence too.
        return record.wid.seqno == self.applied.get(record.wid.client_id) + 1


class SequentialOrdering(OrderingDiscipline):
    """Sequential: one global total order, assigned by a sequencer.

    Replicas apply records strictly in ``global_seq`` order, which makes
    every store's apply sequence a prefix of the same global history.
    """

    model = CoherenceModel.SEQUENTIAL

    def __init__(self) -> None:
        super().__init__()
        self.next_global = 1

    def _ready(self, record: WriteRecord) -> bool:
        return record.global_seq == self.next_global

    def _mark_applied(self, record: WriteRecord) -> None:
        super()._mark_applied(record)
        self.next_global += 1

    def install(self, version: VectorClock, next_global: Optional[int] = None) -> None:
        super().install(version)
        if next_global is not None:
            self.next_global = next_global

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["next_global"] = self.next_global
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        super().load_state(state)
        self.next_global = state["next_global"]


class EventualOrdering(OrderingDiscipline):
    """Eventual: apply whatever arrives; optional per-key last-writer-wins.

    With ``lww=True`` (the default) a record is discarded when every state
    key it touches already carries a newer applied write, which makes
    replicas converge for overwrite workloads.  With ``lww=False`` records
    are applied in arrival order, the literal "no ordering constraints" of
    the paper.
    """

    model = CoherenceModel.EVENTUAL

    def __init__(self, lww: bool = True) -> None:
        super().__init__()
        self.lww = lww
        self._key_latest: Dict[str, Tuple[float, WriteId]] = {}
        #: Writes incorporated via snapshot installs; the applied vector
        #: cannot be used for dedupe here because gap-skipping makes it
        #: cover writes that were never seen.
        self._floor = VectorClock()

    def install(self, version: VectorClock) -> None:
        super().install(version)
        self._floor.merge(version)

    def _is_duplicate(self, record: WriteRecord) -> bool:
        return record.wid in self.seen or self._floor.includes(record.wid)

    def _superseded(self, record: WriteRecord) -> bool:
        if not self.lww or not record.touched:
            return False
        stamp = (record.timestamp, record.wid)
        return all(
            key in self._key_latest and self._key_latest[key] > stamp
            for key in record.touched
        )

    def _mark_applied(self, record: WriteRecord) -> None:
        super()._mark_applied(record)
        stamp = (record.timestamp, record.wid)
        for key in record.touched:
            if key not in self._key_latest or self._key_latest[key] < stamp:
                self._key_latest[key] = stamp

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["key_latest"] = {
            key: [stamp[0], str(stamp[1])]
            for key, stamp in self._key_latest.items()
        }
        state["floor"] = self._floor.as_dict()
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        super().load_state(state)
        self._key_latest = {
            key: (timestamp, WriteId.parse(text))
            for key, (timestamp, text) in state["key_latest"].items()
        }
        self._floor = VectorClock.from_dict(state["floor"])


def make_ordering(model: CoherenceModel) -> OrderingDiscipline:
    """Factory: the ordering discipline for an object-based model."""
    if model is CoherenceModel.PRAM:
        return PramOrdering()
    if model is CoherenceModel.FIFO:
        return FifoOrdering()
    if model is CoherenceModel.CAUSAL:
        return CausalOrdering()
    if model is CoherenceModel.SEQUENTIAL:
        return SequentialOrdering()
    if model is CoherenceModel.EVENTUAL:
        return EventualOrdering()
    raise ValueError(f"unknown coherence model {model!r}")
