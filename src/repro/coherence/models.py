"""The coherence-model taxonomy of Section 3.2.

Object-based models order writes as seen by *all* clients; client-based
models (session guarantees, after Bayou) constrain only what a single
client observes.  The framework's contribution is that the two compose: a
Web object declares one object-based model, and each client session may
stack additional guarantees on top (Section 3.2.2's example: PRAM at the
object plus Read-Your-Writes for the web master).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Set


class CoherenceModel(enum.Enum):
    """Object-based coherence models offered by a Web object."""

    #: Global total order of operations (Lamport 1979).  Hard to implement
    #: efficiently; the paper suggests restricting it to permanent stores.
    SEQUENTIAL = "sequential"

    #: Causally related operations ordered everywhere (Hutto & Ahamad).
    CAUSAL = "causal"

    #: Writes of each client applied everywhere in issue order (Lipton &
    #: Sandberg); the model of the paper's prototype.
    PRAM = "pram"

    #: The paper's overwrite optimization of PRAM: a write is honored only
    #: if more recent than the latest applied write of the same client;
    #: superseded writes are simply dropped.
    FIFO = "fifo"

    #: Updates eventually propagate with no ordering constraints.
    EVENTUAL = "eventual"


class SessionGuarantee(enum.Enum):
    """Client-based coherence models (Bayou session guarantees)."""

    #: Effects of a client's writes visible to its subsequent reads.
    READ_YOUR_WRITES = "read-your-writes"

    #: Successive reads never move backwards in time.
    MONOTONIC_READS = "monotonic-reads"

    #: Client-PRAM: a client's own writes apply everywhere in issue order.
    MONOTONIC_WRITES = "monotonic-writes"

    #: Client-causal: a write depends on the writes the client had read.
    WRITES_FOLLOW_READS = "writes-follow-reads"


#: Comparative strength used for "is model A at least as strong as B"
#: questions.  FIFO is deliberately ranked below PRAM: it *drops* writes
#: PRAM would apply, trading completeness for overwrite performance.
_STRENGTH = {
    CoherenceModel.SEQUENTIAL: 4,
    CoherenceModel.CAUSAL: 3,
    CoherenceModel.PRAM: 2,
    CoherenceModel.FIFO: 1,
    CoherenceModel.EVENTUAL: 0,
}


def model_strength(model: CoherenceModel) -> int:
    """Numeric strength rank of an object-based model (higher = stronger)."""
    return _STRENGTH[model]


def guarantees_subsumed_by(model: CoherenceModel) -> FrozenSet[SessionGuarantee]:
    """Session guarantees an object-based model provides automatically.

    The paper notes that "if the object offers sequential consistency, then
    it automatically offers every client-based model as well"; causal
    consistency likewise implies all four Bayou guarantees, and PRAM implies
    monotonic writes (its per-client restriction).
    """
    if model is CoherenceModel.SEQUENTIAL or model is CoherenceModel.CAUSAL:
        return frozenset(SessionGuarantee)
    if model is CoherenceModel.PRAM:
        return frozenset({SessionGuarantee.MONOTONIC_WRITES})
    return frozenset()


def residual_guarantees(
    model: CoherenceModel,
    requested: Iterable[SessionGuarantee],
) -> Set[SessionGuarantee]:
    """The guarantees a store must actively enforce for a session.

    Guarantees already subsumed by the object-based model cost nothing and
    are removed; what remains drives the dependency checks on the read and
    write paths.
    """
    return set(requested) - set(guarantees_subsumed_by(model))
