"""Trace checkers: machine verification of coherence models.

Each checker consumes a :class:`~repro.coherence.trace.TraceRecorder` and
returns a list of human-readable violation strings (empty = the model
holds).  The checkers are deliberately independent of the protocol
implementations: they re-derive store state by scanning the trace, so a
protocol bug cannot hide itself by lying about its own bookkeeping beyond
the raw events it reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.coherence.trace import (
    ApplyEvent,
    InstallEvent,
    ReadEvent,
    TraceRecorder,
    WriteAckEvent,
    WriteIssueEvent,
)
from repro.coherence.vector_clock import VectorClock
from repro.core.ids import WriteId

Violations = List[str]


def _store_scan(
    trace: TraceRecorder, store: str
) -> List[object]:
    """Apply/install events of one store, in order."""
    return [
        e for e in trace.events
        if isinstance(e, (ApplyEvent, InstallEvent))
        and getattr(e, "store", None) == store
    ]


def check_pram(
    trace: TraceRecorder,
    stores: Optional[Sequence[str]] = None,
    require_gapless: bool = True,
) -> Violations:
    """PRAM: every store applies each client's writes in issue order.

    With ``require_gapless`` the per-client sequence at a store must be
    exactly 1, 2, 3, ... between installs (the paper's
    ``expected_write[client]`` check); without it only inversions are
    flagged, which is the right notion for FIFO-optimized stores.
    """
    violations: Violations = []
    for store in stores if stores is not None else trace.stores():
        last_seq: Dict[str, int] = {}
        for event in _store_scan(trace, store):
            if isinstance(event, InstallEvent):
                for client_id, seqno in event.version.items():
                    last_seq[client_id] = max(last_seq.get(client_id, 0), seqno)
                continue
            assert isinstance(event, ApplyEvent)
            client_id = event.wid.client_id
            previous = last_seq.get(client_id, 0)
            if event.wid.seqno <= previous:
                violations.append(
                    f"PRAM inversion at {store}: applied {event.wid} after "
                    f"seqno {previous}"
                )
            elif require_gapless and event.wid.seqno != previous + 1:
                violations.append(
                    f"PRAM gap at {store}: applied {event.wid} but expected "
                    f"seqno {previous + 1}"
                )
            last_seq[client_id] = max(previous, event.wid.seqno)
    return violations


def check_fifo(
    trace: TraceRecorder, stores: Optional[Sequence[str]] = None
) -> Violations:
    """FIFO: per-client application order monotonic; gaps permitted."""
    return check_pram(trace, stores=stores, require_gapless=False)


def check_causal(
    trace: TraceRecorder, stores: Optional[Sequence[str]] = None
) -> Violations:
    """Causal: dependencies applied before dependents, everywhere."""
    violations = check_pram(trace, stores=stores, require_gapless=True)
    for store in stores if stores is not None else trace.stores():
        running = VectorClock()
        for event in _store_scan(trace, store):
            if isinstance(event, InstallEvent):
                running.merge(VectorClock.from_dict(event.version))
                continue
            assert isinstance(event, ApplyEvent)
            if event.deps is not None:
                deps = VectorClock.from_dict(event.deps)
                if not running.dominates(deps):
                    violations.append(
                        f"causal violation at {store}: applied {event.wid} "
                        f"with unsatisfied deps {event.deps}"
                    )
            running.record(event.wid)
    return violations


def check_sequential(
    trace: TraceRecorder, stores: Optional[Sequence[str]] = None
) -> Violations:
    """Sequential: one global order; each store applies a gapless prefix
    slice of it, and all stores agree on each write's position."""
    violations: Violations = []
    position: Dict[WriteId, int] = {}
    for event in trace.of_type(ApplyEvent):
        assert isinstance(event, ApplyEvent)
        if event.global_seq is None:
            violations.append(
                f"sequential violation: {event.wid} applied at {event.store} "
                "without a global sequence number"
            )
            continue
        known = position.get(event.wid)
        if known is not None and known != event.global_seq:
            violations.append(
                f"sequential violation: {event.wid} has positions "
                f"{known} and {event.global_seq}"
            )
        position[event.wid] = event.global_seq
    for store in stores if stores is not None else trace.stores():
        last_seen = 0
        for event in _store_scan(trace, store):
            if isinstance(event, InstallEvent):
                continue
            assert isinstance(event, ApplyEvent)
            if event.global_seq is None:
                continue
            if event.global_seq != last_seen + 1:
                violations.append(
                    f"sequential violation at {store}: applied global_seq "
                    f"{event.global_seq} after {last_seen}"
                )
            last_seen = event.global_seq
    return violations


def check_eventual_delivery(
    trace: TraceRecorder,
    stores: Optional[Sequence[str]] = None,
    allow_superseded: bool = True,
) -> Violations:
    """Eventual: by end of trace, every store saw every write.

    A write counts as *seen* at a store if the store applied it or (when
    ``allow_superseded``) its final version vector covers it -- FIFO and
    LWW stores legitimately skip superseded writes.
    """
    violations: Violations = []
    issued: Set[WriteId] = {
        e.wid for e in trace.of_type(WriteIssueEvent)  # type: ignore[union-attr]
    }
    for store in stores if stores is not None else trace.stores():
        final = VectorClock()
        applied: Set[WriteId] = set()
        for event in _store_scan(trace, store):
            if isinstance(event, InstallEvent):
                final.merge(VectorClock.from_dict(event.version))
            else:
                assert isinstance(event, ApplyEvent)
                applied.add(event.wid)
                final.record(event.wid)
        for wid in sorted(issued):
            if wid in applied:
                continue
            if allow_superseded and final.includes(wid):
                continue
            violations.append(f"eventual violation: {store} never saw {wid}")
    return violations


def check_convergence(final_states: Dict[str, object]) -> Violations:
    """All replicas ended in the same state (pass semantics snapshots)."""
    violations: Violations = []
    items = sorted(final_states.items())
    if not items:
        return violations
    reference_store, reference = items[0]
    for store, state in items[1:]:
        if state != reference:
            violations.append(
                f"divergence: {store} differs from {reference_store}"
            )
    return violations


def check_read_your_writes(
    trace: TraceRecorder, clients: Optional[Sequence[str]] = None
) -> Violations:
    """RYW: every read reflects all the client's earlier acknowledged writes."""
    violations: Violations = []
    acked: Dict[str, VectorClock] = {}
    for event in trace.events:
        if isinstance(event, WriteAckEvent):
            acked.setdefault(event.client_id, VectorClock()).record(event.wid)
        elif isinstance(event, ReadEvent):
            if clients is not None and event.client_id not in clients:
                continue
            own = acked.get(event.client_id)
            if own is None:
                continue
            served = VectorClock.from_dict(event.served_vc)
            if not served.dominates(own):
                violations.append(
                    f"RYW violation: read by {event.client_id} at "
                    f"{event.store} (t={event.time:.3f}) missed own writes "
                    f"{own.as_dict()} (served {event.served_vc})"
                )
    return violations


def check_monotonic_reads(
    trace: TraceRecorder, clients: Optional[Sequence[str]] = None
) -> Violations:
    """MR: each client's successive reads see non-decreasing versions."""
    violations: Violations = []
    for client_id in clients if clients is not None else trace.clients():
        floor = VectorClock()
        for event in trace.reads_by(client_id):
            served = VectorClock.from_dict(event.served_vc)
            if not served.dominates(floor):
                violations.append(
                    f"MR violation: read by {client_id} at {event.store} "
                    f"(t={event.time:.3f}) regressed below {floor.as_dict()}"
                )
            floor.merge(served)
    return violations


def check_monotonic_writes(
    trace: TraceRecorder, clients: Optional[Sequence[str]] = None
) -> Violations:
    """MW (client-PRAM): per client, stores apply writes in issue order."""
    violations: Violations = []
    wanted = set(clients) if clients is not None else None
    for store in trace.stores():
        last_seq: Dict[str, int] = {}
        for event in _store_scan(trace, store):
            if isinstance(event, InstallEvent):
                for client_id, seqno in event.version.items():
                    last_seq[client_id] = max(last_seq.get(client_id, 0), seqno)
                continue
            assert isinstance(event, ApplyEvent)
            client_id = event.wid.client_id
            if wanted is not None and client_id not in wanted:
                continue
            previous = last_seq.get(client_id, 0)
            if event.wid.seqno <= previous:
                violations.append(
                    f"MW violation at {store}: {event.wid} applied after "
                    f"seqno {previous}"
                )
            last_seq[client_id] = max(previous, event.wid.seqno)
    return violations


def check_writes_follow_reads(
    trace: TraceRecorder, clients: Optional[Sequence[str]] = None
) -> Violations:
    """WFR (client-causal): a write's read-dependencies apply before it."""
    violations: Violations = []
    deps_of: Dict[WriteId, VectorClock] = {}
    for event in trace.of_type(WriteIssueEvent):
        assert isinstance(event, WriteIssueEvent)
        if clients is not None and event.client_id not in clients:
            continue
        if event.deps is not None:
            deps_of[event.wid] = VectorClock.from_dict(event.deps)
    for store in trace.stores():
        running = VectorClock()
        for event in _store_scan(trace, store):
            if isinstance(event, InstallEvent):
                running.merge(VectorClock.from_dict(event.version))
                continue
            assert isinstance(event, ApplyEvent)
            deps = deps_of.get(event.wid)
            if deps is not None and not running.dominates(deps):
                violations.append(
                    f"WFR violation at {store}: {event.wid} applied before "
                    f"its read-dependencies {deps.as_dict()}"
                )
            running.record(event.wid)
    return violations
