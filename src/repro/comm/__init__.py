"""Communication sub-objects and messaging (S3).

In the Globe local-object composition, the *communication object* is the
system-provided component that moves marshalled invocation messages between
address spaces.  It offers the three primitives named in the paper --
``send``, ``receive`` (a registered handler) and ``send/receive``
(request-reply) -- plus a multicast facility used by permanent stores.

Transports: a communication object speaks either the **reliable** transport
(TCP-like: no loss, FIFO per pair) or the **unreliable** one (UDP-like:
loss, reordering).  The paper used TCP for simplicity; experiment X5 swaps
in UDP and recovers reliability from the coherence protocol itself.
"""

from repro.comm.endpoint import CommunicationObject, RequestTimeout
from repro.comm.invocation import (
    MarshalledInvocation,
    decode_invocation,
    encode_invocation,
)
from repro.comm.message import Message, estimate_size

__all__ = [
    "CommunicationObject",
    "MarshalledInvocation",
    "Message",
    "RequestTimeout",
    "decode_invocation",
    "encode_invocation",
    "estimate_size",
]
