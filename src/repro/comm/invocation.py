"""Marshalled method invocations.

A defining property of the Globe composition is that replication and
communication objects never see semantics-object state or methods: they
operate only on *invocation messages* in which the method identifier and
parameters have been encoded.  This module is that encoding.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.comm.message import estimate_size


class InvocationCodecError(ValueError):
    """Raised when an invocation message cannot be decoded."""


class MarshalledInvocation:
    """A method call reduced to data: name, positional and keyword args.

    ``read_only`` tags whether the invocation modifies semantics state;
    the control object uses it to route reads locally and writes through
    the replication object.

    Semantically a frozen value object (equality and hashing over all
    four fields); implemented as a plain ``__slots__`` class because one
    is created per invocation on the hot path, where the generated
    frozen-dataclass ``__init__`` (one ``object.__setattr__`` per field)
    measurably dominates.
    """

    __slots__ = ("method", "args", "kwargs", "read_only")

    def __init__(
        self,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Tuple[Tuple[str, Any], ...] = (),
        read_only: bool = True,
    ) -> None:
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.read_only = read_only

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MarshalledInvocation):
            return NotImplemented
        return (
            self.method == other.method
            and self.args == other.args
            and self.kwargs == other.kwargs
            and self.read_only == other.read_only
        )

    def __hash__(self) -> int:
        return hash((self.method, self.args, self.kwargs, self.read_only))

    def __repr__(self) -> str:
        return (
            f"MarshalledInvocation(method={self.method!r}, args={self.args!r},"
            f" kwargs={self.kwargs!r}, read_only={self.read_only!r})"
        )

    def kwargs_dict(self) -> Dict[str, Any]:
        """The keyword arguments as a plain dict."""
        return dict(self.kwargs)

    def payload_size(self) -> int:
        """Estimated encoded size in bytes.

        Value-identical to sizing ``list(self.args)`` and
        ``dict(self.kwargs)`` (lists and tuples cost the same per item,
        and the kwargs pairs are unique by construction), without
        building those temporaries on the hot path.
        """
        total = estimate_size(self.method) + estimate_size(self.args) + 4
        for key, value in self.kwargs:
            total += estimate_size(key) + estimate_size(value) + 2
        return total


def encode_invocation(
    method: str,
    *args: Any,
    read_only: bool = True,
    **kwargs: Any,
) -> Dict[str, Any]:
    """Encode a method call into a wire-friendly dict."""
    return {
        "method": method,
        "args": list(args),
        "kwargs": dict(kwargs),
        "read_only": read_only,
    }


def decode_invocation(encoded: Dict[str, Any]) -> MarshalledInvocation:
    """Decode a dict produced by :func:`encode_invocation`."""
    try:
        method = encoded["method"]
        args = tuple(encoded.get("args", ()))
        raw_kwargs = encoded.get("kwargs")
        if isinstance(raw_kwargs, dict):
            # ``sorted`` reads the mapping without mutating it, so the
            # defensive ``dict()`` copy is skipped; the empty case (every
            # positional-only protocol call) allocates nothing.
            kwargs = tuple(sorted(raw_kwargs.items())) if raw_kwargs else ()
        elif raw_kwargs is None:
            kwargs = ()
        else:
            kwargs = tuple(sorted(dict(raw_kwargs).items()))
        read_only = bool(encoded.get("read_only", True))
    except (TypeError, KeyError) as exc:
        raise InvocationCodecError(f"malformed invocation {encoded!r}") from exc
    if not isinstance(method, str) or not method:
        raise InvocationCodecError(f"invalid method name {method!r}")
    return MarshalledInvocation(
        method=method, args=args, kwargs=kwargs, read_only=read_only
    )
