"""Marshalled method invocations.

A defining property of the Globe composition is that replication and
communication objects never see semantics-object state or methods: they
operate only on *invocation messages* in which the method identifier and
parameters have been encoded.  This module is that encoding.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple

from repro.comm.message import estimate_size


class InvocationCodecError(ValueError):
    """Raised when an invocation message cannot be decoded."""


@dataclasses.dataclass(frozen=True)
class MarshalledInvocation:
    """A method call reduced to data: name, positional and keyword args.

    ``read_only`` tags whether the invocation modifies semantics state;
    the control object uses it to route reads locally and writes through
    the replication object.
    """

    method: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    read_only: bool = True

    def kwargs_dict(self) -> Dict[str, Any]:
        """The keyword arguments as a plain dict."""
        return dict(self.kwargs)

    def payload_size(self) -> int:
        """Estimated encoded size in bytes."""
        return (
            estimate_size(self.method)
            + estimate_size(list(self.args))
            + estimate_size(dict(self.kwargs))
            + 4
        )


def encode_invocation(
    method: str,
    *args: Any,
    read_only: bool = True,
    **kwargs: Any,
) -> Dict[str, Any]:
    """Encode a method call into a wire-friendly dict."""
    return {
        "method": method,
        "args": list(args),
        "kwargs": dict(kwargs),
        "read_only": read_only,
    }


def decode_invocation(encoded: Dict[str, Any]) -> MarshalledInvocation:
    """Decode a dict produced by :func:`encode_invocation`."""
    try:
        method = encoded["method"]
        args = tuple(encoded.get("args", ()))
        kwargs = tuple(sorted(dict(encoded.get("kwargs", {})).items()))
        read_only = bool(encoded.get("read_only", True))
    except (TypeError, KeyError) as exc:
        raise InvocationCodecError(f"malformed invocation {encoded!r}") from exc
    if not isinstance(method, str) or not method:
        raise InvocationCodecError(f"invalid method name {method!r}")
    return MarshalledInvocation(
        method=method, args=args, kwargs=kwargs, read_only=read_only
    )
