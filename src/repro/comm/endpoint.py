"""The communication sub-object.

One :class:`CommunicationObject` exists per address space per distributed
object (in practice, one per local object).  It exposes exactly the
primitives the paper names: point-to-point ``send``, a receive handler,
``send/receive`` request-reply, and multicast.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.comm.message import Message
from repro.sim.errors import SimulationError
from repro.sim.future import Future
from repro.transport.interface import Clock, Transport

#: Handler for unsolicited messages: ``handler(src_address, message)``.
MessageHandler = Callable[[str, Message], None]


class RequestTimeout(SimulationError):
    """Raised inside a waiting process when a request exceeds its timeout."""


class CommunicationObject:
    """Point-to-point + multicast messaging bound to one network address.

    Parameters
    ----------
    sim, network:
        The substrate, as the unified :class:`~repro.transport.interface.
        Clock` and :class:`~repro.transport.interface.Transport` protocols
        -- the simulated pair or the wall-clock pair interchangeably.
    address:
        This address space's network name.
    reliable:
        Transport class for all outgoing traffic: ``True`` models TCP
        (no loss, per-pair FIFO), ``False`` models UDP (loss, reordering).
    """

    def __init__(
        self,
        sim: Clock,
        network: Transport,
        address: str,
        reliable: bool = True,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.reliable = reliable
        self.messages_sent = 0
        self.bytes_sent = 0
        self._handler: Optional[MessageHandler] = None
        self._pending: Dict[int, Future] = {}
        network.register(address, self._on_datagram)

    def close(self) -> None:
        """Detach from the network and fail all pending requests."""
        self.network.unregister(self.address)
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done:
                future.set_error(RequestTimeout("endpoint closed"))

    def set_handler(self, handler: MessageHandler) -> None:
        """Install the unsolicited-message handler (the control object)."""
        self._handler = handler

    # -- primitives -------------------------------------------------------

    def send(self, dst: str, message: Message) -> None:
        """One-way send."""
        size = message.payload_size()
        self.messages_sent += 1
        self.bytes_sent += size
        self.network.send(
            self.address, dst, message, size_bytes=size, reliable=self.reliable
        )

    def multicast(self, dsts: Sequence[str], message: Message) -> None:
        """Send the same message to several destinations.

        Sizes the message once and hands the whole fan-out to the
        transport's ``multicast``, which skips self-addressing exactly
        like the historical loop of :meth:`send` calls did.
        """
        targets = [dst for dst in dsts if dst != self.address]
        if not targets:
            return
        size = message.payload_size()
        self.messages_sent += len(targets)
        self.bytes_sent += len(targets) * size
        self.network.multicast(
            self.address, targets, message, size_bytes=size,
            reliable=self.reliable,
        )

    def request(
        self,
        dst: str,
        message: Message,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> Future:
        """Send/receive: returns a future resolved with the reply message.

        With an unreliable transport the request or the reply may be lost;
        ``timeout`` plus ``retries`` gives at-least-once behaviour.  When
        retries are exhausted the future fails with :class:`RequestTimeout`.
        """
        future = Future()
        self._pending[message.msg_id] = future
        self._transmit_request(dst, message, future, timeout, retries)
        return future

    def reply(self, dst: str, response: Message) -> None:
        """Send a response built with :meth:`Message.reply`."""
        self.send(dst, response)

    # -- internals ----------------------------------------------------------

    def _transmit_request(
        self,
        dst: str,
        message: Message,
        future: Future,
        timeout: Optional[float],
        retries_left: int,
    ) -> None:
        if future.done:
            return
        self.send(dst, message)
        if timeout is None:
            return

        def on_timeout() -> None:
            if future.done:
                return
            if retries_left > 0:
                self._transmit_request(
                    dst, message, future, timeout, retries_left - 1
                )
            else:
                self._pending.pop(message.msg_id, None)
                future.set_error(
                    RequestTimeout(
                        f"request {message.kind}#{message.msg_id} to {dst} timed out"
                    )
                )

        self.sim.schedule(timeout, on_timeout)

    def _on_datagram(self, src: str, payload: object, size_bytes: int) -> None:
        if not isinstance(payload, Message):
            return
        if payload.reply_to is not None:
            future = self._pending.pop(payload.reply_to, None)
            if future is not None and not future.done:
                future.set_result(payload)
                return
            # A late duplicate reply (retry already satisfied): drop it.
            return
        if self._handler is not None:
            self._handler(src, payload)
