"""Wire messages and payload size accounting.

Messages are small typed envelopes.  The ``kind`` string is the protocol
message name (``"update"``, ``"demand_update"``, ``"invalidate"`` ...); the
``body`` dict carries protocol fields.  Size is estimated structurally so
that traffic statistics reflect partial-vs-full transfer choices without a
real serializer.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, Optional

_msg_counter = itertools.count(1)

#: Fixed per-message envelope overhead, bytes (headers, framing).
ENVELOPE_OVERHEAD = 64


def estimate_size(value: Any) -> int:
    """Structural size estimate of a payload, in bytes.

    Strings and bytes count their length; numbers count 8; containers sum
    their elements plus small per-item overhead.  Good enough for relative
    traffic comparisons between full and partial transfers.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return sum(
            estimate_size(k) + estimate_size(v) + 2 for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) + 2 for item in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return estimate_size(dataclasses.asdict(value))
    if hasattr(value, "payload_size"):
        return int(value.payload_size())
    return 16


@dataclasses.dataclass
class Message:
    """A typed protocol message.

    Attributes
    ----------
    kind:
        Protocol message name; replication objects dispatch on it.
    body:
        Protocol fields.
    msg_id:
        Unique id, assigned at construction; used to correlate replies.
    reply_to:
        The ``msg_id`` of the request this message answers, if any.
    """

    kind: str
    body: Dict[str, Any] = dataclasses.field(default_factory=dict)
    msg_id: int = dataclasses.field(default_factory=lambda: next(_msg_counter))
    reply_to: Optional[int] = None

    def payload_size(self) -> int:
        """Estimated wire size including envelope overhead."""
        return ENVELOPE_OVERHEAD + estimate_size(self.kind) + estimate_size(self.body)

    def reply(self, kind: str, body: Optional[Dict[str, Any]] = None) -> "Message":
        """Build a response message correlated to this one."""
        return Message(kind=kind, body=body or {}, reply_to=self.msg_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keys = ",".join(sorted(self.body))
        return f"Message({self.kind}#{self.msg_id} body[{keys}])"
